"""Fault injection for the profile lifecycle (chaos-testing support).

Profiles are the one piece of PGMP state that crosses process boundaries
through the filesystem, so the interesting failures are filesystem
failures: a write torn by a crash, a disk that fills or errors, two
writers contending for the same profile, a pass that never terminates.
This module injects each of those *deterministically*, so ``tests/chaos``
can assert the degradation behavior (quarantine, fallback chains, budget
exceptions) instead of hoping to observe it.

All injectors are context managers that patch the process-wide write path
(:func:`repro.core.database.atomic_write_text` and every module that
imported it by name) and restore it on exit — they compose with ordinary
pytest tests and with each other. None of them require root, a real full
disk, or timing luck.
"""

from __future__ import annotations

import contextlib
import errno as _errno
import os
import sys
import threading
from typing import Callable, Iterator

from repro.core import database as _database

__all__ = [
    "torn_profile_store",
    "failing_profile_store",
    "profile_lock_contention",
    "corrupt_profile_file",
    "tear_spill_log",
    "poison_compiled_program",
    "poisoned_recompiles",
    "failing_canary",
    "crash_after_journal_commit",
]

#: Modules that bind ``atomic_write_text`` by name at import time. Patching
#: only ``repro.core.database`` would miss ``from ... import`` aliases.
#: ``repro.service.aggregator`` is here so the same injectors cover the
#: aggregation service's checkpoint/state stores.
_WRITE_SITES = (
    "repro.core.database",
    "repro.blocks.workflow",
    "repro.service.aggregator",
)


@contextlib.contextmanager
def _patched_atomic_write(
    replacement: Callable[[str | os.PathLike[str], str], None],
) -> Iterator[None]:
    saved: list[tuple[object, object]] = []
    for name in _WRITE_SITES:
        module = sys.modules.get(name)
        if module is not None and hasattr(module, "atomic_write_text"):
            saved.append((module, module.atomic_write_text))
            module.atomic_write_text = replacement  # type: ignore[attr-defined]
    try:
        yield
    finally:
        for module, original in saved:
            module.atomic_write_text = original  # type: ignore[attr-defined]


@contextlib.contextmanager
def torn_profile_store(keep_bytes: int = 32) -> Iterator[None]:
    """Simulate a crash mid-write: the target file ends up *torn*.

    Within the context every profile/checkpoint store writes only the first
    ``keep_bytes`` bytes of its payload straight to the destination (no
    temp file, no rename) and then raises ``OSError(EIO)`` — the on-disk
    state a power cut leaves behind when the filesystem does not honor the
    rename barrier. Loaders must treat the remnant as corrupt, never crash
    on it.
    """

    def torn_write(path: str | os.PathLike[str], payload: str) -> None:
        with open(os.fspath(path), "w", encoding="utf-8") as handle:
            handle.write(payload[:keep_bytes])
        raise OSError(_errno.EIO, "injected fault: write torn mid-payload")

    with _patched_atomic_write(torn_write):
        yield


@contextlib.contextmanager
def failing_profile_store(errno_code: int = _errno.ENOSPC) -> Iterator[None]:
    """Every profile/checkpoint store fails cleanly with ``errno_code``.

    Defaults to ``ENOSPC`` (disk full); pass ``errno.EIO`` for a flaky
    device. Unlike :func:`torn_profile_store` the destination file is left
    untouched — this is the well-behaved failure atomic writes guarantee.
    """

    def failing_write(path: str | os.PathLike[str], payload: str) -> None:
        raise OSError(errno_code, f"injected fault: {os.strerror(errno_code)}")

    with _patched_atomic_write(failing_write):
        yield


@contextlib.contextmanager
def profile_lock_contention(path: str | os.PathLike[str]) -> Iterator[threading.Event]:
    """Hold the advisory store lock for ``path`` from a background thread.

    Within the context, any :meth:`ProfileDatabase.store` to ``path`` blocks
    exactly as it would behind a slow concurrent writer. The yielded event
    releases the lock early; otherwise it is released on exit. Use to
    assert that contended stores wait and then complete rather than
    corrupting the file or deadlocking.
    """
    release = threading.Event()
    acquired = threading.Event()

    def hold() -> None:
        with _database._advisory_file_lock(os.fspath(path)):
            acquired.set()
            release.wait(timeout=30.0)

    holder = threading.Thread(target=hold, daemon=True)
    holder.start()
    if not acquired.wait(timeout=10.0):  # pragma: no cover - defensive
        raise RuntimeError("lock holder thread failed to start")
    try:
        yield release
    finally:
        release.set()
        holder.join(timeout=10.0)


def corrupt_profile_file(path: str | os.PathLike[str], mode: str = "truncate") -> None:
    """Mangle a stored profile in place, the way real corruption does.

    ``mode``:

    * ``"truncate"`` — keep the first half of the file (torn write remnant);
    * ``"garbage"`` — overwrite with bytes that are not JSON at all;
    * ``"bad-dataset"`` — keep valid JSON but poison every data set's
      importance with ``NaN`` (exercises per-data-set quarantine rather
      than file-level rejection).
    """
    path = os.fspath(path)
    if mode == "truncate":
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text[: max(1, len(text) // 2)])
    elif mode == "garbage":
        with open(path, "wb") as handle:
            handle.write(b"\x00\xffnot json\x00")
    elif mode == "bad-dataset":
        import json

        with open(path, "r", encoding="utf-8") as handle:
            obj = json.load(handle)
        for entry in obj.get("datasets", []):
            entry["importance"] = "NaN"
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(obj, handle)
    else:
        raise ValueError(f"unknown corruption mode {mode!r}")


def tear_spill_log(path: str | os.PathLike[str], drop_bytes: int = 3) -> None:
    """Truncate a shipper spill log mid-frame, in place.

    The on-disk state a client crash leaves behind when it died inside a
    spill append: the final length-prefixed frame is incomplete. Replay
    must deliver every frame *before* the tear and treat the remnant as
    the end of the log — never crash, never deliver a half frame.
    """
    path = os.fspath(path)
    size = os.path.getsize(path)
    if size == 0:
        return
    with open(path, "r+b") as handle:
        handle.truncate(max(1, size - drop_bytes))


# -- rollout-path faults -----------------------------------------------------
#
# The rollout guard exists to survive a *misbehaving artifact*: one that
# loads fine but computes the wrong thing. These injectors manufacture
# that failure deterministically, at the three points where it can slip
# in — the recompile output, the canary verdict, and the gap between the
# journal write and the swap.


def poison_compiled_program(program: object, value: object = 424242) -> None:
    """Seed ``program``'s per-flavor artifact memo with *misbehaving*
    compiled artifacts: structurally healthy (they load, parse, and
    self-check clean) but returning ``value`` instead of the program's
    real result — the failure mode only differential validation or
    production observation can catch.

    Mutates the Program in place (and therefore any cache entry holding
    it); restore by recompiling or by clearing ``program.artifacts``.
    """
    from repro.scheme.compile_py.artifact import CompiledArtifact

    def misbehaving_main(
        global_env: object, hooks: object, charge: object
    ) -> object:
        return value

    for flavor in ("plain", "instr", "budget", "instr+budget"):
        program.artifacts[flavor] = CompiledArtifact(  # type: ignore[attr-defined]
            python_source=(
                "# injected fault: misbehaving compiled artifact\n"
                "_pgmp_main = None\n"
            ),
            filename="<injected-fault>",
            flavor=flavor,
            hook_sites=[],
            expansion_text="",
            compile_output="",
            main=misbehaving_main,
        )


@contextlib.contextmanager
def poisoned_recompiles(
    controller: object, value: object = 424242
) -> Iterator[None]:
    """Every recompile the controller performs yields a misbehaving
    artifact (see :func:`poison_compiled_program`): the expansion is the
    real one, but the compiled execution path returns ``value``.

    Caveat: the poison mutates the Program object, which the artifact
    cache may keep — recompiling against the same merged profile after
    the context exits can resurface the poisoned entry.
    """
    real = controller._recompile  # type: ignore[attr-defined]

    def poisoned(db: object) -> object:
        program = real(db)
        poison_compiled_program(program, value)
        return program

    controller._recompile = poisoned  # type: ignore[attr-defined]
    try:
        yield
    finally:
        controller._recompile = real  # type: ignore[attr-defined]


@contextlib.contextmanager
def failing_canary(
    guard: object, reason: str = "injected fault: canary failure"
) -> Iterator[None]:
    """The guard's canary rejects every candidate with ``reason`` —
    deterministic canary failure, for driving the circuit breaker."""
    from repro.service.rollout import CanaryResult

    real = guard.validator  # type: ignore[attr-defined]

    def fail(candidate: object) -> CanaryResult:
        return CanaryResult(passed=False, probes=1, failures=(reason,))

    guard.validator = fail  # type: ignore[attr-defined]
    try:
        yield
    finally:
        guard.validator = real  # type: ignore[attr-defined]


@contextlib.contextmanager
def crash_after_journal_commit(
    guard: object, message: str = "injected fault: crashed after journal write"
) -> Iterator[None]:
    """The controller process "dies" between the journal write and the
    in-memory swap: :meth:`RolloutGuard.commit` performs the real
    (fsynced) journal write, then raises. Restart-and-resume tests
    assert the journaled generation is what a fresh controller serves.
    """
    real = guard.commit  # type: ignore[attr-defined]

    def commit_then_crash(*args: object, **kwargs: object) -> object:
        real(*args, **kwargs)
        raise RuntimeError(message)

    guard.commit = commit_then_crash  # type: ignore[attr-defined]
    try:
        yield
    finally:
        guard.commit = real  # type: ignore[attr-defined]
