"""Test-support utilities shipped with the library.

:mod:`repro.testing.faults` injects deterministic filesystem and resource
faults into the profile lifecycle, so robustness behavior (quarantine,
degradation chains, step budgets) is testable without real disk failures.
"""
