"""The two sampling engines.

**Scheme — periodic counter subsetting.** The substrate already owns an
instrumentation seam: every hook site (interpreter ``compile()`` closure
or compiled-artifact ``hook_table`` entry) asks
:meth:`repro.scheme.instrument.Instrumenter.hook_for` for its bump.
``ProfileMode.SAMPLE`` makes that bump a stride gate — one integer
compare per execution, bumping by the stride on every ``stride``-th pass
so counts stay unbiased — which works identically on the interpreter and
the ``compile_py`` backend. On top of that, :class:`RunSampler` subsets
*whole runs* of production traffic (``pgmp ship --profile-mode
sampled``): one run in ``stride`` is instrumented and its counts scaled
back up, the rest execute with no hooks at all, so the steady-state
overhead is the instrumented-run cost divided by the stride plus one
predicate per run.

**pyast — ``sys.monitoring`` (PEP 669).** On Python ≥ 3.12,
:class:`MonitoringSampler` registers a ``CALL`` callback, immediately
``DISABLE``-s every call site that is not the ``__pgmp_profile__`` hook
(those sites then cost nothing until the sampler exits), and applies the
stride gate to the hook's key argument — no collector is installed, so
the hook itself runs its production fast path. On older interpreters
:func:`sampling_collector` falls back to :class:`SamplingCollector`, a
counter-set wrapper whose increment *is* the stride gate.
"""

from __future__ import annotations

import contextlib
import sys

from repro.core.counters import BaseCounterSet
from repro.core.profile_point import ProfilePoint

__all__ = [
    "MonitoringSampler",
    "RunSampler",
    "SamplingCollector",
    "monitoring_available",
    "sampling_collector",
]


def _validated_stride(stride: int) -> int:
    stride = int(stride)
    if stride < 1:
        raise ValueError(f"sample stride must be >= 1, got {stride}")
    return stride


class RunSampler:
    """Periodic whole-run subsetting for production traffic.

    ``gate()`` answers "instrument this run?" — true for the first run
    and every ``stride``-th run after it (deterministic, so tests and
    replays agree). Counts from an instrumented run are folded into the
    long-lived shipping counters scaled by the stride via :meth:`fold`,
    keeping the totals unbiased; :attr:`samples` accumulates the observed
    (unscaled) events for the dataset's confidence record.
    """

    __slots__ = ("stride", "_tick", "samples")

    def __init__(self, stride: int) -> None:
        self.stride = _validated_stride(stride)
        self._tick = 0
        self.samples = 0

    def gate(self) -> bool:
        """One predicate per run: the off-sample fast path."""
        tick = self._tick
        self._tick = tick + 1 if tick + 1 < self.stride else 0
        return tick == 0

    def fold(
        self, run_counters: BaseCounterSet, into: BaseCounterSet
    ) -> int:
        """Scale one instrumented run's counts by the stride and add them
        to the shipping counter set; returns the observed event count."""
        snapshot = run_counters.snapshot()
        observed = sum(snapshot.values())
        self.samples += observed
        if observed:
            into.apply_increments(
                {point: count * self.stride for point, count in snapshot.items()}
            )
        return observed


class SamplingCollector(BaseCounterSet):
    """A counter set whose increment is the per-point stride gate.

    Install it like any collector (``collecting_counters`` on pyast);
    every ``stride``-th bump of a point lands in the wrapped set
    multiplied by the stride, the rest cost one dict update on a small
    residue table. This is the portable pyast engine (and the reference
    semantics the ``sys.monitoring`` engine must match).
    """

    __slots__ = ("inner", "stride", "samples", "_residue")

    def __init__(self, inner: BaseCounterSet, stride: int) -> None:
        super().__init__(name=inner.name)
        self.inner = inner
        self.stride = _validated_stride(stride)
        #: Observed (pre-scaling) sampling events, for the confidence record.
        self.samples = 0
        self._residue: dict[ProfilePoint, int] = {}

    def increment(self, point: ProfilePoint, by: int = 1) -> None:
        self.samples += by
        stride = self.stride
        n = self._residue.get(point, 0) + by
        if n >= stride:
            self.inner.increment(point, by=(n // stride) * stride)
            n %= stride
        self._residue[point] = n

    def incrementer(self, point: ProfilePoint):
        def bump() -> None:
            self.increment(point)

        return bump

    def clear(self) -> None:
        self._residue.clear()
        self.samples = 0
        self.inner.clear()

    def count(self, point: ProfilePoint) -> int:
        return self.inner.count(point)

    def snapshot(self) -> dict[ProfilePoint, int]:
        return self.inner.snapshot()


def monitoring_available() -> bool:
    """Whether the PEP 669 engine can run on this interpreter."""
    return getattr(sys, "monitoring", None) is not None


class MonitoringSampler:
    """The ``sys.monitoring`` pyast engine (Python ≥ 3.12).

    A context manager: while active, ``CALL`` events fire once per call
    site; sites other than the profile hook are ``DISABLE``-d on first
    sight (steady-state cost zero), hook sites run the stride gate on the
    embedded point key and bump ``counters`` by the stride on a pass. The
    profile hook itself sees no installed collector and takes its
    production fast path.
    """

    def __init__(self, counters: BaseCounterSet, stride: int) -> None:
        if not monitoring_available():
            raise RuntimeError(
                "sys.monitoring is unavailable on this interpreter; "
                "use sampling_collector() for the portable engine"
            )
        self.counters = counters
        self.stride = _validated_stride(stride)
        self.samples = 0
        self._residue: dict[str, int] = {}
        self._tool_id: int | None = None

    def _on_call(self, code, offset, callable_obj, arg0):
        from repro.pyast.profiler import _point_for_key, profile_hook

        mon = sys.monitoring
        if callable_obj is not profile_hook:
            return mon.DISABLE
        if not isinstance(arg0, str):
            return None
        self.samples += 1
        n = self._residue.get(arg0, 0) + 1
        if n >= self.stride:
            n = 0
            self.counters.increment(_point_for_key(arg0), by=self.stride)
        self._residue[arg0] = n
        return None

    def __enter__(self) -> "MonitoringSampler":
        mon = sys.monitoring
        tool_id = mon.PROFILER_ID
        mon.use_tool_id(tool_id, "pgmp-sampler")
        self._tool_id = tool_id
        mon.register_callback(tool_id, mon.events.CALL, self._on_call)
        mon.set_events(tool_id, mon.events.CALL)
        return self

    def __exit__(self, *exc_info) -> None:
        mon = sys.monitoring
        if self._tool_id is not None:
            mon.set_events(self._tool_id, 0)
            mon.register_callback(self._tool_id, mon.events.CALL, None)
            mon.free_tool_id(self._tool_id)
            self._tool_id = None
            # Re-arm the call sites we DISABLE-d for any other tool.
            mon.restart_events()


@contextlib.contextmanager
def sampling_collector(
    counters: BaseCounterSet, stride: int, engine: str = "auto"
):
    """Collect sampled pyast counts into ``counters`` at ``stride``.

    Picks the PEP 669 engine when the interpreter has it (or when forced
    with ``engine="monitoring"``), the portable gate collector otherwise.
    Yields an object with ``samples`` (observed events) and ``stride``
    for building the dataset's confidence record.
    """
    if engine not in ("auto", "monitoring", "gate"):
        raise ValueError(f"unknown sampling engine {engine!r}")
    use_monitoring = engine == "monitoring" or (
        engine == "auto" and monitoring_available()
    )
    if use_monitoring:
        with MonitoringSampler(counters, stride) as sampler:
            yield sampler
        return
    from repro.pyast.profiler import collecting_counters

    gate = SamplingCollector(counters, stride)
    with collecting_counters(gate):
        yield gate
