"""Statistical reconstruction of sampled counts.

Both sampling engines thin the stream of execution events: only one
event in ``scale`` is observed. Reconstruction multiplies each observed
count back up by ``scale``, which is unbiased — under Bernoulli(1/k)
thinning of ``N`` true events the observed count ``n`` has expectation
``N/k``, so ``E[k·n] = N`` (the Scheme engine's deterministic stride
gate bumps *by* the stride for the same reason and therefore ships
pre-reconstructed counts).

The error bar is the normal approximation to the same model: with
``n ~ Binomial(N, 1/k)`` the reconstructed estimate ``N̂ = k·n`` has
``Var(N̂) = N·(k−1)``, giving a relative standard error of
``sqrt((k−1)/N) ≈ sqrt((k−1)/(k·n))``. :func:`relative_error_bar`
returns the 95% half-width (``z = 1.96``) of that interval, clamped to
``[0, 1]`` — an empty sample is maximally uncertain, exact data
(``k = 1``) is certain.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.core.counters import BaseCounterSet
from repro.profiling.confidence import DatasetConfidence

__all__ = [
    "Z_95",
    "confidence_for_counts",
    "reconstruct_counts",
    "relative_error_bar",
]

#: Two-sided 95% normal quantile.
Z_95 = 1.96


def relative_error_bar(samples: int, scale: float) -> float:
    """The relative 95% half-width of counts reconstructed from
    ``samples`` observed events at scaling factor ``scale``."""
    if scale <= 1.0:
        return 0.0
    if samples <= 0:
        return 1.0
    half_width = Z_95 * ((scale - 1.0) / (scale * samples)) ** 0.5
    return min(1.0, half_width)


def reconstruct_counts(
    observed: Mapping[str, int], scale: float
) -> dict[str, int]:
    """Scale raw observed sample counts back to count estimates.

    Used by the pyast ``sys.monitoring`` engine, which records one bump
    per *observed* event; the Scheme stride gate already bumps by the
    stride, so its counts arrive reconstructed.
    """
    if scale < 1.0:
        raise ValueError(f"scaling factor must be >= 1, got {scale}")
    return {key: round(count * scale) for key, count in observed.items()}


def confidence_for_counts(
    counters: BaseCounterSet | Mapping[str, int], scale: float
) -> DatasetConfidence:
    """The confidence record for a counter set holding *reconstructed*
    (already scaled) counts collected at ``scale``.

    The observed sampling-event count is recovered as
    ``total / scale`` — exact for the deterministic stride gate, the
    maximum-likelihood estimate for the monitoring engine.
    """
    if scale < 1.0:
        raise ValueError(f"scaling factor must be >= 1, got {scale}")
    if isinstance(counters, BaseCounterSet):
        total = counters.total()
    else:
        total = sum(counters.values())
    samples = round(total / scale)
    return DatasetConfidence.sampled(samples, scale)
