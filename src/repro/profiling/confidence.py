"""Per-dataset confidence records for sampled profile data.

A data set collected under full instrumentation is *exact*: its weights
are facts about the run. A data set collected by sampling is an
*estimate*: the stored counts are reconstructed from a subset of the
execution events, and a meta-program consulting them should know how
wide that estimate is before it commits to a clause reordering.

:class:`DatasetConfidence` is that record — collection mode, number of
observed sampling events, the scaling factor applied during
reconstruction, and a normal-approximation relative error bar (see
:func:`repro.profiling.reconstruct.relative_error_bar` for the math).
It rides along with each data set through the profile format
(:mod:`repro.core.database`), the service delta wire
(:mod:`repro.service.delta`), and the aggregator's merged state, and is
consulted by :func:`repro.core.api.profile_query` to route
low-confidence weights through the :func:`repro.core.policy.degrade`
choke point.

By convention a data set with **no** confidence record is exact — old
profile files and v1 wire peers therefore keep their meaning unchanged.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass

__all__ = [
    "COLLECTION_MODES",
    "DEFAULT_ERROR_BAR_THRESHOLD",
    "DatasetConfidence",
    "annotate_profile_load_span",
    "merge_confidences",
]

#: The two collection modes a data set can declare.
COLLECTION_MODES = ("exact", "sampled")

#: Relative error bars wider than this route the query through
#: ``degrade()`` rather than silently applying the weight. At the default
#: sample rate (10) the bar drops below this threshold after ~250
#: observed sampling events, so any realistically-sized data set clears
#: it; only starved data sets degrade.
DEFAULT_ERROR_BAR_THRESHOLD = 0.25


@dataclass(frozen=True)
class DatasetConfidence:
    """How much to trust one data set's reconstructed counts.

    ``samples`` is the number of sampling events actually observed
    (before scaling), ``scale`` the factor by which observed counts were
    multiplied during reconstruction, and ``error_bar`` the relative 95%
    half-width of the reconstructed counts under the normal
    approximation. Exact data has ``scale == 1.0`` and
    ``error_bar == 0.0``.
    """

    mode: str
    samples: int
    scale: float
    error_bar: float

    def __post_init__(self) -> None:
        if self.mode not in COLLECTION_MODES:
            raise ValueError(
                f"confidence mode must be one of {COLLECTION_MODES}, "
                f"got {self.mode!r}"
            )
        if self.samples < 0:
            raise ValueError(f"sample count must be >= 0, got {self.samples}")
        if self.scale < 1.0:
            raise ValueError(f"scaling factor must be >= 1, got {self.scale}")
        if not 0.0 <= self.error_bar <= 1.0:
            raise ValueError(
                f"error bar must be in [0, 1], got {self.error_bar}"
            )

    # -- constructors ------------------------------------------------------

    @classmethod
    def exact(cls) -> "DatasetConfidence":
        """The explicit record for fully-instrumented data."""
        return cls(mode="exact", samples=0, scale=1.0, error_bar=0.0)

    @classmethod
    def sampled(cls, samples: int, scale: float) -> "DatasetConfidence":
        """A record for data reconstructed from ``samples`` observed
        events at scaling factor ``scale``."""
        from repro.profiling.reconstruct import relative_error_bar

        return cls(
            mode="sampled",
            samples=int(samples),
            scale=float(scale),
            error_bar=relative_error_bar(samples, scale),
        )

    # -- queries -----------------------------------------------------------

    @property
    def is_sampled(self) -> bool:
        return self.mode == "sampled"

    def is_low(self, threshold: float = DEFAULT_ERROR_BAR_THRESHOLD) -> bool:
        """Whether this record's error bar is too wide to apply silently."""
        return self.is_sampled and self.error_bar > threshold

    # -- serialization (profile format + delta wire) -----------------------

    def to_json_object(self) -> dict:
        return {
            "mode": self.mode,
            "samples": self.samples,
            "scale": self.scale,
            "error_bar": round(self.error_bar, 6),
        }

    @classmethod
    def from_json_object(cls, obj: object) -> "DatasetConfidence":
        """Parse a stored/wire record; raises :class:`ValueError` on any
        shape problem (callers re-raise as their format error)."""
        if not isinstance(obj, Mapping):
            raise ValueError(
                f"confidence must be an object, got {type(obj).__name__}"
            )
        mode = obj.get("mode")
        if not isinstance(mode, str):
            raise ValueError("confidence mode must be a string")
        samples = obj.get("samples")
        if not isinstance(samples, int) or isinstance(samples, bool):
            raise ValueError("confidence samples must be an integer")
        scale = obj.get("scale")
        if isinstance(scale, bool) or not isinstance(scale, (int, float)):
            raise ValueError("confidence scale must be a number")
        error_bar = obj.get("error_bar")
        if isinstance(error_bar, bool) or not isinstance(
            error_bar, (int, float)
        ):
            raise ValueError("confidence error_bar must be a number")
        return cls(
            mode=mode,
            samples=samples,
            scale=float(scale),
            error_bar=float(error_bar),
        )

    def describe(self) -> str:
        """A short human rendering for reports and degradation reasons."""
        if not self.is_sampled:
            return "exact"
        return (
            f"sampled ±{self.error_bar:.0%} "
            f"(n={self.samples}, scale {self.scale:g}x)"
        )


def merge_confidences(
    confidences: Iterable["DatasetConfidence | None"],
) -> "DatasetConfidence | None":
    """Merge per-shipper/per-dataset records into one summary.

    ``None`` entries mean exact data. The merge is conservative: the
    result is sampled if *any* input was sampled, its sample count is the
    sum of the sampled inputs' counts, its scale their maximum, and its
    error bar is recomputed from the merged sample count — more observed
    events across shippers means a tighter merged bar, exactly as pooling
    independent samples should.
    """
    sampled = [
        conf for conf in confidences if conf is not None and conf.is_sampled
    ]
    if not sampled:
        return None
    total_samples = sum(conf.samples for conf in sampled)
    scale = max(conf.scale for conf in sampled)
    return DatasetConfidence.sampled(total_samples, scale)


def annotate_profile_load_span(span: object, db: object) -> None:
    """Tag a ``profile_load`` span with the loaded database's collection
    mode and merged error bar (both substrates' load paths call this).

    ``span`` is duck-typed (anything with an ``attrs`` dict — or ``None``
    when tracing is disabled); ``db`` must expose ``confidence_summary()``
    and ``dataset_confidences()``. Attributes are derived purely from the
    loaded data, so traces stay deterministic.
    """
    if span is None:
        return
    summary = db.confidence_summary()  # type: ignore[attr-defined]
    attrs = span.attrs  # type: ignore[attr-defined]
    if summary is None:
        attrs["mode"] = "exact"
        return
    attrs["mode"] = "sampled"
    attrs["error_bar"] = round(summary.error_bar, 6)
    attrs["sampled_datasets"] = sum(
        1
        for conf in db.dataset_confidences()  # type: ignore[attr-defined]
        if conf is not None and conf.is_sampled
    )
