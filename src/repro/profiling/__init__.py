"""Low-overhead sampling profiling for production traffic.

Full counter instrumentation (:mod:`repro.scheme.instrument`,
:mod:`repro.pyast.profiler`) is the right tool for representative runs
but too hot to leave on under fleet-scale live traffic. This package adds
the sampling tier on top of the same counter machinery:

* :mod:`repro.profiling.sampler` — the two sampling engines: a
  ``sys.monitoring`` (PEP 669) sampler for the pyast substrate and a
  periodic counter-subsetting sampler for the Scheme substrate (both
  interpreter and ``compile_py`` backend share it through the
  instrumentation hook seam).
* :mod:`repro.profiling.reconstruct` — statistical reconstruction of
  sampled counts back into unbiased count estimates and dataset weights.
* :mod:`repro.profiling.confidence` — the per-dataset
  :class:`~repro.profiling.confidence.DatasetConfidence` record (sample
  count, scaling factor, normal-approximation error bar) carried through
  the profile format and the service delta wire, so ``profile_query`` can
  route low-confidence weights through :func:`repro.core.policy.degrade`
  instead of letting a wide error bar silently flip an optimization.
"""

from repro.profiling.confidence import (
    DEFAULT_ERROR_BAR_THRESHOLD,
    DatasetConfidence,
    merge_confidences,
)
from repro.profiling.reconstruct import (
    confidence_for_counts,
    reconstruct_counts,
    relative_error_bar,
)
from repro.profiling.sampler import (
    MonitoringSampler,
    RunSampler,
    SamplingCollector,
    monitoring_available,
    sampling_collector,
)

__all__ = [
    "DEFAULT_ERROR_BAR_THRESHOLD",
    "DatasetConfidence",
    "MonitoringSampler",
    "RunSampler",
    "SamplingCollector",
    "confidence_for_counts",
    "merge_confidences",
    "monitoring_available",
    "reconstruct_counts",
    "relative_error_bar",
    "sampling_collector",
]
