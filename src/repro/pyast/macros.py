"""Macro expansion over Python ASTs.

A *macro* here is a registered transformer from a call-shaped AST node to a
replacement AST, run at "compile time" — i.e. when
:func:`expand_function` re-parses a function's source, rewrites macro
invocations, and recompiles it. Transformers receive a
:class:`MacroContext` exposing the Figure-4 operations
(``profile_query``, ``make_profile_point``, ``annotate``), so Python
meta-programs are profile-guided in exactly the way Scheme ones are.

The profile → optimize workflow mirrors the paper's: expand (macros see no
data, and typically emit instrumented code), run under
:func:`repro.pyast.profiler.collecting_counters`, record the counters into
the ambient database, then expand *again* — same source, same deterministic
points — and the macros now generate optimized code.

Limitations (documented, not hidden): macros can only be expanded in
functions whose source is available via ``inspect`` and which do not close
over enclosing-function locals.
"""

from __future__ import annotations

import ast
import contextlib
import functools
import inspect
import textwrap
from collections.abc import Callable

from repro.core import api as core_api
from repro.core.errors import MacroError
from repro.core.profile_point import ProfilePoint
from repro.obs.tracer import active_tracer
from repro.pyast.profiler import PROFILE_HOOK_NAME, profile_hook
from repro.pyast.srcloc import POINT_ATTR, node_location, node_point

__all__ = [
    "MacroContext",
    "MacroError",
    "MacroRegistry",
    "annotate_expr_ast",
    "default_registry",
    "expand_function",
    "macro",
]

_MAX_EXPANSION_PASSES = 64


def annotate_expr_ast(node: ast.expr, point: ProfilePoint) -> ast.expr:
    """``annotate-expr`` for the call-level profiler.

    Generates ``__pgmp_profile__("<key>", lambda: <node>)`` — a new function
    whose body is the expression, called through the profiling hook, per
    the paper's Racket implementation strategy.
    """
    thunk = ast.Lambda(
        args=ast.arguments(
            posonlyargs=[], args=[], vararg=None, kwonlyargs=[],
            kw_defaults=[], kwarg=None, defaults=[],
        ),
        body=node,
    )
    call = ast.Call(
        func=ast.Name(id=PROFILE_HOOK_NAME, ctx=ast.Load()),
        args=[ast.Constant(value=point.key()), thunk],
        keywords=[],
    )
    ast.copy_location(call, node)
    ast.copy_location(thunk, node)
    setattr(call, POINT_ATTR, point)
    return call


class MacroContext:
    """What a transformer sees: the Figure-4 API bound to its file."""

    def __init__(self, filename: str) -> None:
        self.filename = filename

    def location(self, node: ast.AST):
        return node_location(node, self.filename)

    def point_of(self, node: ast.AST) -> ProfilePoint | None:
        return node_point(node, self.filename)

    def profile_query(self, node_or_point: ast.AST | ProfilePoint) -> float:
        """The merged profile weight of a node or point (0.0 when unknown).

        Routed through the policy-aware :func:`repro.core.api.profile_query`,
        so corrupt profile data degrades to 0.0 (with a recorded reason)
        instead of crashing the transformer when the ambient
        :class:`~repro.core.policy.ProfilePolicy` is non-strict.
        """
        if isinstance(node_or_point, ProfilePoint):
            return core_api.profile_query(node_or_point)
        point = self.point_of(node_or_point)
        if point is None:
            return 0.0
        return core_api.profile_query(point)

    def has_profile_data(self) -> bool:
        return core_api.current_profile_information().has_data()

    def make_profile_point(self, base: ast.AST | None = None) -> ProfilePoint:
        location = node_location(base, self.filename) if base is not None else None
        return core_api.make_profile_point(location)

    def annotate(self, node: ast.expr, point: ProfilePoint) -> ast.expr:
        return annotate_expr_ast(node, point)


Transformer = Callable[[ast.Call, MacroContext], ast.AST]


class MacroRegistry:
    """Name → transformer mapping used by :func:`expand_function`."""

    def __init__(self) -> None:
        self._macros: dict[str, Transformer] = {}

    def register(self, name: str, transformer: Transformer) -> None:
        self._macros[name] = transformer

    def get(self, name: str) -> Transformer | None:
        return self._macros.get(name)

    def names(self) -> list[str]:
        return sorted(self._macros)

    def macro(self, name: str | None = None):
        """Decorator form: ``@registry.macro("case_")``."""

        def wrap(fn: Transformer) -> Transformer:
            self.register(name or fn.__name__, fn)
            return fn

        return wrap


_DEFAULT_REGISTRY = MacroRegistry()


def default_registry() -> MacroRegistry:
    return _DEFAULT_REGISTRY


def macro(name: str | None = None, registry: MacroRegistry | None = None):
    """Register a transformer in the default (or given) registry."""
    return (registry or _DEFAULT_REGISTRY).macro(name)


class _MacroExpander(ast.NodeTransformer):
    def __init__(self, registry: MacroRegistry, ctx: MacroContext) -> None:
        self.registry = registry
        self.ctx = ctx
        self.expanded = 0

    def visit_Call(self, node: ast.Call) -> ast.AST:
        self.generic_visit(node)
        if isinstance(node.func, ast.Name):
            transformer = self.registry.get(node.func.id)
            if transformer is not None:
                self.expanded += 1
                tracer = active_tracer()
                span = (
                    tracer.span(
                        "expand",
                        node.func.id,
                        location=str(self.ctx.location(node)),
                    )
                    if tracer is not None
                    else contextlib.nullcontext()
                )
                with span:
                    result = transformer(node, self.ctx)
                if not isinstance(result, ast.AST):
                    raise MacroError(
                        f"macro {node.func.id!r} returned {type(result).__name__}, "
                        f"not an AST node"
                    )
                ast.copy_location(result, node)
                return result
        return node


def expand_function(
    fn: Callable,
    registry: MacroRegistry | None = None,
    extra_globals: dict | None = None,
) -> Callable:
    """Expand the macros in ``fn`` and return the recompiled function.

    Re-invoking on the same function is the "recompile" of the paper's
    workflow: deterministic profile points are reset, so the new expansion
    sees the profile data the old expansion's instrumentation produced.
    """
    registry = registry or _DEFAULT_REGISTRY
    try:
        source = textwrap.dedent(inspect.getsource(fn))
    except (OSError, TypeError) as exc:
        raise MacroError(f"cannot get source of {fn!r}: {exc}") from exc
    filename = inspect.getsourcefile(fn) or "<python>"
    try:
        _, start_line = inspect.getsourcelines(fn)
    except (OSError, TypeError):
        start_line = 1

    tree = ast.parse(source, filename=filename)
    func_def = tree.body[0]
    if not isinstance(func_def, (ast.FunctionDef, ast.AsyncFunctionDef)):
        raise MacroError(f"{fn!r} source does not start with a function definition")
    # Keep original line numbers so profile points are stable across
    # expansions of the same function.
    ast.increment_lineno(tree, start_line - 1)
    func_def.decorator_list = []

    core_api.reset_generated_points()
    ctx = MacroContext(filename)
    for _ in range(_MAX_EXPANSION_PASSES):
        expander = _MacroExpander(registry, ctx)
        tree = expander.visit(tree)
        if expander.expanded == 0:
            break
    else:
        raise MacroError("macro expansion did not terminate")

    ast.fix_missing_locations(tree)
    code = compile(tree, filename=filename, mode="exec")
    namespace = dict(fn.__globals__)
    namespace[PROFILE_HOOK_NAME] = profile_hook
    if extra_globals:
        namespace.update(extra_globals)
    exec(code, namespace)
    new_fn = namespace[func_def.name]
    functools.update_wrapper(new_fn, fn)
    # Expose the expansion for tests and the `pgmp` CLI's explain output.
    new_fn.__pgmp_ast__ = tree
    new_fn.__pgmp_source__ = ast.unparse(tree)
    return new_fn
