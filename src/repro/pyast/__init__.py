"""The Python-AST substrate: the design's second implementation.

The paper validates its design by implementing it in *two* meta-programming
systems (Chez Scheme and Racket, Section 4). This package is our second
implementation: meta-programs over Python ``ast`` nodes, with an
errortrace-style **call-level** profiler.

The correspondences:

=====================  ==========================================
Racket                 here
=====================  ==========================================
syntax objects         ``ast`` nodes (``lineno``/``col_offset``)
reader source info     ``ast.parse`` location attributes
errortrace             :class:`repro.pyast.profiler.CallProfiler`
``annotate-expr``      wraps the expression in a generated
                       function call (the paper's key Racket
                       difference — the profiler only counts
                       calls, so counting an expression means
                       making its evaluation a call)
``define-syntax``      :func:`repro.pyast.macros.macro` +
                       :func:`repro.pyast.macros.expand_function`
=====================  ==========================================
"""

from repro.pyast.srcloc import node_location, node_point
from repro.pyast.substrate import PyAstSubstrate
from repro.pyast.profiler import (
    CallProfiler,
    collecting_counters,
    profile_hook,
    PROFILE_HOOK_NAME,
)
from repro.pyast.macros import (
    MacroContext,
    MacroError,
    MacroRegistry,
    annotate_expr_ast,
    default_registry,
    expand_function,
    macro,
)
from repro.pyast.casestudies import case_weights_key, if_r, pycase
from repro.pyast.collections_study import (
    DequeSeq,
    ListSeq,
    PYSEQ_RUNTIME,
    pyseq,
)
from repro.pyast.system import PyAstSystem

__all__ = [
    "CallProfiler",
    "DequeSeq",
    "ListSeq",
    "PYSEQ_RUNTIME",
    "pyseq",
    "MacroContext",
    "MacroError",
    "MacroRegistry",
    "PROFILE_HOOK_NAME",
    "PyAstSubstrate",
    "PyAstSystem",
    "annotate_expr_ast",
    "case_weights_key",
    "collecting_counters",
    "default_registry",
    "expand_function",
    "if_r",
    "macro",
    "node_location",
    "node_point",
    "profile_hook",
    "pycase",
]
