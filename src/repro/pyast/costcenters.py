"""§5.1 — cost-centers as profile points (the Template Haskell sketch).

The paper argues the design ports to GHC because "cost-centers map easily
to profile points": GHC attributes costs to named cost-centers (one per
function by default, more via ``{-# SCC "name" #-}`` annotations), and a
Template Haskell implementation would manufacture and query points through
those names.

This module demonstrates that mapping concretely on the Python substrate:

* every cost-center **name** deterministically maps to one
  :class:`~repro.core.profile_point.ProfilePoint` (a synthetic location in
  the pseudo-file ``<cost-centers>``, so names are stable across runs and
  processes — the SCC property);
* ``@cost_center("name")`` is the SCC annotation: entering the function
  bumps the name's counter when a collector is installed;
* :func:`cost_center_point` is what a meta-program calls to
  ``profile-query`` a cost-center;
* profiles interoperate with the ordinary
  :class:`~repro.core.database.ProfileDatabase` store/load/merge machinery
  — the paper's "implementing load-profile is a simple matter of parsing
  profile files" collapses to reusing the existing format.
"""

from __future__ import annotations

import functools
from collections.abc import Callable

from repro.core.profile_point import ProfilePoint
from repro.core.srcloc import SourceLocation
from repro.pyast.profiler import active_collector

__all__ = ["cost_center", "cost_center_point", "cost_center_weight"]

#: The pseudo-file cost-center locations live in. Offsets are derived from
#: the name so equal names collide (same counter) and distinct names don't.
_PSEUDO_FILE = "<cost-centers>"

_BY_NAME: dict[str, ProfilePoint] = {}


def cost_center_point(name: str) -> ProfilePoint:
    """The unique profile point of the cost-center called ``name``.

    Deterministic: the same name yields the same point in every process,
    so stored profiles remain queryable across compiler invocations.
    """
    point = _BY_NAME.get(name)
    if point is None:
        # A stable synthetic span per name: hash-free, derived from the
        # name itself so that serialization round-trips reproduce it.
        digest = sum((i + 1) * byte for i, byte in enumerate(name.encode())) % 10**9
        point = ProfilePoint.for_location(
            SourceLocation(f"{_PSEUDO_FILE}:{name}", digest, digest + 1)
        )
        _BY_NAME[name] = point
    return point


def cost_center(name: str | None = None) -> Callable:
    """Decorator: attribute this function's entries to a cost-center.

    With no argument the function's qualified name is the cost-center —
    GHC's "by default, each function defines a cost-center".
    """

    def wrap(fn: Callable) -> Callable:
        center = name if name is not None else fn.__qualname__
        point = cost_center_point(center)

        @functools.wraps(fn)
        def entered(*args, **kwargs):
            collector = active_collector()
            if collector is not None:
                collector.increment(point)
            return fn(*args, **kwargs)

        entered.__cost_center__ = center
        entered.__cost_center_point__ = point
        return entered

    return wrap


def cost_center_weight(name: str) -> float:
    """``profile-query`` by cost-center name against the ambient database."""
    from repro.core.api import current_profile_information

    return current_profile_information().query(cost_center_point(name))
