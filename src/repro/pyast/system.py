"""The profile → optimize workflow driver for the Python substrate."""

from __future__ import annotations

import os
from collections.abc import Callable, Iterable

from repro.core.api import using_profile_information
from repro.core.counters import BaseCounterSet, CounterSet
from repro.core.database import ProfileDatabase
from repro.pyast.macros import MacroRegistry, expand_function
from repro.pyast.profiler import collecting_counters

__all__ = ["PyAstSystem"]


class PyAstSystem:
    """One compile/profile/recompile cycle manager, like
    :class:`repro.scheme.SchemeSystem` but for Python functions."""

    def __init__(self, profile_db: ProfileDatabase | None = None) -> None:
        self.profile_db = profile_db if profile_db is not None else ProfileDatabase()

    def expand(
        self,
        fn: Callable,
        registry: MacroRegistry | None = None,
        extra_globals: dict | None = None,
    ) -> Callable:
        """Expand ``fn``'s macros against the current profile database.

        Before any profiling this emits instrumented code; after
        :meth:`profile` has recorded data, the same call emits optimized
        code — the two compiles of the paper's workflow. ``extra_globals``
        are injected into the recompiled function's globals (for runtime
        helpers the expansion references).
        """
        with using_profile_information(self.profile_db):
            return expand_function(fn, registry, extra_globals)

    def profile(
        self,
        expanded_fn: Callable,
        inputs: Iterable[tuple],
        importance: float = 1.0,
        counters: BaseCounterSet | None = None,
    ) -> BaseCounterSet:
        """Run ``expanded_fn`` over representative inputs, collecting one
        data set of counters and recording its weights.

        Pass a :class:`~repro.core.counters.ShardedCounterSet` as
        ``counters`` when the representative run itself is multi-threaded.
        """
        if counters is None:
            counters = CounterSet(name=getattr(expanded_fn, "__name__", "pyast-run"))
        with collecting_counters(counters):
            for args in inputs:
                expanded_fn(*args)
        self.profile_db.record_counters(counters, importance)
        return counters

    def store_profile(self, path: str | os.PathLike[str]) -> None:
        self.profile_db.store(path)

    def load_profile(self, path: str | os.PathLike[str]) -> None:
        self.profile_db = ProfileDatabase.load(path)
