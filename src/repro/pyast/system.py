"""The profile → optimize workflow driver for the Python substrate."""

from __future__ import annotations

import os
from collections.abc import Callable, Iterable, Mapping

from repro.core.api import using_profile_information
from repro.core.counters import BaseCounterSet, CounterSet
from repro.core.database import ProfileDatabase
from repro.core.errors import ProfileError, ProfileFormatError
from repro.core.policy import (
    DegradationLog,
    ProfilePolicy,
    degrade,
    using_profile_policy,
)
from repro.obs.logs import get_logger
from repro.obs.metrics import get_global_metrics
from repro.obs.tracer import maybe_span
from repro.profiling.confidence import annotate_profile_load_span
from repro.profiling.reconstruct import confidence_for_counts
from repro.profiling.sampler import sampling_collector
from repro.pyast.macros import MacroRegistry, expand_function
from repro.pyast.profiler import collecting_counters

__all__ = ["PyAstSystem"]

logger = get_logger(__name__)


class PyAstSystem:
    """One compile/profile/recompile cycle manager, like
    :class:`repro.scheme.SchemeSystem` but for Python functions."""

    def __init__(
        self,
        profile_db: ProfileDatabase | None = None,
        policy: ProfilePolicy | str = ProfilePolicy.STRICT,
        degradations: DegradationLog | None = None,
    ) -> None:
        self.profile_db = profile_db if profile_db is not None else ProfileDatabase()
        self.policy = ProfilePolicy.coerce(policy)
        self.degradations = (
            degradations if degradations is not None else DegradationLog()
        )

    def _policy_scope(self):
        return using_profile_policy(self.policy, self.degradations)

    def expand(
        self,
        fn: Callable,
        registry: MacroRegistry | None = None,
        extra_globals: dict | None = None,
    ) -> Callable:
        """Expand ``fn``'s macros against the current profile database.

        Before any profiling this emits instrumented code; after
        :meth:`profile` has recorded data, the same call emits optimized
        code — the two compiles of the paper's workflow. ``extra_globals``
        are injected into the recompiled function's globals (for runtime
        helpers the expansion references).

        Under a non-strict :attr:`policy`, a profile-data failure during
        expansion falls back to re-expanding against an empty database (the
        unoptimized expansion), with the reason recorded in
        :attr:`degradations`.
        """
        name = getattr(fn, "__name__", "<function>")
        get_global_metrics().inc("pyast_expansions_total")
        logger.debug("expanding %s", name)
        with self._policy_scope(), maybe_span("program", name, substrate="pyast"):
            try:
                with using_profile_information(self.profile_db):
                    return expand_function(fn, registry, extra_globals)
            except ProfileError as exc:
                if self.policy is ProfilePolicy.STRICT:
                    raise
                degrade(
                    "expand",
                    f"profile data unusable during expansion: {exc}",
                    "re-expanding without profile data (unoptimized)",
                    error=exc,
                )
                with using_profile_information(ProfileDatabase()):
                    return expand_function(fn, registry, extra_globals)

    def profile(
        self,
        expanded_fn: Callable,
        inputs: Iterable[tuple],
        importance: float = 1.0,
        counters: BaseCounterSet | None = None,
        fingerprints: Mapping[str, str] | None = None,
    ) -> BaseCounterSet:
        """Run ``expanded_fn`` over representative inputs, collecting one
        data set of counters and recording its weights.

        Pass a :class:`~repro.core.counters.ShardedCounterSet` as
        ``counters`` when the representative run itself is multi-threaded,
        and ``fingerprints`` (filename → :func:`source_fingerprint` digest)
        to make the data set staleness-checkable on later loads.
        """
        if counters is None:
            counters = CounterSet(name=getattr(expanded_fn, "__name__", "pyast-run"))
        with maybe_span(
            "instrument", getattr(expanded_fn, "__name__", "pyast-run")
        ), collecting_counters(counters):
            for args in inputs:
                expanded_fn(*args)
        self.profile_db.record_counters(counters, importance, fingerprints)
        return counters

    def profile_sampled(
        self,
        expanded_fn: Callable,
        inputs: Iterable[tuple],
        sample_stride: int = 10,
        importance: float = 1.0,
        counters: BaseCounterSet | None = None,
        fingerprints: Mapping[str, str] | None = None,
        engine: str = "auto",
    ) -> BaseCounterSet:
        """Like :meth:`profile`, but through the sampling profiler.

        Only every ``sample_stride``-th hook event is recorded (scaled
        back up so counts stay unbiased); the recorded data set carries a
        :class:`~repro.profiling.confidence.DatasetConfidence` record. On
        Python ≥ 3.12 the ``sys.monitoring`` engine observes the hook's
        call sites directly (no collector installed, so the hook runs its
        production fast path); older interpreters fall back to the
        portable gate collector. ``engine`` forces ``"monitoring"`` or
        ``"gate"`` explicitly.
        """
        if counters is None:
            counters = CounterSet(name=getattr(expanded_fn, "__name__", "pyast-run"))
        name = getattr(expanded_fn, "__name__", "pyast-run")
        with maybe_span(
            "sample", name, stride=sample_stride, engine=engine
        ), sampling_collector(counters, sample_stride, engine=engine) as sampler:
            for args in inputs:
                expanded_fn(*args)
        confidence = confidence_for_counts(counters, sample_stride)
        metrics = get_global_metrics()
        metrics.inc("samples_total", sampler.samples)
        metrics.inc("sampled_datasets_total")
        self.profile_db.record_counters(
            counters, importance, fingerprints, confidence
        )
        return counters

    def analyze(
        self,
        fn: Callable,
        registry: MacroRegistry | None = None,
    ):
        """Opt-in static analysis of ``fn`` (the ``pgmp lint`` passes).

        Runs the effects/exclusivity and coverage passes over ``fn``'s
        source, then expands it twice through :meth:`expand` for the
        profile-point hygiene and determinism passes, and checks
        :attr:`profile_db` for staleness. Returns an
        :class:`repro.analysis.AnalysisReport`; ``fn`` itself is never
        called.
        """
        from repro.analysis.pyast_passes import analyze_python_function

        return analyze_python_function(
            fn,
            db=self.profile_db,
            expand=lambda target: self.expand(target, registry),
        )

    def hot_swap_profile(self, db: ProfileDatabase) -> ProfileDatabase:
        """Atomically replace the ambient database; returns the old one.

        Mirrors :meth:`repro.scheme.SchemeSystem.hot_swap_profile` — the
        seam the online recompilation controller uses to re-expand against
        freshly merged weights without rebuilding the system.
        """
        previous = self.profile_db
        self.profile_db = db
        return previous

    def store_profile(self, path: str | os.PathLike[str]) -> None:
        self.profile_db.store(path)

    def load_profile(
        self,
        path: str | os.PathLike[str],
        sources: dict[str, str] | None = None,
    ) -> None:
        """Replace this system's database from a file, honoring
        :attr:`policy` exactly like
        :meth:`repro.scheme.SchemeSystem.load_profile`."""
        with maybe_span("profile_load", str(path)) as span:
            if self.policy is ProfilePolicy.STRICT:
                self.profile_db = ProfileDatabase.load(path, sources=sources)
                annotate_profile_load_span(span, self.profile_db)
                return
            try:
                db = ProfileDatabase.load(path, on_error="skip", sources=sources)
            except (ProfileFormatError, OSError) as exc:
                degrade(
                    "load-profile",
                    f"{path}: {exc}",
                    "continuing with an empty profile database (unoptimized)",
                    policy=self.policy,
                    log=self.degradations,
                )
                self.profile_db = ProfileDatabase()
                return
            for entry in db.quarantine:
                degrade(
                    "load-profile",
                    f"{path}: {entry}",
                    "quarantined the data set; loaded the rest",
                    policy=self.policy,
                    log=self.degradations,
                )
            self.profile_db = db
            annotate_profile_load_span(span, db)
        logger.info("loaded profile %s", path)
