"""The errortrace-style call-level profiler for the Python substrate.

Racket's errortrace "profiles only function calls" (Section 4.2); counting
an arbitrary expression therefore requires wrapping it in a generated
function and profiling the call. Instrumented Python code does exactly
that: ``annotate_expr`` rewrites an expression ``e`` into::

    __pgmp_profile__("<point key>", lambda: e)

where :func:`profile_hook` bumps the point's counter in the installed
:class:`~repro.core.counters.CounterSet` (if any) and invokes the thunk.
When no counter set is installed — a production run — the hook degrades to
one dict read plus the thunk call; as the paper notes for Racket, the
wrapping itself is residual overhead of call-level profiling (we measure it
in ``benchmarks/bench_sec44_overhead.py``).
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field

from repro.core.counters import CounterSet
from repro.core.profile_point import ProfilePoint

__all__ = [
    "PROFILE_HOOK_NAME",
    "profile_hook",
    "collecting_counters",
    "CallProfiler",
]

#: The name instrumented code uses to reach the hook; injected into the
#: globals of every expanded function.
PROFILE_HOOK_NAME = "__pgmp_profile__"

#: The active counter set, or None outside a profiling run.
_ACTIVE: list[CounterSet] = []

#: Cache from point key strings to ProfilePoint (keys are embedded as
#: string constants in instrumented code).
_POINT_CACHE: dict[str, ProfilePoint] = {}


def _point_for_key(key: str) -> ProfilePoint:
    point = _POINT_CACHE.get(key)
    if point is None:
        point = ProfilePoint.from_key(key)
        _POINT_CACHE[key] = point
    return point


def profile_hook(key: str, thunk):
    """Bump ``key``'s counter (when profiling) and evaluate the thunk."""
    if _ACTIVE:
        _ACTIVE[-1].increment(_point_for_key(key))
    return thunk()


@contextlib.contextmanager
def collecting_counters(counters: CounterSet):
    """Install ``counters`` as the active profile collector."""
    _ACTIVE.append(counters)
    try:
        yield counters
    finally:
        _ACTIVE.pop()


@dataclass
class CallProfiler:
    """A convenience bundle: a counter set plus context management."""

    counters: CounterSet = field(default_factory=lambda: CounterSet(name="pyast"))

    def collect(self):
        return collecting_counters(self.counters)

    def count(self, point: ProfilePoint) -> int:
        return self.counters.count(point)

    def reset(self) -> None:
        self.counters.clear()
