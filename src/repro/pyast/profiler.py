"""The errortrace-style call-level profiler for the Python substrate.

Racket's errortrace "profiles only function calls" (Section 4.2); counting
an arbitrary expression therefore requires wrapping it in a generated
function and profiling the call. Instrumented Python code does exactly
that: ``annotate_expr`` rewrites an expression ``e`` into::

    __pgmp_profile__("<point key>", lambda: e)

where :func:`profile_hook` bumps the point's counter in the installed
counter set (if any) and invokes the thunk. When no counter set is
installed — a production run — the hook degrades to one context-variable
read plus the thunk call; as the paper notes for Racket, the wrapping
itself is residual overhead of call-level profiling (we measure it in
``benchmarks/bench_sec44_overhead.py``).

Concurrency: the active-collector stack lives in a
:class:`contextvars.ContextVar`, so nested ``collecting_counters`` scopes
in concurrent tasks are isolated from each other. Worker threads spawned
by a ``ThreadPoolExecutor`` start from a fresh context and would see no
collector; pass ``all_threads=True`` to install the collector
process-wide (typically with a
:class:`~repro.core.counters.ShardedCounterSet`, whose increments are
lock-free per thread).
"""

from __future__ import annotations

import contextlib
import threading
from contextvars import ContextVar
from dataclasses import dataclass, field

from repro.core.counters import BaseCounterSet, CounterSet
from repro.core.profile_point import ProfilePoint

__all__ = [
    "PROFILE_HOOK_NAME",
    "profile_hook",
    "active_collector",
    "collecting_counters",
    "CallProfiler",
]

#: The name instrumented code uses to reach the hook; injected into the
#: globals of every expanded function.
PROFILE_HOOK_NAME = "__pgmp_profile__"

#: Context-local stack of active counter sets (innermost last). A tuple so
#: pushes/pops rebind rather than mutate — each context sees its own stack.
_ACTIVE: ContextVar[tuple[BaseCounterSet, ...]] = ContextVar(
    "pgmp_active_counters", default=()
)

#: Process-wide fallback collectors (``all_threads=True``), consulted when
#: the current context has none installed. Guarded by ``_PROCESS_LOCK``.
_PROCESS_ACTIVE: list[BaseCounterSet] = []
_PROCESS_LOCK = threading.Lock()

#: Cache from point key strings to ProfilePoint (keys are embedded as
#: string constants in instrumented code). Single-key dict reads/writes are
#: atomic under the GIL; a duplicate racing insert is harmless.
_POINT_CACHE: dict[str, ProfilePoint] = {}


def _point_for_key(key: str) -> ProfilePoint:
    point = _POINT_CACHE.get(key)
    if point is None:
        point = ProfilePoint.from_key(key)
        _POINT_CACHE[key] = point
    return point


def active_collector() -> BaseCounterSet | None:
    """The innermost installed counter set, or None outside profiling.

    Context-local installations shadow process-wide (``all_threads=True``)
    ones.
    """
    stack = _ACTIVE.get()
    if stack:
        return stack[-1]
    if _PROCESS_ACTIVE:
        return _PROCESS_ACTIVE[-1]
    return None


def profile_hook(key: str, thunk):
    """Bump ``key``'s counter (when profiling) and evaluate the thunk."""
    collector = active_collector()
    if collector is not None:
        collector.increment(_point_for_key(key))
    return thunk()


@contextlib.contextmanager
def collecting_counters(counters: BaseCounterSet, all_threads: bool = False):
    """Install ``counters`` as the active profile collector.

    By default the installation is scoped to the current context (and
    therefore the current thread/task): concurrent tasks each collecting
    into their own counter set do not observe each other's collectors.
    With ``all_threads=True`` the collector is also visible to threads
    that start from a fresh context — e.g. ``ThreadPoolExecutor`` workers
    running instrumented code; share a
    :class:`~repro.core.counters.ShardedCounterSet` for that case.
    """
    token = _ACTIVE.set(_ACTIVE.get() + (counters,))
    if all_threads:
        with _PROCESS_LOCK:
            _PROCESS_ACTIVE.append(counters)
    try:
        yield counters
    finally:
        _ACTIVE.reset(token)
        if all_threads:
            with _PROCESS_LOCK:
                # Remove this installation (not necessarily the top —
                # another thread may have installed since).
                for i in range(len(_PROCESS_ACTIVE) - 1, -1, -1):
                    if _PROCESS_ACTIVE[i] is counters:
                        del _PROCESS_ACTIVE[i]
                        break


@dataclass
class CallProfiler:
    """A convenience bundle: a counter set plus context management."""

    counters: BaseCounterSet = field(default_factory=lambda: CounterSet(name="pyast"))

    def collect(self, all_threads: bool = False):
        return collecting_counters(self.counters, all_threads=all_threads)

    def count(self, point: ProfilePoint) -> int:
        return self.counters.count(point)

    def reset(self) -> None:
        self.counters.clear()
