"""Source locations for Python AST nodes.

``ast.parse`` attaches ``lineno``/``col_offset``/``end_lineno``/
``end_col_offset`` to every node — the same information the Racket reader
attaches to syntax objects (Section 4.2). We fold them into the shared
:class:`~repro.core.srcloc.SourceLocation` representation so profile points
derived from Python expressions live in the same database as everything
else.
"""

from __future__ import annotations

import ast

from repro.core.profile_point import ProfilePoint
from repro.core.srcloc import SourceLocation

__all__ = ["node_location", "node_point", "POINT_ATTR"]

#: Attribute under which an explicit profile point is stored on a node.
POINT_ATTR = "_pgmp_point"


def node_location(node: ast.AST, filename: str = "<python>") -> SourceLocation | None:
    """The source location of ``node``, if it carries position info.

    Character offsets are synthesized from (line, column) pairs — stable
    and unique within a file, which is all profile points require.
    """
    lineno = getattr(node, "lineno", None)
    col = getattr(node, "col_offset", None)
    if lineno is None or col is None:
        return None
    end_lineno = getattr(node, "end_lineno", lineno) or lineno
    end_col = getattr(node, "end_col_offset", col) or col
    # Synthetic offsets: 10k columns per line keeps spans ordered.
    start = lineno * 10_000 + col
    end = end_lineno * 10_000 + end_col
    if end < start:
        end = start
    return SourceLocation(filename=filename, start=start, end=end, line=lineno, column=col)


def node_point(node: ast.AST, filename: str = "<python>") -> ProfilePoint | None:
    """The profile point of ``node``: explicit if annotated, else implicit."""
    explicit = getattr(node, POINT_ATTR, None)
    if isinstance(explicit, ProfilePoint):
        return explicit
    location = node_location(node, filename)
    if location is None:
        return None
    return ProfilePoint.for_location(location)
