"""Registers Python AST nodes with the generic Figure-4 API.

With this registered, ``repro.core.annotate_expr`` / ``profile_query`` work
on ``ast`` expressions exactly as they do on Scheme syntax objects — the
parametricity claim of the paper's Section 3 made concrete.
"""

from __future__ import annotations

import ast
import copy

from repro.core.api import register_substrate
from repro.core.profile_point import ProfilePoint
from repro.pyast.srcloc import POINT_ATTR, node_point

__all__ = ["PyAstSubstrate"]


class PyAstSubstrate:
    """The :class:`repro.core.api.SyntaxSubstrate` for Python ASTs."""

    def __init__(self, filename: str = "<python>") -> None:
        self.filename = filename

    def handles(self, expr: object) -> bool:
        return isinstance(expr, ast.AST)

    def point_of(self, expr: object) -> ProfilePoint | None:
        assert isinstance(expr, ast.AST)
        return node_point(expr, self.filename)

    def with_point(self, expr: object, point: ProfilePoint) -> object:
        assert isinstance(expr, ast.AST)
        clone = copy.deepcopy(expr)
        setattr(clone, POINT_ATTR, point)
        return clone


register_substrate(PyAstSubstrate())
