"""§6.3 on the Python substrate: profile-guided collection specialization.

Python's own standard library has the asymmetry the paper exploits:

* ``list`` — O(1) random access, O(n) ``insert(0, x)``;
* ``collections.deque`` — O(1) ``appendleft``, O(n) random access.

The ``pyseq(...)`` macro constructs a profiled sequence. Each *use site*
gets two deterministic profile points (one counting front-operations, one
counting random access — manufactured with ``make_profile_point``, exactly
like Figure 13's ``list-src``/``vector-src``); the wrapper methods bump
them through the errortrace-style call hook. On re-expansion with profile
data, the constructor emits the representation whose fast operations
dominated, and — like Figure 13 — prints a compile-time recommendation
when the current source representation looks wrong.
"""

from __future__ import annotations

import ast
from collections import deque

from repro.core.errors import MacroError
from repro.core.profile_point import ProfilePoint
from repro.pyast.macros import MacroContext, macro
from repro.pyast.profiler import _point_for_key, active_collector

__all__ = ["pyseq", "ListSeq", "DequeSeq", "PYSEQ_RUNTIME"]


class _ProfiledSeq:
    """Shared behaviour: every operation bumps its classification's point."""

    #: operations that are asymptotically fast on a front-extended (deque)
    #: representation
    FRONT_OPS = frozenset({"push_front", "pop_front", "first"})
    #: operations that are asymptotically fast on a random-access (list)
    #: representation
    ACCESS_OPS = frozenset({"ref", "set", "length"})

    def __init__(self, items, front_key: str, access_key: str) -> None:
        self._data = self._container(items)
        self._front_point = _point_for_key(front_key)
        self._access_point = _point_for_key(access_key)

    def _count(self, point: ProfilePoint) -> None:
        collector = active_collector()
        if collector is not None:
            collector.increment(point)

    # -- the sequence interface ---------------------------------------------------

    def push_front(self, value) -> None:
        self._count(self._front_point)
        self._push_front(value)

    def pop_front(self):
        self._count(self._front_point)
        return self._pop_front()

    def first(self):
        self._count(self._front_point)
        return self._data[0]

    def ref(self, index: int):
        self._count(self._access_point)
        return self._data[index]

    def set(self, index: int, value) -> None:
        self._count(self._access_point)
        self._data[index] = value

    def length(self) -> int:
        self._count(self._access_point)
        return len(self._data)

    def to_list(self) -> list:
        return list(self._data)


class ListSeq(_ProfiledSeq):
    """Random-access-fast representation."""

    @staticmethod
    def _container(items):
        return list(items)

    def _push_front(self, value) -> None:
        self._data.insert(0, value)  # O(n): the slow path being profiled

    def _pop_front(self):
        return self._data.pop(0)  # O(n)


class DequeSeq(_ProfiledSeq):
    """Front-operation-fast representation."""

    @staticmethod
    def _container(items):
        return deque(items)

    def _push_front(self, value) -> None:
        self._data.appendleft(value)  # O(1)

    def _pop_front(self):
        return self._data.popleft()  # O(1)


#: Names the expanded code needs in its globals.
PYSEQ_RUNTIME = {"ListSeq": ListSeq, "DequeSeq": DequeSeq}


def pyseq(*items):  # pragma: no cover - replaced by expansion
    """Surface form: unexpanded calls build an (unprofiled) ListSeq."""
    return ListSeq(list(items), _null_key(), _null_key())


def _null_key() -> str:
    from repro.core.srcloc import SourceLocation

    return ProfilePoint.for_location(SourceLocation("<unexpanded>", 0, 1)).key()


@macro("pyseq")
def _expand_pyseq(node: ast.Call, ctx: MacroContext) -> ast.AST:
    if node.keywords:
        raise MacroError("pyseq takes only positional element expressions")
    # Fresh per-use-site points, derived from the call's source location —
    # deterministic across expansions (Figure 13's list-src / vector-src).
    front_point = ctx.make_profile_point(node)
    access_point = ctx.make_profile_point(node)
    front_weight = ctx.profile_query(front_point)
    access_weight = ctx.profile_query(access_point)

    use_deque = ctx.has_profile_data() and front_weight > access_weight
    class_name = "DequeSeq" if use_deque else "ListSeq"
    if ctx.has_profile_data() and use_deque:
        print(
            f"pgmp: specializing pyseq at line {node.lineno} to deque "
            f"(front ops weight {front_weight:.2f} > access {access_weight:.2f})"
        )

    constructor = ast.Call(
        func=ast.Name(id=class_name, ctx=ast.Load()),
        args=[
            ast.List(elts=list(node.args), ctx=ast.Load()),
            ast.Constant(value=front_point.key()),
            ast.Constant(value=access_point.key()),
        ],
        keywords=[],
    )
    return ast.copy_location(constructor, node)
