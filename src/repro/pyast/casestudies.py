"""Profile-guided macros for the Python substrate: ``if_r`` and ``pycase``.

The same meta-programs as the paper's running example (Figure 1) and §6.1
case study, reimplemented over Python ASTs to demonstrate that the design —
not the Scheme substrate — is what carries them. Both macros:

* derive each branch's profile point *implicitly from its source location*
  (as Chez does for every expression),
* annotate branch bodies with call-level instrumentation (as the Racket
  implementation must, since errortrace counts only calls), and
* on re-expansion with profile data, emit branches ordered hottest-first.

Usage::

    from repro.pyast import PyAstSystem, pycase

    def classify(c):
        return pycase(c,
            ((" ", "\\t"), "white-space"),
            (("0", "1", "2"), "digit"),
            (("(",), "start-paren"),
            default="other")

    system = PyAstSystem()
    instrumented = system.expand(classify)
    system.profile(instrumented, [(c,) for c in "((((1  ))))"])
    optimized = system.expand(classify)   # branches now reordered
"""

from __future__ import annotations

import ast

from repro.core.errors import MacroError
from repro.obs.tracer import active_tracer
from repro.pyast.macros import MacroContext, macro

__all__ = ["if_r", "pycase", "case_weights_key"]


def if_r(test, then, orelse):  # pragma: no cover - replaced by expansion
    """Surface form of the reordering conditional (expanded away).

    Calling the unexpanded function still computes the right value, so code
    using ``if_r`` runs correctly even before ``expand_function`` touches it
    — but without profiling or reordering. (Note: as a plain function both
    branches are evaluated; the macro expansion restores laziness.)
    """
    return then if test else orelse


def pycase(key, *clauses, default=None):  # pragma: no cover - replaced by expansion
    """Surface form of the profile-guided ``case`` (expanded away)."""
    for constants, result in clauses:
        if key in constants:
            return result
    return default


def case_weights_key(clause_result_node: ast.AST, ctx: MacroContext) -> float:
    """The sort key §6.1 uses: the profile weight of the clause body."""
    return ctx.profile_query(clause_result_node)


@macro("if_r")
def _expand_if_r(node: ast.Call, ctx: MacroContext) -> ast.AST:
    """Figure 1, over Python ASTs."""
    if len(node.args) != 3 or node.keywords:
        raise MacroError("if_r(test, then, orelse) takes exactly three arguments")
    test, then, orelse = node.args
    t_point = ctx.point_of(then)
    f_point = ctx.point_of(orelse)
    if t_point is None or f_point is None:
        raise MacroError("if_r branches need source locations")
    then_i = ctx.annotate(then, t_point)
    orelse_i = ctx.annotate(orelse, f_point)
    t_weight = ctx.profile_query(t_point)
    f_weight = ctx.profile_query(f_point)
    tracer = active_tracer()
    if t_weight < f_weight:
        if tracer is not None:
            tracer.decision(
                "if_r",
                "pyast",
                chosen=("swapped-branches", "negated-test"),
                rejected=("source-order",),
                location=ctx.location(node),
                note="false branch hotter; negated the test",
            )
        # (if (not test) f-branch t-branch)
        flipped = ast.UnaryOp(op=ast.Not(), operand=test)
        ast.copy_location(flipped, test)
        result: ast.expr = ast.IfExp(test=flipped, body=orelse_i, orelse=then_i)
    else:
        if tracer is not None:
            tracer.decision(
                "if_r",
                "pyast",
                chosen=("source-order",),
                rejected=("swapped-branches",),
                location=ctx.location(node),
                note="true branch at least as hot; kept source order",
            )
        result = ast.IfExp(test=test, body=then_i, orelse=orelse_i)
    return ast.copy_location(result, node)


@macro("pycase")
def _expand_pycase(node: ast.Call, ctx: MacroContext) -> ast.AST:
    """§6.1 for Python: rewrite clauses to membership tests, reorder by
    weight, fall through to the default."""
    if len(node.args) < 2:
        raise MacroError("pycase(key, (constants, result), ..., default=...) "
                         "needs a key and at least one clause")
    key_expr = node.args[0]
    clauses: list[tuple[ast.expr, ast.expr]] = []
    for arg in node.args[1:]:
        if not isinstance(arg, ast.Tuple) or len(arg.elts) != 2:
            raise MacroError(
                "each pycase clause must be a 2-tuple literal: (constants, result)"
            )
        clauses.append((arg.elts[0], arg.elts[1]))
    default: ast.expr = ast.Constant(value=None)
    for kw in node.keywords:
        if kw.arg == "default":
            default = kw.value
        else:
            raise MacroError(f"pycase: unknown keyword {kw.arg!r}")
    ast.copy_location(default, node)

    # Sort clauses hottest-first. Equal-weight clauses keep their source
    # order via an explicit original-index tie-break — deterministic
    # re-expansion guaranteed, not inherited from sort stability.
    weighted = sorted(
        enumerate(clauses),
        key=lambda pair: (-case_weights_key(pair[1][1], ctx), pair[0]),
    )
    tracer = active_tracer()
    if tracer is not None:
        tracer.decision(
            "pycase",
            "pyast",
            chosen=tuple(
                ast.unparse(constants) for _i, (constants, _r) in weighted
            ),
            rejected=tuple(
                ast.unparse(constants) for constants, _r in clauses
            ),
            location=ctx.location(node),
            note="emitted clause order vs. source order",
        )

    # (lambda __pgmp_key: r1 if __pgmp_key in c1 else ... default)(key)
    key_name = "__pgmp_key"
    body: ast.expr = default
    for _index, (constants, result) in reversed(weighted):
        point = ctx.point_of(result)
        annotated = ctx.annotate(result, point) if point is not None else result
        test = ast.Compare(
            left=ast.Name(id=key_name, ctx=ast.Load()),
            ops=[ast.In()],
            comparators=[constants],
        )
        ast.copy_location(test, constants)
        body = ast.IfExp(test=test, body=annotated, orelse=body)
        ast.copy_location(body, node)
    lam = ast.Lambda(
        args=ast.arguments(
            posonlyargs=[],
            args=[ast.arg(arg=key_name)],
            vararg=None, kwonlyargs=[], kw_defaults=[], kwarg=None, defaults=[],
        ),
        body=body,
    )
    call = ast.Call(func=lam, args=[key_expr], keywords=[])
    ast.copy_location(lam, node)
    ast.copy_location(call, node)
    return call
