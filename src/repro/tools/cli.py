"""``pgmp`` — the command-line front end to the Scheme substrate.

Subcommands mirror the paper's workflow:

* ``pgmp run FILE``       — compile (with any stored profile) and run
* ``pgmp expand FILE``    — print the expanded core program
* ``pgmp profile FILE``   — run instrumented and store profile weights
* ``pgmp optimize FILE``  — load a profile, print the optimized expansion
* ``pgmp workflow FILE``  — run the Section-4.3 three-pass protocol
* ``pgmp disasm FILE``    — print basic-block bytecode
* ``pgmp report FILE``    — render a stored profile over the source
* ``pgmp lint FILE...``   — static soundness & profile-hygiene analysis
* ``pgmp serve``          — run the continuous-profiling aggregator
* ``pgmp ship FILE``      — run instrumented, streaming deltas to ``serve``
* ``pgmp rollback``       — force a running ``serve`` back one generation
* ``pgmp trace FILE``     — record decision provenance during expansion
* ``pgmp explain FILE``   — why the expansion looks the way it does at a line

``pgmp --log-level LEVEL <command>`` turns on stdlib logging for the whole
``repro`` hierarchy (off by default).

Built-in case-study libraries are loadable by name via ``--library``:
``if-r``, ``case``, ``oop``, ``datastructs``, ``boolean``, ``inliner``, or a
path to a Scheme file.
"""

from __future__ import annotations

import argparse
import sys

from repro.core.database import ProfileDatabase
from repro.core.errors import PgmpError, ProfileFormatError
from repro.core.policy import DegradationLog, ProfilePolicy, degrade
from repro.scheme.core_forms import unparse_string
from repro.scheme.datum import write_datum
from repro.scheme.instrument import ProfileMode
from repro.scheme.pipeline import SchemeSystem

__all__ = ["main", "build_parser"]

_BUILTIN_LIBRARIES: dict[str, list[tuple[str, str]]] = {}


def _builtin_libraries() -> dict[str, list[tuple[str, str]]]:
    if not _BUILTIN_LIBRARIES:
        from repro.casestudies import (
            BOOLEAN_REORDER_LIBRARY,
            CASE_LIBRARY,
            EXCLUSIVE_COND_LIBRARY,
            IF_R_LIBRARY,
            INLINER_LIBRARY,
            OBJECT_SYSTEM_LIBRARY,
            PROFILED_LIST_LIBRARY,
            PROFILED_SEQUENCE_LIBRARY,
            PROFILED_VECTOR_LIBRARY,
        )
        from repro.casestudies.receiver_class import RECEIVER_CLASS_LIBRARY

        _BUILTIN_LIBRARIES.update(
            {
                "if-r": [(IF_R_LIBRARY, "if-r.ss")],
                "case": [
                    (EXCLUSIVE_COND_LIBRARY, "exclusive-cond.ss"),
                    (CASE_LIBRARY, "case.ss"),
                ],
                "oop": [
                    (OBJECT_SYSTEM_LIBRARY, "object-system.ss"),
                    (RECEIVER_CLASS_LIBRARY, "receiver-class.ss"),
                ],
                "datastructs": [
                    (PROFILED_LIST_LIBRARY, "profiled-list.ss"),
                    (PROFILED_VECTOR_LIBRARY, "profiled-vector.ss"),
                    (PROFILED_SEQUENCE_LIBRARY, "profiled-seq.ss"),
                ],
                "boolean": [(BOOLEAN_REORDER_LIBRARY, "boolean-reorder.ss")],
                "inliner": [(INLINER_LIBRARY, "inliner.ss")],
            }
        )
    return _BUILTIN_LIBRARIES


def _resolve_library_sources(names: list[str]) -> list[tuple[str, str]]:
    """``--library`` values to (source, filename) pairs (builtin or path)."""
    pairs: list[tuple[str, str]] = []
    for name in names:
        builtin = _builtin_libraries().get(name)
        if builtin is not None:
            pairs.extend(builtin)
        else:
            with open(name, "r", encoding="utf-8") as handle:
                pairs.append((handle.read(), name))
    return pairs


def _load_libraries(system: SchemeSystem, names: list[str]) -> list[str]:
    """Install libraries; returns their sources (for the workflow command)."""
    sources: list[str] = []
    for source, filename in _resolve_library_sources(names):
        system.load_library(source, filename)
        sources.append(source)
    return sources


def _load_profile_database(
    path: str,
    policy: ProfilePolicy | str,
    sources: dict[str, str] | None = None,
    degradations: DegradationLog | None = None,
) -> ProfileDatabase:
    """Load a stored profile honoring ``--profile-policy``.

    The one loading path shared by every subcommand that reads a profile
    file (``report``, ``lint``, and everything routed through
    :func:`_make_system`): strict raises on malformed or stale data,
    warn/ignore quarantine bad data sets (or fall back to an empty
    database) through the standard :func:`repro.core.policy.degrade`
    choke point.
    """
    policy = ProfilePolicy.coerce(policy)
    if policy is ProfilePolicy.STRICT:
        return ProfileDatabase.load(path, sources=sources)
    try:
        db = ProfileDatabase.load(path, on_error="skip", sources=sources)
    except (ProfileFormatError, OSError) as exc:
        degrade(
            "load-profile",
            f"{path}: {exc}",
            "continuing with an empty profile database (unoptimized)",
            policy=policy,
            log=degradations,
        )
        return ProfileDatabase()
    for entry in db.quarantine:
        degrade(
            "load-profile",
            f"{path}: {entry}",
            "quarantined the data set; loaded the rest",
            policy=policy,
            log=degradations,
        )
    return db


def _read_program(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def _mode(name: str) -> ProfileMode:
    return ProfileMode.CALL if name == "call" else ProfileMode.EXPR


def build_parser() -> argparse.ArgumentParser:
    from repro.obs.logs import LOG_LEVELS

    parser = argparse.ArgumentParser(
        prog="pgmp",
        description="Profile-guided meta-programming (PLDI 2015 reproduction).",
    )
    parser.add_argument(
        "--log-level",
        choices=list(LOG_LEVELS),
        default=None,
        help="enable stdlib logging for the repro.* hierarchy on stderr "
        "(default: logging stays off)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("file", help="Scheme source file ('-' for stdin)")
        p.add_argument(
            "--library",
            action="append",
            default=[],
            help="library to preload: if-r, case, oop, datastructs, or a path",
        )
        p.add_argument(
            "--profile-file",
            default=None,
            help="stored profile to load before compiling",
        )
        p.add_argument(
            "--simplify",
            action="store_true",
            help="contract immediate beta-redexes after expansion",
        )
        p.add_argument(
            "--profile-policy",
            choices=["strict", "warn", "ignore"],
            default="strict",
            help="what to do when profile data is missing, stale, or corrupt: "
            "strict fails the command, warn degrades with a message on "
            "stderr, ignore degrades silently (default: strict)",
        )
        p.add_argument(
            "--backend",
            choices=["interp", "compile"],
            default=None,
            help="execution backend: interp (the closure-compiling "
            "interpreter) or compile (translate the expansion to Python; "
            "identical semantics, counters, and errors). Default: "
            "$PGMP_BACKEND or interp — except pgmp optimize, which "
            "defaults to compile",
        )

    def sampling(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--profile-mode",
            choices=["exact", "sampled"],
            default="exact",
            help="profile collection mode: exact (full instrumentation) or "
            "sampled (the low-overhead sampling profiler; recorded data "
            "sets carry a per-dataset confidence record). Default: exact",
        )
        p.add_argument(
            "--sample-rate",
            type=int,
            default=10,
            metavar="N",
            help="sampling stride for --profile-mode sampled: one event in "
            "N is observed (one *run* in N, for ship); counts are scaled "
            "back up so totals stay unbiased (default: 10)",
        )

    p_run = sub.add_parser("run", help="compile and run a program")
    common(p_run)
    sampling(p_run)
    p_run.add_argument(
        "--instrument",
        choices=["expr", "call"],
        default=None,
        help="run instrumented and print counter totals",
    )

    p_expand = sub.add_parser("expand", help="print the expanded core program")
    common(p_expand)

    p_profile = sub.add_parser("profile", help="run instrumented; store weights")
    common(p_profile)
    sampling(p_profile)
    p_profile.add_argument("--out", required=True, help="profile file to write")
    p_profile.add_argument("--mode", choices=["expr", "call"], default="expr")

    p_opt = sub.add_parser("optimize", help="print the profile-optimized expansion")
    common(p_opt)
    p_opt.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="directory for on-disk compiled artifacts; a warm cache "
        "(same sources, same profile) re-expands nothing, even across "
        "processes (compile backend only)",
    )

    p_wf = sub.add_parser("workflow", help="run the three-pass source+block PGO")
    common(p_wf)
    p_wf.add_argument(
        "--checkpoint-dir",
        default=None,
        help="directory for pass-1/pass-2 checkpoints (enables resume)",
    )
    p_wf.add_argument(
        "--no-resume",
        action="store_true",
        help="ignore existing checkpoints; re-run every pass",
    )
    p_wf.add_argument(
        "--pass-budget",
        type=int,
        default=None,
        metavar="STEPS",
        help="step budget (interpreter/VM fuel) for each representative run",
    )

    p_dis = sub.add_parser("disasm", help="print basic-block bytecode")
    common(p_dis)

    p_trace = sub.add_parser(
        "trace", help="record decision provenance while expanding a program"
    )
    common(p_trace)
    p_trace.add_argument(
        "--format",
        choices=["text", "json", "chrome"],
        default="text",
        help="trace output format (default: text); json is the canonical "
        "versioned document (readable by report --trace), chrome is the "
        "trace_event format loadable in Perfetto",
    )
    p_trace.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help="write the trace to FILE instead of stdout",
    )

    p_explain = sub.add_parser(
        "explain",
        help="explain the profile-guided decisions at one source line",
    )
    common(p_explain)
    p_explain.add_argument(
        "--at",
        required=True,
        metavar="FILE:LINE",
        help="the source anchor to explain (e.g. prog.ss:12)",
    )

    p_rep = sub.add_parser("report", help="render a stored profile")
    common(p_rep)
    p_rep.add_argument("--top", type=int, default=10, help="hottest-N table size")
    p_rep.add_argument(
        "--histogram", action="store_true", help="also print a weight histogram"
    )
    p_rep.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="report output format (default: text); json is versioned and "
        "machine-readable, like pgmp lint --format json",
    )
    p_rep.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="also join a stored pgmp-trace JSON document (pgmp trace "
        "--format json) against the profile: which decisions the recorded "
        "weights drove, and whether those weights have since drifted",
    )

    p_serve = sub.add_parser(
        "serve", help="run the continuous-profiling aggregation service"
    )
    sampling(p_serve)
    p_serve.add_argument(
        "--listen",
        default="127.0.0.1:0",
        help="address to accept shippers on: host:port (port 0 = any free "
        "port, reported on stderr) or unix:/path (default: 127.0.0.1:0)",
    )
    p_serve.add_argument(
        "--checkpoint",
        default=None,
        help="profile file to checkpoint the merged weights into "
        "(readable by report/optimize/workflow)",
    )
    p_serve.add_argument(
        "--state",
        default=None,
        help="private state file (raw counts + delta ledger) enabling "
        "exact resume after a restart",
    )
    p_serve.add_argument(
        "--checkpoint-interval",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="how often to checkpoint and evaluate drift (default: 10)",
    )
    p_serve.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help="serve plaintext /metrics and /healthz on 127.0.0.1:PORT",
    )
    p_serve.add_argument(
        "--optimize",
        default=None,
        metavar="FILE",
        help="Scheme program to re-expand when the merged weights drift; "
        "enables the online recompilation controller",
    )
    p_serve.add_argument(
        "--library",
        action="append",
        default=[],
        help="library to preload for --optimize: if-r, case, oop, "
        "datastructs, boolean, inliner, or a path",
    )
    p_serve.add_argument(
        "--drift-threshold",
        type=float,
        default=0.05,
        metavar="L_INF",
        help="recompile when any merged weight moved by more than this "
        "(L-infinity distance, default: 0.05)",
    )
    p_serve.add_argument(
        "--profile-policy",
        choices=["strict", "warn", "ignore"],
        default="warn",
        help="degradation policy for bad deltas, unwritable checkpoints, "
        "and failed recompiles (default: warn — a profile service should "
        "log and keep serving)",
    )
    p_serve.add_argument(
        "--read-timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="per-connection read timeout for handler threads; a client "
        "sending no frame for this long is dropped (0 = never, "
        "default: 30)",
    )
    p_serve.add_argument(
        "--no-rollout-guard",
        action="store_true",
        help="swap recompiled artifacts without canary validation, "
        "journaling, or the circuit breaker (the pre-guard behavior)",
    )
    p_serve.add_argument(
        "--canary-probes",
        action="append",
        default=[],
        metavar="FILE",
        help="extra Scheme programs the pre-swap canary battery runs "
        "differentially (compiled vs interpreter); may repeat. The "
        "--optimize program itself is always probed",
    )
    p_serve.add_argument(
        "--journal-dir",
        default=None,
        metavar="DIR",
        help="directory for the fsynced generation journal (profile "
        "snapshots of the last --max-generations rollouts), enabling "
        "rollback and crash resume; default: in-memory only",
    )
    p_serve.add_argument(
        "--rollback-window",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="post-swap watch window: error-budget breaches observed "
        "within it trigger automatic rollback (default: 30)",
    )
    p_serve.add_argument(
        "--max-generations",
        type=int,
        default=5,
        metavar="N",
        help="journaled generations kept for rollback (default: 5)",
    )
    p_serve.add_argument(
        "--shards",
        type=int,
        default=0,
        metavar="N",
        help="run a supervised local fleet: N shard aggregators (each a "
        "subprocess with its own WAL and resumable state) uplinking into "
        "a root merger that owns the checkpoint and the controller; "
        "crashed shards are restarted in place (default: 0 = the single "
        "aggregator)",
    )
    p_serve.add_argument(
        "--fleet-data-dir",
        default="pgmp-fleet",
        metavar="DIR",
        help="working directory for --shards fleets: per-shard state "
        "files and WALs plus the root's state (default: pgmp-fleet)",
    )
    p_serve.add_argument(
        "--fleet-role",
        choices=["shard"],
        default=None,
        help="internal: run as one fleet shard (spawned by the --shards "
        "supervisor; requires --shard-id and --uplink)",
    )
    p_serve.add_argument(
        "--shard-id",
        default=None,
        help="internal: this shard's stable identity within the fleet",
    )
    p_serve.add_argument(
        "--uplink",
        default=None,
        metavar="ADDR",
        help="internal: the root merger address this shard uplinks to",
    )
    p_serve.add_argument(
        "--wal",
        default=None,
        metavar="DIR",
        help="internal: write-ahead-log directory making shard acks "
        "durable across crashes",
    )
    p_serve.add_argument(
        "--address-file",
        default=None,
        metavar="PATH",
        help="internal: write the bound listen address to this file "
        "once serving (the supervisor reads it back)",
    )

    p_rollback = sub.add_parser(
        "rollback",
        help="force a running pgmp serve to roll back one generation",
    )
    p_rollback.add_argument(
        "--connect",
        required=True,
        metavar="ADDR",
        help="aggregator address: host:port or unix:/path",
    )
    p_rollback.add_argument(
        "--reason",
        default="manual rollback (pgmp rollback)",
        help="reason recorded in the decision log and the quarantine",
    )
    p_rollback.add_argument(
        "--timeout",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="connect/read timeout (default: 5)",
    )

    p_ship = sub.add_parser(
        "ship", help="run a program instrumented, shipping profile deltas"
    )
    sampling(p_ship)
    p_ship.add_argument("file", help="Scheme source file ('-' for stdin)")
    p_ship.add_argument(
        "--connect",
        required=True,
        metavar="ADDR",
        help="aggregator address: host:port or unix:/path",
    )
    p_ship.add_argument(
        "--library",
        action="append",
        default=[],
        help="library to preload: if-r, case, oop, datastructs, or a path",
    )
    p_ship.add_argument(
        "--mode", choices=["expr", "call"], default="expr",
        help="instrumentation mode (default: expr)",
    )
    p_ship.add_argument(
        "--runs", type=int, default=1, help="instrumented runs to execute"
    )
    p_ship.add_argument(
        "--dataset",
        default=None,
        help="data-set name for the shipped deltas (default: the file name)",
    )
    p_ship.add_argument(
        "--shipper-id",
        default=None,
        help="stable shipper identity (default: host-pid-random)",
    )
    p_ship.add_argument(
        "--spill",
        default=None,
        metavar="PATH",
        help="spill undeliverable deltas to this file and replay them "
        "on reconnect",
    )
    p_ship.add_argument(
        "--profile-policy",
        choices=["strict", "warn", "ignore"],
        default="warn",
        help="what to do when deltas cannot be delivered (default: warn)",
    )
    p_ship.add_argument(
        "--timeout",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="connect/read timeout for the aggregator link (default: 5)",
    )
    p_ship.add_argument(
        "--fleet",
        action="store_true",
        help="treat --connect as a fleet root: fetch the shard ring from "
        "it and ship each delta to the shard owning its profile points "
        "(--spill becomes a directory, one spill file per shard)",
    )

    p_lint = sub.add_parser(
        "lint", help="static soundness & profile-hygiene analysis"
    )
    p_lint.add_argument(
        "files",
        nargs="+",
        help="Scheme or Python files to analyze; directories recurse "
        "over *.py and Scheme files",
    )
    p_lint.add_argument(
        "--library",
        action="append",
        default=[],
        help="library to preload: if-r, case, oop, datastructs, or a path "
        "(enables the expansion-dependent passes for Scheme files)",
    )
    p_lint.add_argument(
        "--profile-file",
        default=None,
        help="stored profile to check for coverage and staleness",
    )
    p_lint.add_argument(
        "--profile-policy",
        choices=["strict", "warn", "ignore"],
        default="strict",
        help="policy used while loading the profile and expanding programs",
    )
    p_lint.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="diagnostic output format (default: text)",
    )
    p_lint.add_argument(
        "--severity",
        choices=["info", "warning", "error"],
        default="warning",
        help="minimum severity to report (default: warning); the exit code "
        "reflects errors regardless",
    )
    p_lint.add_argument(
        "--verify-artifacts",
        action="store_true",
        help="additionally compile each program and run static translation "
        "validation (the PGMP5xx passes of `pgmp verify`) over every "
        "artifact flavor",
    )

    p_verify = sub.add_parser(
        "verify",
        help="static translation validation of compiled artifacts (PGMP5xx)",
    )
    p_verify.add_argument(
        "files",
        nargs="*",
        help="Scheme or Python files whose compiled artifacts to verify; "
        "directories recurse over *.py and Scheme files",
    )
    p_verify.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="also verify every cached artifact module in DIR (an "
        "ArtifactCache directory)",
    )
    p_verify.add_argument(
        "--library",
        action="append",
        default=[],
        help="library to preload: if-r, case, oop, datastructs, or a path",
    )
    p_verify.add_argument(
        "--profile-file",
        default=None,
        help="stored profile to expand against (a different profile can "
        "pick different expansions, hence different artifacts)",
    )
    p_verify.add_argument(
        "--profile-policy",
        choices=["strict", "warn", "ignore"],
        default="strict",
        help="policy used while loading the profile and expanding programs",
    )
    p_verify.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="diagnostic output format (default: text)",
    )
    p_verify.add_argument(
        "--severity",
        choices=["info", "warning", "error"],
        default="info",
        help="minimum severity to report (default: info, so PGMP506 "
        "interpreter fallbacks are visible); the exit code reflects "
        "errors regardless",
    )

    return parser


def _make_system(
    args: argparse.Namespace, source: str | None = None
) -> tuple[SchemeSystem, list[str]]:
    system = SchemeSystem(policy=args.profile_policy)
    sources = _load_libraries(system, args.library)
    if args.profile_file:
        # Hand the current program text over for staleness detection: a
        # profile collected against an older version of args.file is stale.
        staleness = {args.file: source} if source is not None else None
        system.profile_db = _load_profile_database(
            args.profile_file, system.policy, staleness, system.degradations
        )
    return system, sources


def _run_lint(args: argparse.Namespace) -> int:
    from repro.analysis import lint_paths, render_json, render_text

    db = None
    if args.profile_file:
        # No `sources` at load time: lint reports staleness as PGMP402
        # diagnostics instead of refusing to load the profile.
        db = _load_profile_database(args.profile_file, args.profile_policy)
    library_sources = _resolve_library_sources(args.library)
    report = lint_paths(
        args.files,
        library_sources=library_sources,
        db=db,
        policy=args.profile_policy,
    )
    if args.verify_artifacts:
        from repro.analysis import verify_paths

        report.extend(
            verify_paths(
                args.files,
                library_sources=library_sources,
                db=db,
                policy=args.profile_policy,
            )
        )
    if args.format == "json":
        print(render_json(report, args.severity))
    else:
        print(render_text(report, args.severity))
    return 1 if report.errors() else 0


def _run_verify(args: argparse.Namespace) -> int:
    from repro.analysis import (
        render_json,
        render_text,
        verify_cache_dir,
        verify_paths,
    )

    if not args.files and args.cache_dir is None:
        print(
            "pgmp verify: nothing to verify (pass files and/or --cache-dir)",
            file=sys.stderr,
        )
        return 2
    db = None
    if args.profile_file:
        db = _load_profile_database(args.profile_file, args.profile_policy)
    report = verify_paths(
        args.files,
        library_sources=_resolve_library_sources(args.library),
        db=db,
        policy=args.profile_policy,
    )
    if args.cache_dir is not None:
        report.extend(verify_cache_dir(args.cache_dir))
    if args.format == "json":
        print(render_json(report, args.severity))
    else:
        print(render_text(report, args.severity))
    return 1 if report.errors() else 0


def _trace_units(source: str, path: str) -> list[tuple[str, object, str]]:
    """What ``pgmp trace``/``explain`` actually expands:
    ``(kind, payload, label)`` triples.

    A Scheme file is one ``("scheme", source, filename)`` unit. A Python
    file contributes its *embedded* Scheme programs (string literals using
    the optimizable constructs, exactly the ones ``pgmp lint`` analyzes),
    each under the ``file.py#L<line>`` pseudo-filename its profile points
    carry — plus one ``("pyfunc", fn, name)`` unit for every top-level
    function that calls a registered Python macro (``if_r``, ``pycase``).
    """
    if not path.endswith(".py"):
        return [("scheme", source, path)]
    import ast as python_ast

    from repro.analysis.pyast_passes import _embedded_scheme_strings
    from repro.pyast.macros import default_registry

    tree = python_ast.parse(source, filename=path)
    units: list[tuple[str, object, str]] = [
        ("scheme", text, f"{path}#L{constant.lineno}")
        for text, constant in _embedded_scheme_strings(tree)
    ]

    macro_names = set(default_registry().names())
    macro_functions = [
        node.name
        for node in tree.body
        if isinstance(node, python_ast.FunctionDef)
        and any(
            isinstance(call, python_ast.Call)
            and isinstance(call.func, python_ast.Name)
            and call.func.id in macro_names
            for call in python_ast.walk(node)
        )
    ]
    if macro_functions:
        # Exec the module (its __main__ guard keeps scripts inert) to get
        # real function objects the pyast expander can re-source.
        namespace: dict = {"__name__": "<pgmp-trace>", "__file__": path}
        exec(compile(tree, path, "exec"), namespace)
        units.extend(
            ("pyfunc", namespace[name], f"{path}:{name}")
            for name in macro_functions
        )

    if not units:
        raise PgmpError(
            f"{path}: nothing to trace — no embedded Scheme programs and "
            "no functions using registered Python macros"
        )
    return units


def _traced_compile(args: argparse.Namespace):
    """Compile ``args.file`` under a fresh tracer; returns
    ``(tracer, system)`` with the trace closed."""
    from repro.core.api import reset_generated_points
    from repro.obs import Tracer, get_global_metrics, using_tracer

    source = _read_program(args.file)
    system, _ = _make_system(args, source)
    # Fresh generated-point counters: two traces of the same program in
    # one process must be byte-identical.
    reset_generated_points()
    pyast_system = None
    tracer = Tracer()
    with using_tracer(tracer):
        for kind, payload, label in _trace_units(source, args.file):
            try:
                if kind == "scheme":
                    system.compile(payload, label)
                else:
                    if pyast_system is None:
                        from repro.pyast.system import PyAstSystem

                        pyast_system = PyAstSystem(
                            profile_db=system.profile_db,
                            policy=system.policy,
                            degradations=system.degradations,
                        )
                    pyast_system.expand(payload)
            except PgmpError as exc:
                # A failed expansion is part of the provenance, not a
                # reason to lose the trace collected so far.
                tracer.event(
                    "error", label, error=f"{type(exc).__name__}: {exc}"
                )
                print(f"pgmp trace: {label}: {exc}", file=sys.stderr)
    tracer.close()
    get_global_metrics().inc("traces_total")
    return tracer, system


def _run_trace(args: argparse.Namespace) -> int:
    from repro.obs import (
        render_chrome_trace,
        render_trace_json,
        render_trace_text,
    )

    tracer, _system = _traced_compile(args)
    renderer = {
        "text": render_trace_text,
        "json": render_trace_json,
        "chrome": render_chrome_trace,
    }[args.format]
    rendered = renderer(tracer)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
        decisions = tracer.decisions()
        print(
            f"pgmp trace: wrote {args.format} trace ({len(decisions)} "
            f"decision(s)) to {args.out}",
            file=sys.stderr,
        )
    else:
        print(rendered)
    return 0


def _run_explain(args: argparse.Namespace) -> int:
    from repro.obs import explain_at, parse_at

    try:
        anchor_file, line = parse_at(args.at)
    except ValueError as exc:
        print(f"pgmp explain: {exc}", file=sys.stderr)
        return 2
    tracer, system = _traced_compile(args)
    print(
        explain_at(
            tracer, anchor_file, line, system.degradations.entries()
        )
    )
    return 0 if tracer.decisions_at(anchor_file, line) else 1


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.log_level:
        from repro.obs.logs import configure_logging

        configure_logging(args.log_level)
    try:
        return _dispatch(args)
    except PgmpError as exc:
        print(f"pgmp: error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"pgmp: error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1


def _maybe_simplify(args: argparse.Namespace, program):
    if getattr(args, "simplify", False):
        from repro.scheme.simplify import contract_betas

        program, contraction = contract_betas(program)
        print(
            f";; simplify: contracted {contraction.contracted} of "
            f"{contraction.considered} beta-redexes",
            file=sys.stderr,
        )
    return program


def _run_serve(args: argparse.Namespace) -> int:
    from repro.service import (
        GenerationJournal,
        ProfileAggregator,
        RecompileController,
        RolloutGuard,
        ServiceMetrics,
        scheme_canary,
        scheme_recompiler,
        scheme_static_verifier,
    )

    if args.fleet_role == "shard":
        return _run_serve_shard(args)

    metrics = ServiceMetrics()
    controller = None
    sources = None
    if args.optimize:
        optimize_source = _read_program(args.optimize)
        system = SchemeSystem(policy=args.profile_policy)
        _load_libraries(system, args.library)
        guard = None
        if not args.no_rollout_guard:
            probes = [
                (_read_program(path), path) for path in args.canary_probes
            ]
            guard = RolloutGuard(
                validator=scheme_canary(system, probes),
                static_verifier=scheme_static_verifier(),
                journal=GenerationJournal(
                    args.journal_dir, max_generations=args.max_generations
                ),
                rollback_window=args.rollback_window,
                metrics=metrics,
            )
        controller = RecompileController(
            scheme_recompiler(system, optimize_source, args.optimize),
            threshold=args.drift_threshold,
            metrics=metrics,
            guard=guard,
        )
        resumed = controller.resume_from_journal()
        if resumed is not None:
            print(f"pgmp serve: {resumed.reason}", file=sys.stderr)
        # Deltas fingerprinting a *different* version of the optimized
        # source are stale by definition — quarantine them.
        sources = {args.optimize: optimize_source}
    if args.shards > 0:
        return _run_serve_fleet(args, metrics, controller, sources)
    aggregator = ProfileAggregator(
        args.listen,
        checkpoint_path=args.checkpoint,
        state_path=args.state,
        checkpoint_interval=args.checkpoint_interval,
        sources=sources,
        controller=controller,
        policy=args.profile_policy,
        metrics=metrics,
        metrics_port=args.metrics_port,
        read_timeout=args.read_timeout,
        assume_sample_scale=(
            # Untagged (v1) deltas in a sampled fleet: the operator
            # declares the fleet-wide stride; tagged deltas always win.
            float(max(1, args.sample_rate))
            if args.profile_mode == "sampled"
            else None
        ),
    )
    aggregator.start()
    try:
        print(
            f"pgmp serve: listening on {aggregator.address}",
            file=sys.stderr,
            flush=True,
        )
        if aggregator.metrics_address is not None:
            host, port = aggregator.metrics_address
            print(
                f"pgmp serve: metrics on http://{host}:{port}/metrics",
                file=sys.stderr,
                flush=True,
            )
        try:
            aggregator.shutdown_requested.wait()
        except KeyboardInterrupt:
            pass
    finally:
        stop_result = aggregator.stop()
    applied = int(metrics.counter("deltas_applied_total"))
    counts = int(metrics.counter("counts_ingested_total"))
    quarantined = int(metrics.counter("deltas_quarantined_total"))
    print(
        f"pgmp serve: applied {applied} delta(s) carrying {counts} counts; "
        f"{quarantined} quarantined",
        file=sys.stderr,
    )
    if controller is not None:
        for decision in controller.log.recompilations():
            print(f"pgmp serve: {decision}", file=sys.stderr)
    if not stop_result.clean:
        print(f"pgmp serve: dirty stop: {stop_result}", file=sys.stderr)
        return 1
    return 0


def _run_serve_shard(args: argparse.Namespace) -> int:
    """One fleet shard (spawned by the --shards supervisor)."""
    from repro.core.database import atomic_write_text
    from repro.service import ServiceMetrics
    from repro.service.fleet import ShardAggregator

    if not args.shard_id or not args.uplink:
        print(
            "pgmp serve: --fleet-role shard requires --shard-id and --uplink",
            file=sys.stderr,
        )
        return 2
    metrics = ServiceMetrics()
    shard = ShardAggregator(
        args.listen,
        shard_id=args.shard_id,
        uplink=args.uplink,
        wal_path=args.wal,
        state_path=args.state,
        checkpoint_path=args.checkpoint,
        checkpoint_interval=args.checkpoint_interval,
        policy=args.profile_policy,
        metrics=metrics,
        metrics_port=args.metrics_port,
        read_timeout=args.read_timeout,
    )
    shard.start()
    try:
        print(
            f"pgmp serve: shard {args.shard_id} listening on {shard.address} "
            f"(uplink {args.uplink})",
            file=sys.stderr,
            flush=True,
        )
        if args.address_file:
            atomic_write_text(args.address_file, f"{shard.address}\n")
        try:
            shard.shutdown_requested.wait()
        except KeyboardInterrupt:
            pass
    finally:
        stop_result = shard.stop()
    applied = int(metrics.counter("deltas_applied_total"))
    uplinked = int(metrics.counter("uplink_deltas_total"))
    print(
        f"pgmp serve: shard {args.shard_id} applied {applied} delta(s), "
        f"uplinked {uplinked}",
        file=sys.stderr,
    )
    if not stop_result.clean:
        print(
            f"pgmp serve: shard {args.shard_id} dirty stop: {stop_result}",
            file=sys.stderr,
        )
        return 1
    return 0


def _run_serve_fleet(
    args: argparse.Namespace, metrics, controller, sources
) -> int:
    """A supervised local fleet: N shard subprocesses + an in-process root."""
    from repro.service.fleet import FleetSupervisor

    supervisor = FleetSupervisor(
        args.shards,
        args.fleet_data_dir,
        listen=args.listen,
        controller=controller,
        metrics=metrics,
        metrics_port=args.metrics_port,
        checkpoint_path=args.checkpoint,
        checkpoint_interval=args.checkpoint_interval,
        sources=sources,
        policy=args.profile_policy,
        read_timeout=args.read_timeout,
    )
    supervisor.start()
    try:
        print(
            f"pgmp serve: fleet root listening on {supervisor.root.address} "
            f"({args.shards} shard(s))",
            file=sys.stderr,
            flush=True,
        )
        for shard_id, address in sorted(supervisor.shard_addresses().items()):
            print(
                f"pgmp serve: shard {shard_id} at {address}",
                file=sys.stderr,
                flush=True,
            )
        if supervisor.root.metrics_address is not None:
            host, port = supervisor.root.metrics_address
            print(
                f"pgmp serve: metrics on http://{host}:{port}/metrics",
                file=sys.stderr,
                flush=True,
            )
        try:
            supervisor.root.shutdown_requested.wait()
        except KeyboardInterrupt:
            pass
    finally:
        supervisor.stop()
    applied = int(metrics.counter("deltas_applied_total"))
    counts = int(metrics.counter("counts_ingested_total"))
    print(
        f"pgmp serve: fleet root applied {applied} delta(s) carrying "
        f"{counts} counts",
        file=sys.stderr,
    )
    if controller is not None:
        for decision in controller.log.recompilations():
            print(f"pgmp serve: {decision}", file=sys.stderr)
    return 0


def _run_rollback(args: argparse.Namespace) -> int:
    from repro.service.delta import read_frame, write_frame
    from repro.service.transport import connect

    sock = connect(args.connect, timeout=args.timeout)
    try:
        stream = sock.makefile("rwb")
        try:
            write_frame(
                stream, {"type": "rollback", "reason": args.reason}
            )
            stream.flush()
            response = read_frame(stream)
        finally:
            stream.close()
    finally:
        sock.close()
    if not isinstance(response, dict) or response.get("type") != "rollback":
        print(
            f"pgmp rollback: unexpected response {response!r}",
            file=sys.stderr,
        )
        return 1
    status = response.get("status")
    detail = response.get("reason") or response.get("error") or ""
    generation = response.get("generation")
    suffix = f" (now serving generation {generation})" if status == "ok" else ""
    print(f"pgmp rollback: {status}: {detail}{suffix}", file=sys.stderr)
    return 0 if status == "ok" else 1


def _run_ship(args: argparse.Namespace) -> int:
    from repro.core.counters import CounterSet, ShardedCounterSet
    from repro.core.database import source_fingerprint
    from repro.profiling.sampler import RunSampler
    from repro.service import ProfileShipper

    source = _read_program(args.file)
    system = SchemeSystem(policy=args.profile_policy)
    _load_libraries(system, args.library)
    dataset = args.dataset if args.dataset else args.file
    counters = ShardedCounterSet(name=dataset)
    fingerprints = {args.file: source_fingerprint(source)}
    sampled = args.profile_mode == "sampled"
    stride = max(1, args.sample_rate) if sampled else 1
    # Production-traffic sampling subsets whole runs: one run in `stride`
    # executes instrumented (and its counts are folded in scaled by the
    # stride), the rest run with no hooks at all — steady-state overhead
    # is the instrumented-run cost divided by the stride plus one
    # predicate per run.
    run_sampler = RunSampler(stride) if sampled else None
    sample_scale = float(stride) if sampled and stride > 1 else None
    if args.fleet:
        # --connect names the fleet *root*; shard addresses come from
        # its ring frame and the deltas go straight to the shards.
        from repro.service.fleet import FleetShipper, fetch_ring

        shards = {
            shard_id: info["address"]
            for shard_id, info in fetch_ring(args.connect).items()
            if isinstance(info, dict) and isinstance(info.get("address"), str)
        }
        shipper = FleetShipper(
            counters,
            shards,
            root=args.connect,
            dataset=dataset,
            fingerprints=fingerprints,
            shipper_id=args.shipper_id,
            spill_dir=args.spill,
            policy=args.profile_policy,
            timeout=args.timeout,
            sample_scale=sample_scale,
        )
        destination = f"{len(shards)} shard(s) via root {args.connect}"
    else:
        shipper = ProfileShipper(
            counters,
            args.connect,
            dataset=dataset,
            fingerprints=fingerprints,
            shipper_id=args.shipper_id,
            spill_path=args.spill,
            policy=args.profile_policy,
            timeout=args.timeout,
            sample_scale=sample_scale,
        )
        destination = str(shipper.address)
    program = system.compile(source, args.file)
    mode = _mode(args.mode)
    try:
        for _ in range(max(1, args.runs)):
            if run_sampler is None:
                system.run(program, instrument=mode, counters=counters)
            elif run_sampler.gate():
                from repro.obs.tracer import maybe_span

                run_counters = CounterSet(name=dataset)
                with maybe_span(
                    "sample", dataset, stride=stride, engine="run-subset"
                ):
                    system.run(program, instrument=mode, counters=run_counters)
                run_sampler.fold(run_counters, counters)
            else:
                system.run(program)
            shipper.flush()
    finally:
        shipper.close()
    if run_sampler is not None:
        from repro.obs.metrics import get_global_metrics

        metrics = get_global_metrics()
        metrics.inc("samples_total", run_sampler.samples)
        if run_sampler.samples:
            metrics.inc("sampled_datasets_total")
    sampled_note = (
        f" (sampled 1-in-{stride} runs, {run_sampler.samples} observed "
        f"events)"
        if run_sampler is not None
        else ""
    )
    print(
        f";; shipped {shipper.shipped_counts} counts in "
        f"{shipper.shipped_deltas} delta(s) to {destination} "
        f"(spilled {shipper.spilled_deltas}, dropped {shipper.dropped_deltas}, "
        f"quarantined {shipper.quarantined_deltas}){sampled_note}",
        file=sys.stderr,
    )
    return 0


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "lint":
        return _run_lint(args)
    if args.command == "verify":
        return _run_verify(args)
    if args.command == "serve":
        return _run_serve(args)
    if args.command == "ship":
        return _run_ship(args)
    if args.command == "rollback":
        return _run_rollback(args)
    if args.command == "trace":
        return _run_trace(args)
    if args.command == "explain":
        return _run_explain(args)
    source = _read_program(args.file)
    system, library_sources = _make_system(args, source)

    if args.command == "run":
        mode = _mode(args.instrument) if args.instrument else None
        sample_stride = None
        if args.profile_mode == "sampled":
            # Sampled collection implies instrumentation: the stride gate
            # IS the (cheap) instrumentation.
            mode = ProfileMode.SAMPLE
            sample_stride = max(1, args.sample_rate)
        program = _maybe_simplify(args, system.compile(source, args.file))
        result = system.run(
            program,
            instrument=mode,
            backend=args.backend,
            sample_stride=sample_stride,
        )
        if result.output:
            print(result.output, end="")
        print(write_datum(result.value))
        if result.counters is not None:
            print(
                f";; profiled {len(result.counters)} points, "
                f"total count {result.counters.total()}",
                file=sys.stderr,
            )
        return 0

    if args.command == "expand":
        program = _maybe_simplify(args, system.compile(source, args.file))
        if system.last_compile_output:
            print(system.last_compile_output, end="", file=sys.stderr)
        print(unparse_string(program))
        return 0

    if args.command == "profile":
        mode = _mode(args.mode)
        sample_stride = None
        if args.profile_mode == "sampled":
            mode = ProfileMode.SAMPLE
            sample_stride = max(1, args.sample_rate)
        system.profile_run(
            source, args.file, mode=mode, sample_stride=sample_stride
        )
        system.store_profile(args.out)
        suffix = ""
        summary = system.profile_db.confidence_summary()
        if summary is not None:
            suffix = f" ({summary.describe()})"
        print(
            f";; stored {system.profile_db.point_count()} profile weights "
            f"to {args.out}{suffix}",
            file=sys.stderr,
        )
        return 0

    if args.command == "optimize":
        if not args.profile_file:
            print("pgmp optimize: --profile-file is required", file=sys.stderr)
            return 2
        backend = args.backend if args.backend is not None else "compile"
        if backend == "compile" and not args.simplify:
            # The artifact-cache path: a warm cache answers from the
            # precompiled artifact with zero re-expansions. --simplify
            # transforms the expansion post hoc, so it bypasses the cache.
            from repro.scheme.compile_py import ArtifactCache

            cache = (
                ArtifactCache(args.cache_dir)
                if args.cache_dir is not None
                else None
            )
            artifact = system.compile_cached(source, args.file, cache=cache)
            if artifact.compile_output:
                print(artifact.compile_output, end="", file=sys.stderr)
            print(artifact.expansion_text)
            return 0
        program = _maybe_simplify(args, system.compile(source, args.file))
        if system.last_compile_output:
            print(system.last_compile_output, end="", file=sys.stderr)
        print(unparse_string(program))
        return 0

    if args.command == "workflow":
        from repro.blocks.workflow import three_pass_compile

        report = three_pass_compile(
            source,
            args.file,
            libraries=tuple(library_sources),
            checkpoint_dir=args.checkpoint_dir,
            resume=not args.no_resume,
            pass_budget=args.pass_budget,
            policy=args.profile_policy,
            backend=args.backend,
        )
        print(f"value:                   {write_datum(report.value)}")
        print(f"rung:                    {report.rung}")
        print(f"expansion stable:        {report.expansion_stable}")
        print(f"block structure stable:  {report.block_structure_stable}")
        print(f"semantics preserved:     {report.semantics_preserved}")
        print(f"source profile points:   {report.source_points}")
        if report.rung == "three-pass":
            print(
                f"taken jumps:             {report.taken_jumps_before} -> "
                f"{report.taken_jumps_after}"
            )
            print(
                f"fall-throughs:           {report.fallthroughs_before} -> "
                f"{report.fallthroughs_after}"
            )
            print(f"layout:                  {report.layout}")
        if report.resumed:
            print(f"resumed from checkpoint: {', '.join(report.resumed)}")
        for entry in report.degradations:
            print(f"degraded:                {entry}", file=sys.stderr)
        return 0

    if args.command == "report":
        import json

        from repro.obs import decisions_from_json_object
        from repro.tools.report import (
            annotate_source,
            histogram,
            hottest_report,
            report_json,
            trace_report,
        )

        if not args.profile_file:
            print("pgmp report: --profile-file is required", file=sys.stderr)
            return 2
        db = system.profile_db
        if args.format == "json":
            print(report_json(db, source, args.file, args.top))
            return 0
        print(hottest_report(db, args.top))
        print()
        print(annotate_source(source, args.file, db))
        if args.histogram:
            print()
            print(histogram(db))
        if args.trace:
            with open(args.trace, "r", encoding="utf-8") as handle:
                try:
                    document = json.load(handle)
                except json.JSONDecodeError as exc:
                    print(
                        f"pgmp report: {args.trace}: not JSON: {exc}",
                        file=sys.stderr,
                    )
                    return 2
            try:
                decisions = decisions_from_json_object(document)
            except ValueError as exc:
                print(f"pgmp report: {args.trace}: {exc}", file=sys.stderr)
                return 2
            print()
            print(trace_report(db, decisions))
        return 0

    if args.command == "disasm":
        from repro.blocks.compiler import compile_program

        program = system.compile(source, args.file)
        module = compile_program(program)
        print(module.disassemble())
        return 0

    raise AssertionError(f"unhandled command {args.command}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
