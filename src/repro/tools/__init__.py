"""Command-line tools (the ``pgmp`` entry point)."""
