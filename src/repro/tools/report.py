"""Human-readable profile reports.

Chez Scheme's profiler can render per-expression counts over the original
source; this module provides the same affordance for stored PGMP profiles:

* :func:`hottest_report` — a table of the N hottest profile points;
* :func:`annotate_source` — the program text with per-line heat columns
  (maximum weight of any profile point starting on that line);
* :func:`histogram` — a terminal bar chart of the weight distribution;
* :func:`report_json` — the same data as a versioned JSON document
  (``pgmp report --format json``), sharing its schema version with
  ``pgmp lint --format json`` so downstream tooling parses both with one
  version check.

All functions consume the merged view of a
:class:`~repro.core.database.ProfileDatabase`, so multi-data-set profiles
render exactly what ``profile-query`` would report.
"""

from __future__ import annotations

import json

from repro.analysis.diagnostics import JSON_RENDER_VERSION
from repro.core.database import ProfileDatabase

__all__ = [
    "hottest_report",
    "annotate_source",
    "histogram",
    "report_json",
    "trace_report",
]


def hottest_report(db: ProfileDatabase, n: int = 10) -> str:
    """The ``n`` hottest profile points, one per line, hottest first.

    Profiles holding sampled data sets grow a confidence column (the
    merged relative error bar every weight inherits) plus a trailing
    ``collection:`` summary line; exact profiles render unchanged.
    """
    rows = db.merged().hottest(n)
    if not rows:
        return "(no profile data)"
    summary = db.confidence_summary()
    confidence = None if summary is None else f"±{summary.error_bar:.0%}"
    width = max(len(str(point.location)) for point, _ in rows)
    header = f"{'location':<{width}}  weight"
    if confidence is not None:
        header += "  confidence"
    lines = [header]
    for point, weight in rows:
        tag = " (generated)" if point.generated else ""
        row = f"{str(point.location):<{width}}  {weight:6.4f}"
        if confidence is not None:
            row += f"  {confidence}"
        lines.append(row + tag)
    if summary is not None:
        lines.append(f"collection: {summary.describe()}")
    return "\n".join(lines)


def annotate_source(source: str, filename: str, db: ProfileDatabase) -> str:
    """``source`` with a per-line heat column.

    Each line is prefixed with the maximum merged weight of any profile
    point in ``filename`` that *starts* on it (blank when no point does).
    Generated points (``make-profile-point`` output) carry suffixed
    filenames and are attributed to their base location's line.
    """
    by_line: dict[int, float] = {}
    for point, weight in db.merged().items():
        location = point.location
        base_name = location.filename.split("%", 1)[0]
        if base_name != filename:
            continue
        line = location.line
        if line <= 0:
            continue
        by_line[line] = max(by_line.get(line, 0.0), weight)

    out = []
    for i, text in enumerate(source.splitlines(), start=1):
        weight = by_line.get(i)
        column = f"{weight:6.4f}" if weight is not None else " " * 6
        out.append(f"{column} | {text}")
    return "\n".join(out)


def report_json(
    db: ProfileDatabase,
    source: str,
    filename: str,
    top: int = 10,
) -> str:
    """The profile report as a stable, versioned JSON document.

    Mirrors the text report's content: the hottest-N table, the per-line
    heat mapping for ``filename``, and summary counts. The ``version``
    field is :data:`~repro.analysis.diagnostics.JSON_RENDER_VERSION`, the
    same constant ``pgmp lint --format json`` stamps its output with.
    """
    merged = db.merged()
    hottest = [
        {
            "location": str(point.location),
            "key": point.key(),
            "weight": weight,
            "generated": point.generated,
        }
        for point, weight in merged.hottest(top)
    ]
    by_line: dict[int, float] = {}
    for point, weight in merged.items():
        location = point.location
        if location.filename.split("%", 1)[0] != filename:
            continue
        if location.line <= 0:
            continue
        by_line[location.line] = max(by_line.get(location.line, 0.0), weight)
    summary = db.confidence_summary()
    payload = {
        "format": "pgmp-report",
        "version": JSON_RENDER_VERSION,
        "file": filename,
        "hottest": hottest,
        "lines": {str(line): weight for line, weight in sorted(by_line.items())},
        "summary": {
            "datasets": db.dataset_count,
            "points": len(merged),
            "source_lines": len(source.splitlines()),
            "quarantined": len(db.quarantine),
        },
        "confidence": {
            "mode": "exact" if summary is None else summary.mode,
            "error_bar": 0.0 if summary is None else round(summary.error_bar, 6),
            "datasets": [
                conf.to_json_object()
                if conf is not None and conf.is_sampled
                else None
                for conf in db.dataset_confidences()
            ],
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def trace_report(db: ProfileDatabase, decisions: list[dict]) -> str:
    """Join a stored decision trace with the current merged profile.

    ``decisions`` is the output of
    :func:`repro.obs.export.decisions_from_json_object` — the decision
    records of a ``pgmp trace --format json`` document. For every decision
    the report shows the weight each consulted point had *at trace time*
    next to its weight in this profile, so "would the meta-programs still
    decide the same way?" is answerable without re-expanding.
    """
    if not decisions:
        return "(trace contains no decisions)"
    merged = db.merged().as_key_mapping()
    lines = [
        f"{len(decisions)} decision(s) in trace, joined against "
        f"{len(merged)} merged profile point(s)"
    ]
    summary = db.confidence_summary()
    if summary is not None:
        lines.append(
            f"this profile's weights are {summary.describe()} — drift "
            "within the error bar may be sampling noise, not workload change"
        )
    drifted_decisions = 0
    for record in decisions:
        lines.append("")
        lines.append(
            f"{record.get('construct', '?')} at {record.get('location', '?')}"
        )
        lines.append(
            f"  chose: {', '.join(record.get('chosen', ())) or '<nothing>'}"
        )
        inputs = record.get("inputs", ())
        if not inputs:
            lines.append("  consulted: <no profile points>")
            continue
        drifted = False
        for entry in inputs:
            point, traced = entry["point"], entry["weight"]
            now = merged.get(point)
            if now is None:
                lines.append(
                    f"  {point}: {traced:.4f} at trace time, "
                    "absent from this profile"
                )
                drifted = True
            elif abs(now - traced) > 1e-9:
                lines.append(
                    f"  {point}: {traced:.4f} at trace time, {now:.4f} now "
                    "(drifted)"
                )
                drifted = True
            else:
                lines.append(f"  {point}: {traced:.4f} (unchanged)")
        if drifted:
            drifted_decisions += 1
    lines.append("")
    if drifted_decisions:
        lines.append(
            f"{drifted_decisions} decision(s) consulted weights that have "
            "since moved; re-expanding against this profile may decide "
            "differently"
        )
    else:
        lines.append(
            "every consulted weight is unchanged; re-expanding against this "
            "profile reproduces the traced decisions"
        )
    return "\n".join(lines)


def histogram(db: ProfileDatabase, buckets: int = 10, width: int = 40) -> str:
    """A text histogram of the merged weight distribution.

    Useful for eyeballing how skewed a workload is — heavily skewed
    profiles are where PGOs pay off.
    """
    weights = [weight for _, weight in db.merged().items()]
    if not weights:
        return "(no profile data)"
    counts = [0] * buckets
    for weight in weights:
        index = min(buckets - 1, int(weight * buckets))
        counts[index] += 1
    peak = max(counts)
    lines = []
    for i, count in enumerate(counts):
        lo = i / buckets
        hi = (i + 1) / buckets
        bar = "#" * (count * width // peak if peak else 0)
        lines.append(f"[{lo:4.2f},{hi:4.2f}) {count:6d} {bar}")
    return "\n".join(lines)
