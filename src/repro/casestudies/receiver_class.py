"""§6.2 — Profile-guided receiver class prediction.

The paper implements a simplified object system *as a syntax extension*,
then equips its ``method`` form with the classic receiver-class-prediction
PGO [Grove et al. 1995; Hölzle & Ungar 1994]:

* With **no profile data**, a method call ``(method s area)`` expands into a
  ``cond`` over every class in the system; each clause tests
  ``instance-of?`` and performs normal dynamic dispatch — but each clause
  body is annotated with its own freshly manufactured profile point, so the
  instrumented program counts *per-call-site, per-class receiver
  frequencies* (Figure 11, top).
* With profile data, the call expands into a polymorphic inline cache: a
  ``cond`` whose clauses, ordered hottest-first, *inline the method body*
  for the most frequent receiver classes (up to ``inline-limit``), falling
  back to dynamic dispatch (Figure 11 bottom / Figure 12).

The key PGMP ingredients exercised here are deterministic
``make-profile-point`` (the same call site regenerates the same points on
recompilation, so it can read back the counts its own instrumentation
produced) and ``annotate-expr``.

The class registry lives at *expand time* (a ``meta`` definition): ``class``
records each class's method sources so ``method`` can inline them — the
DSL-compiler-in-macros pattern the paper highlights.
"""

from __future__ import annotations

from repro.core.policy import ProfilePolicy
from repro.scheme.instrument import ProfileMode
from repro.scheme.pipeline import SchemeSystem

__all__ = [
    "ADAPTIVE_RECEIVER_LIBRARY",
    "OBJECT_SYSTEM_LIBRARY",
    "RECEIVER_CLASS_LIBRARY",
    "make_object_system",
]

#: The object system runtime + ``class``/``field`` forms (the "87 lines" of
#: plain object system in the paper's accounting).
OBJECT_SYSTEM_LIBRARY = r"""
;; ---------------------------------------------------------------- runtime
;; A class is (vector 'class name fields defaults methods-hashtable).
;; An instance is (vector 'instance class-name fields-hashtable).

(define class-table (make-eq-hashtable))

(define (register-class name fields defaults method-alist)
  (let ([methods (make-eq-hashtable)])
    (for-each
      (lambda (entry) (hashtable-set! methods (car entry) (cdr entry)))
      method-alist)
    (hashtable-set! class-table name
                    (vector 'class name fields defaults methods))))

(define (lookup-class name)
  (let ([cls (hashtable-ref class-table name #f)])
    (if cls cls (error 'lookup-class "unknown class" name))))

(define (class-fields cls) (vector-ref cls 2))
(define (class-defaults cls) (vector-ref cls 3))
(define (class-method-table cls) (vector-ref cls 4))

(define (make-instance name . args)
  (let ([cls (lookup-class name)]
        [slots (make-eq-hashtable)])
    (let fill ([fields (class-fields cls)]
               [defaults (class-defaults cls)]
               [values args])
      (cond
        [(null? fields) (void)]
        [(null? values)
         (hashtable-set! slots (car fields) (car defaults))
         (fill (cdr fields) (cdr defaults) '())]
        [else
         (hashtable-set! slots (car fields) (car values))
         (fill (cdr fields) (cdr defaults) (cdr values))]))
    (vector 'instance name slots)))

(define (instance? x)
  (and (vector? x)
       (= (vector-length x) 3)
       (eq? (vector-ref x 0) 'instance)))

(define (instance-class-name x) (vector-ref x 1))

(define (instance-of? x name)
  (and (instance? x) (eq? (instance-class-name x) name)))

(define (get-field x name)
  (hashtable-ref (vector-ref x 2) name #f))

(define (set-field! x name value)
  (hashtable-set! (vector-ref x 2) name value))

(define (dynamic-dispatch x m . args)
  ;; The standard dynamic dispatch routine.
  (let* ([cls (lookup-class (instance-class-name x))]
         [method (hashtable-ref (class-method-table cls) m #f)])
    (if method
        (apply method x args)
        (error 'dynamic-dispatch "no method" m))))

(define (instrumented-dispatch x m . args)
  ;; Identical to dynamic dispatch; a separate entry point so generated
  ;; instrumentation reads like the paper's Figure 11.
  (apply dynamic-dispatch x m args))

;; ------------------------------------------------------- expand-time state
;; The registry of every class in the system, consulted by `method` when it
;; generates instrumentation (one clause per class) and optimized inline
;; caches (method bodies for inlining).
(meta (define all-classes '()))

;; -------------------------------------------------------------- the forms

(define-syntax (field stx)
  (syntax-case stx ()
    [(_ obj name) #'(get-field obj 'name)]))

(define-syntax (set-field stx)
  (syntax-case stx ()
    [(_ obj name value) #'(set-field! obj 'name value)]))

(define-syntax (class stx)
  (syntax-case stx (define-method)
    [(_ name ((fname fdefault) ...)
        (define-method (mname this marg ...) mbody ...) ...)
     (begin
       ;; Record the class — name and method *sources* — at expand time.
       (set! all-classes
             (cons (list #'name #'((mname (this marg ...) mbody ...) ...))
                   all-classes))
       ;; Generate the runtime registration and a positional constructor.
       #`(begin
           (register-class 'name '(fname ...) (list fdefault ...)
                           (list (cons 'mname (lambda (this marg ...) mbody ...)) ...))
           (define #,(datum->syntax #'name
                       (string->symbol
                         (string-append "make-" (symbol->string (syntax->datum #'name)))))
             (lambda args (apply make-instance 'name args)))))]))
"""

#: The PGO itself — the "44 lines" of profile-guided receiver class
#: prediction (paper Figure 9).
RECEIVER_CLASS_LIBRARY = r"""
;; How many receiver classes a call site may inline.
(meta (define inline-limit 2))

(define-syntax (method syn)
  ;; Expand-time helpers over the class registry entries, which are
  ;; (name-syntax methods-syntax) lists.
  (define (class-name cls) (car cls))
  (define (class-methods cls) (car (cdr cls)))
  (define (find-method m methods)
    ;; methods is a syntax list of (mname formals mbody ...) entries.
    (cond
      [(null? methods) #f]
      [(eq? (syntax->datum (car (car methods))) (syntax->datum m))
       (car methods)]
      [else (find-method m (cdr methods))]))
  (define (method-formals entry) (car (cdr entry)))
  (define (method-body entry) (cdr (cdr entry)))
  (syntax-case syn ()
    [(_ obj m val* ...)
     (let* ([classes (reverse all-classes)]
            ;; One fresh profile point per class in the system, manufactured
            ;; deterministically from this call site's source location: the
            ;; recompile regenerates the same points and can read back the
            ;; counts this call site's instrumentation produced.
            [points (map (lambda (cls) (make-profile-point #'obj)) classes)]
            [weights (map profile-query points)]
            [no-profile-data? (not (profile-data-available?))])
       (define (instrument-clause cls point)
         ;; ((instance-of? x 'Class) <annotated instrumented dispatch>)
         #`((instance-of? x '#,(class-name cls))
            #,(annotate-expr #`(instrumented-dispatch x 'm val* ...) point)))
       (define (inline-clause cls point)
         ;; ((instance-of? x 'Class) <inlined, still annotated for reprofiling>)
         (let ([entry (find-method #'m (class-methods cls))])
           (if entry
               #`((instance-of? x '#,(class-name cls))
                  #,(annotate-expr
                      #`((lambda #,(method-formals entry) #,@(method-body entry))
                         x val* ...)
                      point))
               (instrument-clause cls point))))
       (define (sorted-hot-classes)
         ;; (class point weight) triples: positive weight, hottest first,
         ;; up to inline-limit of them.
         (let ([triples (map list classes points weights)])
           (let take ([sorted (sort (filter (lambda (t) (> (car (cdr (cdr t)))  0))
                                            triples)
                                    > (lambda (t) (car (cdr (cdr t)))))]
                      [n inline-limit])
             (if (or (null? sorted) (= n 0))
                 '()
                 (cons (car sorted) (take (cdr sorted) (- n 1)))))))
       (define (class-names cls*)
         (map (lambda (cls) (syntax->datum (class-name cls))) cls*))
       ;; NOTE: `hot` is an internal define, not a wrapping `let` — a `let`
       ;; around the template would add a scope to the `x` binder below
       ;; that the clause templates (built by the helpers above, outside
       ;; that scope) don't carry, leaving their `x` references unbound.
       (define hot (sorted-hot-classes))
       (if (or no-profile-data? (null? hot))
           (trace-decision 'method syn
                           (cons 'instrument-all (class-names classes))
                           '(inline-cache)
                           "no receiver profile data at this call site; instrumenting every class")
           (let ([hot-names (class-names (map car hot))])
             (trace-decision 'method syn
                             (cons 'inline hot-names)
                             (cons 'dispatch
                                   (filter (lambda (n) (not (member n hot-names)))
                                           (class-names classes)))
                             "polymorphic inline cache, hottest receivers first")))
       ;; Don't copy the object expression throughout the template.
       #`(let ([x obj])
           (cond
             #,@(if (or no-profile-data? (null? hot))
                    ;; If no profile data, instrument!
                    (map instrument-clause classes points)
                    ;; If profile data, inline up to the top inline-limit
                    ;; classes with non-zero weights.
                    (map (lambda (t) (inline-clause (car t) (car (cdr t))))
                         hot))
             ;; Fall back to dynamic dispatch.
             [else (dynamic-dispatch x 'm val* ...)])))]))
"""


#: Extension beyond the paper: instead of a fixed ``inline-limit``, choose
#: how many receiver classes to inline from the weight distribution itself —
#: the smallest prefix of the hottest classes that covers ``coverage-target``
#: of all observed dispatches at this call site. Skewed sites inline one or
#: two classes; flat megamorphic sites inline more (or, if nothing was
#: observed, stay instrumented).
ADAPTIVE_RECEIVER_LIBRARY = r"""
(meta (define coverage-target 9/10))

(define-syntax (method-adaptive syn)
  (define (class-name cls) (car cls))
  (define (class-methods cls) (car (cdr cls)))
  (define (find-method m methods)
    (cond
      [(null? methods) #f]
      [(eq? (syntax->datum (car (car methods))) (syntax->datum m))
       (car methods)]
      [else (find-method m (cdr methods))]))
  (define (method-formals entry) (car (cdr entry)))
  (define (method-body entry) (cdr (cdr entry)))
  (syntax-case syn ()
    [(_ obj m val* ...)
     (let* ([classes (reverse all-classes)]
            [points (map (lambda (cls) (make-profile-point #'obj)) classes)]
            [weights (map profile-query points)]
            [total (apply + weights)]
            [no-profile-data? (or (not (profile-data-available?))
                                  (= total 0))])
       (define (instrument-clause cls point)
         #`((instance-of? x '#,(class-name cls))
            #,(annotate-expr #`(instrumented-dispatch x 'm val* ...) point)))
       (define (inline-clause cls point)
         (let ([entry (find-method #'m (class-methods cls))])
           (if entry
               #`((instance-of? x '#,(class-name cls))
                  #,(annotate-expr
                      #`((lambda #,(method-formals entry) #,@(method-body entry))
                         x val* ...)
                      point))
               (instrument-clause cls point))))
       (define (covering-classes)
         ;; hottest-first (class . point) pairs until coverage-target of
         ;; the total dispatch weight at this site is covered.
         (let loop ([sorted (sort (map list classes points weights)
                                  > (lambda (t) (car (cdr (cdr t)))))]
                    [covered 0]
                    [out '()])
           (if (or (null? sorted)
                   (>= covered (* coverage-target total)))
               (reverse out)
               (loop (cdr sorted)
                     (+ covered (car (cdr (cdr (car sorted)))))
                     (cons (car sorted) out)))))
       (define (class-names cls*)
         (map (lambda (cls) (syntax->datum (class-name cls))) cls*))
       ;; Internal define, not a wrapping `let` — see the scope note in
       ;; `method` above.
       (define covering (if no-profile-data? '() (covering-classes)))
       (if no-profile-data?
           (trace-decision 'method-adaptive syn
                           (cons 'instrument-all (class-names classes))
                           '(inline-cache)
                           "no receiver profile data at this call site; instrumenting every class")
           (let ([hot-names (class-names (map car covering))])
             (trace-decision 'method-adaptive syn
                             (cons 'inline hot-names)
                             (cons 'dispatch
                                   (filter (lambda (n) (not (member n hot-names)))
                                           (class-names classes)))
                             "smallest hottest-first prefix covering the coverage target")))
       #`(let ([x obj])
           (cond
             #,@(if no-profile-data?
                    (map instrument-clause classes points)
                    (map (lambda (t) (inline-clause (car t) (car (cdr t))))
                         covering))
             [else (dynamic-dispatch x 'm val* ...)])))]))
"""


def make_object_system(
    mode: ProfileMode = ProfileMode.EXPR,
    policy: ProfilePolicy | str = ProfilePolicy.WARN,
) -> SchemeSystem:
    """A Scheme system with the object system and its PGO installed."""
    system = SchemeSystem(mode=mode, policy=policy)
    system.load_library(OBJECT_SYSTEM_LIBRARY, "object-system.ss")
    system.load_library(RECEIVER_CLASS_LIBRARY, "receiver-class.ss")
    system.load_library(ADAPTIVE_RECEIVER_LIBRARY, "receiver-adaptive.ss")
    return system
