"""§6.3 — Data-structure selection and specialization (Figures 13–14).

Three libraries, mirroring the paper's:

* **profiled list** — same interface as a list constructor, but each
  *instance* gets two freshly manufactured profile points: one counting
  operations that are asymptotically fast on lists (``car``/``cdr``/
  ``cons``), one counting operations that are asymptotically fast on
  vectors (random access ``ref``/``set!``/``length``). On recompilation,
  if the vector-ish counter dominates, the constructor prints a Perflint-
  style warning *at compile time* (Figure 13).
* **profiled vector** — the analogous vector library, warning in the other
  direction.
* **profiled sequence** — goes beyond warnings (the paper's point versus
  Perflint): the constructor consults the same two points and *chooses the
  representation itself*, emitting a list-backed or vector-backed instance
  at compile time (Figure 14). Programmers opt in by constructing
  ``profiled-seq`` and using the ``seq-*`` operations; re-profiling can
  re-specialize later.

Per-instance profiling is the crucial PGMP capability here: the counters
belong to *this occurrence of the constructor*, not to the shared library
code — possible only because ``make-profile-point`` manufactures fresh,
deterministic points at expansion time.
"""

from __future__ import annotations

from repro.core.policy import ProfilePolicy
from repro.scheme.instrument import ProfileMode
from repro.scheme.pipeline import SchemeSystem

__all__ = [
    "PROFILED_LIST_LIBRARY",
    "PROFILED_VECTOR_LIBRARY",
    "PROFILED_SEQUENCE_LIBRARY",
    "make_datastructs_system",
]

#: Figure 13: the profiled list constructor and its operation wrappers.
PROFILED_LIST_LIBRARY = r"""
;; Representation: (vector 'list-rep instr-op-table data)
(define (make-list-rep ops data) (vector 'list-rep ops data))
(define (list-rep? x)
  (and (vector? x) (= (vector-length x) 3) (eq? (vector-ref x 0) 'list-rep)))
(define (list-rep-ops x) (vector-ref x 1))
(define (list-rep-data x) (vector-ref x 2))
(define (list-rep-op x name)
  (hashtable-ref (list-rep-ops x) name #f))

(define-syntax (profiled-list syn)
  ;; Create fresh profile points — per use site, i.e. per list *instance*.
  ;; list-src profiles operations that are asymptotically fast on lists;
  ;; vector-src profiles operations that are asymptotically fast on vectors.
  (define list-src (make-profile-point))
  (define vector-src (make-profile-point))
  (syntax-case syn ()
    [(_ init* ...)
     (begin
       (when (and (profile-data-available?)
                  (< (profile-query list-src) (profile-query vector-src)))
         ;; Prints at compile time.
         (printf "WARNING: You should probably reimplement this list as a vector: ~s\n"
                 (syntax->datum syn)))
       ;; Build a hash table of instrumented calls to list operations. The
       ;; table maps the operation name to a profiled call to the built-in
       ;; operation.
       #`(make-list-rep
          (let ([ht (make-eq-hashtable)])
            (hashtable-set! ht 'car    (lambda (ls) #,(annotate-expr #'(car ls) list-src)))
            (hashtable-set! ht 'cdr    (lambda (ls) #,(annotate-expr #'(cdr ls) list-src)))
            (hashtable-set! ht 'cons   (lambda (v ls) #,(annotate-expr #'(cons v ls) list-src)))
            (hashtable-set! ht 'ref    (lambda (ls i) #,(annotate-expr #'(list-ref ls i) vector-src)))
            (hashtable-set! ht 'set    (lambda (ls i v)
                                         #,(annotate-expr #'(set-car! (list-tail ls i) v) vector-src)))
            (hashtable-set! ht 'length (lambda (ls) #,(annotate-expr #'(length ls) vector-src)))
            ht)
          (list init* ...)))]))

;; Exported operations over the profiled representation.
(define (p-car pl) ((list-rep-op pl 'car) (list-rep-data pl)))
(define (p-cdr pl)
  (make-list-rep (list-rep-ops pl) ((list-rep-op pl 'cdr) (list-rep-data pl))))
(define (p-cons v pl)
  (make-list-rep (list-rep-ops pl) ((list-rep-op pl 'cons) v (list-rep-data pl))))
(define (p-list-ref pl i) ((list-rep-op pl 'ref) (list-rep-data pl) i))
(define (p-list-set! pl i v) ((list-rep-op pl 'set) (list-rep-data pl) i v))
(define (p-list-length pl) ((list-rep-op pl 'length) (list-rep-data pl)))
(define (p-null? pl) (null? (list-rep-data pl)))
(define (p-list->list pl) (list-rep-data pl))
"""

#: The analogous profiled vector library (the paper's "88 lines").
PROFILED_VECTOR_LIBRARY = r"""
;; Representation: (vector 'vector-rep instr-op-table data)
(define (make-vector-rep ops data) (vector 'vector-rep ops data))
(define (vector-rep? x)
  (and (vector? x) (= (vector-length x) 3) (eq? (vector-ref x 0) 'vector-rep)))
(define (vector-rep-ops x) (vector-ref x 1))
(define (vector-rep-data x) (vector-ref x 2))
(define (vector-rep-op x name)
  (hashtable-ref (vector-rep-ops x) name #f))

(define-syntax (profiled-vector syn)
  (define list-src (make-profile-point))
  (define vector-src (make-profile-point))
  (syntax-case syn ()
    [(_ init* ...)
     (begin
       (when (and (profile-data-available?)
                  (< (profile-query vector-src) (profile-query list-src)))
         (printf "WARNING: You should probably reimplement this vector as a list: ~s\n"
                 (syntax->datum syn)))
       #`(make-vector-rep
          (let ([ht (make-eq-hashtable)])
            (hashtable-set! ht 'ref    (lambda (v i) #,(annotate-expr #'(vector-ref v i) vector-src)))
            (hashtable-set! ht 'set    (lambda (v i x) #,(annotate-expr #'(vector-set! v i x) vector-src)))
            (hashtable-set! ht 'length (lambda (v) #,(annotate-expr #'(vector-length v) vector-src)))
            ;; Operations that are asymptotically fast on *lists*: growing
            ;; at the front and walking head/tail require copying a vector.
            (hashtable-set! ht 'first  (lambda (v) #,(annotate-expr #'(vector-ref v 0) list-src)))
            (hashtable-set! ht 'rest   (lambda (v)
                                         #,(annotate-expr #'(list->vector (cdr (vector->list v))) list-src)))
            (hashtable-set! ht 'prepend (lambda (x v)
                                          #,(annotate-expr #'(list->vector (cons x (vector->list v))) list-src)))
            ht)
          (vector init* ...)))]))

(define (pv-ref pv i) ((vector-rep-op pv 'ref) (vector-rep-data pv) i))
(define (pv-set! pv i x) ((vector-rep-op pv 'set) (vector-rep-data pv) i x))
(define (pv-length pv) ((vector-rep-op pv 'length) (vector-rep-data pv)))
(define (pv-first pv) ((vector-rep-op pv 'first) (vector-rep-data pv)))
(define (pv-rest pv)
  (make-vector-rep (vector-rep-ops pv) ((vector-rep-op pv 'rest) (vector-rep-data pv))))
(define (pv-prepend x pv)
  (make-vector-rep (vector-rep-ops pv) ((vector-rep-op pv 'prepend) x (vector-rep-data pv))))
(define (pv->vector pv) (vector-rep-data pv))
"""

#: Figure 14: the self-specializing sequence. The constructor conditionally
#: generates wrapped versions of the list *or* vector operations, and
#: represents the underlying data using a list *or* vector, depending on
#: the profile information.
PROFILED_SEQUENCE_LIBRARY = r"""
;; Representation: (vector 'seq-rep tag instr-op-table data)
(define (make-seq-rep tag ops data) (vector 'seq-rep tag ops data))
(define (seq-rep? x)
  (and (vector? x) (= (vector-length x) 4) (eq? (vector-ref x 0) 'seq-rep)))
(define (seq-tag x) (vector-ref x 1))
(define (seq-ops x) (vector-ref x 2))
(define (seq-data x) (vector-ref x 3))
(define (seq-op x name) (hashtable-ref (seq-ops x) name #f))

(define-syntax (profiled-seq syn)
  ;; Fresh per-instance profile points, as in profiled-list.
  (define list-src (make-profile-point))
  (define vector-src (make-profile-point))
  (syntax-case syn ()
    [(_ init* ...)
     (if (and (profile-data-available?)
              (> (profile-query vector-src) (profile-query list-src)))
         ;; Specialize to a vector-backed sequence: random access is O(1),
         ;; head/tail operations copy.
         #`(make-seq-rep 'vector
            (let ([ht (make-eq-hashtable)])
              (hashtable-set! ht 'first   (lambda (d) #,(annotate-expr #'(vector-ref d 0) list-src)))
              (hashtable-set! ht 'rest    (lambda (d)
                                            #,(annotate-expr #'(list->vector (cdr (vector->list d))) list-src)))
              (hashtable-set! ht 'prepend (lambda (x d)
                                            #,(annotate-expr #'(list->vector (cons x (vector->list d))) list-src)))
              (hashtable-set! ht 'ref     (lambda (d i) #,(annotate-expr #'(vector-ref d i) vector-src)))
              (hashtable-set! ht 'set     (lambda (d i x) #,(annotate-expr #'(vector-set! d i x) vector-src)))
              (hashtable-set! ht 'length  (lambda (d) #,(annotate-expr #'(vector-length d) vector-src)))
              ht)
            (vector init* ...))
         ;; Default (and list-profiled) representation: a linked list —
         ;; head/tail/prepend are O(1), random access walks the spine.
         #`(make-seq-rep 'list
            (let ([ht (make-eq-hashtable)])
              (hashtable-set! ht 'first   (lambda (d) #,(annotate-expr #'(car d) list-src)))
              (hashtable-set! ht 'rest    (lambda (d) #,(annotate-expr #'(cdr d) list-src)))
              (hashtable-set! ht 'prepend (lambda (x d) #,(annotate-expr #'(cons x d) list-src)))
              (hashtable-set! ht 'ref     (lambda (d i) #,(annotate-expr #'(list-ref d i) vector-src)))
              (hashtable-set! ht 'set     (lambda (d i x)
                                            #,(annotate-expr #'(set-car! (list-tail d i) x) vector-src)))
              (hashtable-set! ht 'length  (lambda (d) #,(annotate-expr #'(length d) vector-src)))
              ht)
            (list init* ...)))]))

(define (seq-first s) ((seq-op s 'first) (seq-data s)))
(define (seq-rest s)
  (make-seq-rep (seq-tag s) (seq-ops s) ((seq-op s 'rest) (seq-data s))))
(define (seq-prepend x s)
  (make-seq-rep (seq-tag s) (seq-ops s) ((seq-op s 'prepend) x (seq-data s))))
(define (seq-ref s i) ((seq-op s 'ref) (seq-data s) i))
(define (seq-set! s i x) ((seq-op s 'set) (seq-data s) i x))
(define (seq-length s) ((seq-op s 'length) (seq-data s)))
(define (seq->list s)
  (if (eq? (seq-tag s) 'vector)
      (vector->list (seq-data s))
      (seq-data s)))
"""


def make_datastructs_system(
    mode: ProfileMode = ProfileMode.EXPR,
    policy: ProfilePolicy | str = ProfilePolicy.WARN,
) -> SchemeSystem:
    """A Scheme system with all three §6.3 libraries installed."""
    system = SchemeSystem(mode=mode, policy=policy)
    system.load_library(PROFILED_LIST_LIBRARY, "profiled-list.ss")
    system.load_library(PROFILED_VECTOR_LIBRARY, "profiled-vector.ss")
    system.load_library(PROFILED_SEQUENCE_LIBRARY, "profiled-seq.ss")
    return system
