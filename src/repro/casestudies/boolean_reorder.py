"""Extension case study: profile-guided short-circuit reordering.

Not in the paper's §6, but built entirely from its machinery — the kind of
"arbitrary meta-program" the conclusion claims the design enables, and
structured exactly like §6.2's receiver class prediction:

* with **no profile data**, ``and-r``/``or-r`` instrument: each operand is
  wrapped so that a freshly manufactured profile point (deterministic per
  use site, via ``make-profile-point``) counts how often that operand was
  *true*;
* with profile data, each operand's truth probability is the ratio of its
  truth-point weight to its own evaluation weight, and the operands are
  re-emitted in the order that stops evaluation soonest — ascending
  P(true) for ``and`` (fail fast), descending for ``or`` (succeed fast).

Like ``exclusive-cond``, soundness is the *programmer's domain knowledge*:
using ``and-r`` asserts the operands are pure and order-independent. The
user supplies the fact the compiler could never prove; the profile
supplies the numbers.
"""

from __future__ import annotations

from repro.core.policy import ProfilePolicy
from repro.scheme.instrument import ProfileMode
from repro.scheme.pipeline import SchemeSystem

__all__ = ["BOOLEAN_REORDER_LIBRARY", "make_boolean_system"]

BOOLEAN_REORDER_LIBRARY = r"""
;; Shared expand-time helpers.
(meta
  ;; Wrap one operand so `point` counts its true outcomes, preserving the
  ;; operand's value (and's result is the last operand's value).
  (define (instrument-operand e point)
    #`(let ([v #,e])
        (if v (begin #,(annotate-expr #'(void) point) v) #f))))

(meta
  ;; P(true) of each operand: truth-point weight / evaluation weight.
  ;; Never-evaluated operands score `unknown`.
  (define (truth-ratios exprs points unknown)
    (map (lambda (e p)
           (let ([evals (profile-query e)]
                 [truths (profile-query p)])
             (if (> evals 0) (/ truths evals) unknown)))
         exprs points)))

(meta
  (define (sort-by-ratio exprs ratios ascending?)
    (map cdr (sort (map cons ratios exprs) (if ascending? < >) car))))

(define-syntax (and-r syn)
  (syntax-case syn ()
    [(_) #'#t]
    [(_ e) #'e]
    [(_ e ...)
     (let* ([exprs #'(e ...)]
            [points (map (lambda (x) (make-profile-point syn)) exprs)])
       (if (profile-data-available?)
           ;; Optimize: fail fast — least-likely-true operand first.
           #`(and #,@(sort-by-ratio exprs (truth-ratios exprs points 1) #t))
           ;; Instrument: count each operand's true outcomes.
           #`(and #,@(map instrument-operand exprs points))))]))

(define-syntax (or-r syn)
  (syntax-case syn ()
    [(_) #'#f]
    [(_ e) #'e]
    [(_ e ...)
     (let* ([exprs #'(e ...)]
            [points (map (lambda (x) (make-profile-point syn)) exprs)])
       (if (profile-data-available?)
           ;; Optimize: succeed fast — most-likely-true operand first.
           #`(or #,@(sort-by-ratio exprs (truth-ratios exprs points 0) #f))
           #`(or #,@(map instrument-operand exprs points))))]))
"""


def make_boolean_system(
    mode: ProfileMode = ProfileMode.EXPR,
    policy: ProfilePolicy | str = ProfilePolicy.WARN,
) -> SchemeSystem:
    """A Scheme system with ``and-r`` / ``or-r`` installed."""
    system = SchemeSystem(mode=mode, policy=policy)
    system.load_library(BOOLEAN_REORDER_LIBRARY, "boolean-reorder.ss")
    return system
