"""The paper's running example: the ``if-r`` reordering conditional.

``if-r`` (Figure 1) is a syntax extension that, at compile time, compares
the profile weights of its two branches and — when the false branch is
hotter — generates an ``if`` with the test negated and the branches
swapped, so the likely branch comes first (Figure 2). It is "not a
meaningful optimization" in the paper's words, but its structure is exactly
that of the real §6.1 optimization, and it exercises the whole PGMP
workflow end to end.
"""

from __future__ import annotations

from repro.core.policy import ProfilePolicy
from repro.scheme.instrument import ProfileMode
from repro.scheme.pipeline import SchemeSystem

__all__ = ["IF_R_LIBRARY", "make_if_r_system"]

#: Figure 1, verbatim modulo our dialect's `cond` else clause.
IF_R_LIBRARY = r"""
(define-syntax (if-r stx)
  (syntax-case stx ()
    [(if-r test t-branch f-branch)
     ;; This let expression runs at compile time.
     (let ([t-prof (profile-query #'t-branch)]
           [f-prof (profile-query #'f-branch)])
       ;; This cond expression runs at compile time, and conditionally
       ;; generates run-time code based on profile information.
       (cond
         [(< t-prof f-prof)
          ;; This if expression would run at run time when generated.
          (begin
            (trace-decision 'if-r stx
                            '(swapped-branches negated-test)
                            '(source-order)
                            "false branch hotter; negated the test")
            #'(if (not test) f-branch t-branch))]
         [(>= t-prof f-prof)
          ;; So would this if expression.
          (begin
            (trace-decision 'if-r stx
                            '(source-order)
                            '(swapped-branches)
                            "true branch at least as hot; kept source order")
            #'(if test t-branch f-branch))]))]))
"""


def make_if_r_system(
    mode: ProfileMode = ProfileMode.EXPR,
    policy: ProfilePolicy | str = ProfilePolicy.WARN,
) -> SchemeSystem:
    """A Scheme system with ``if-r`` installed.

    The default ``warn`` policy makes the optimizer robust: missing, stale,
    or corrupt profile data falls back to the unoptimized expansion with a
    recorded reason instead of crashing the compile.
    """
    system = SchemeSystem(mode=mode, policy=policy)
    system.load_library(IF_R_LIBRARY, "if-r.ss")
    return system
