"""§6.1 — Profile-guided conditional branch optimization.

Reproduces the paper's Figures 6 and 7:

* ``exclusive-cond`` — a multi-way conditional whose branches are declared
  mutually exclusive, and may therefore be *reordered*: the transformer
  sorts the clauses by the profile weight of each clause's body and emits a
  plain ``cond`` (Figure 7). The ``else`` clause, if present, is never
  reordered.
* ``case`` — Scheme's ``case``, implemented by rewriting each clause into
  an explicit membership test and delegating the reordering to
  ``exclusive-cond`` (Figure 6). This is the paper's point about layering:
  ``case`` encodes the domain knowledge (clauses are mutually exclusive by
  construction) that makes the reordering sound.

The paper's .NET analogy: this is the same optimization the .NET compiler
performs on ``switch`` statements with value probes — but implemented in 50
+ 31 lines of user-level meta-program instead of inside the compiler.

Note: the paper's Figure 6 passes ``#'key-expr`` to ``rewrite-clause`` after
binding the key to a temporary ``t``; we pass ``#'t`` so the key expression
is evaluated exactly once, which is the evident intent of the ``let``.
"""

from __future__ import annotations

from repro.core.policy import ProfilePolicy
from repro.scheme.instrument import ProfileMode
from repro.scheme.pipeline import SchemeSystem

__all__ = [
    "EXCLUSIVE_COND_LIBRARY",
    "CASE_LIBRARY",
    "make_case_system",
]

#: Figure 7, extended (as the paper's full version is) with ``=>``, test-only
#: clauses, and a never-reordered ``else`` clause.
EXCLUSIVE_COND_LIBRARY = r"""
(define-syntax (exclusive-cond syn)
  ;; Internal definitions — run at compile time.
  (define (clause-weight clause)
    ;; The weight of a clause is the profile weight of its body.
    (syntax-case clause (=>)
      [(test => e1) (profile-query #'e1)]
      [(test) (profile-query #'test)]
      [(test e1 e2 ...) (profile-query #'e1)]))
  (define (clause-test clause)
    ;; The clause's test datum — the human-readable label trace-decision
    ;; records for each alternative.
    (syntax-case clause (=>)
      [(test => e1) (syntax->datum #'test)]
      [(test) (syntax->datum #'test)]
      [(test e1 e2 ...) (syntax->datum #'test)]))
  (define (sort-clauses clause*)
    ;; Sort clauses greatest-to-least by weight. Equal-weight clauses
    ;; keep their source order via an explicit original-index tie-break —
    ;; a guarantee of deterministic re-expansion, not an accident of the
    ;; host sort's stability.
    (define (decorate clause* i)
      (if (null? clause*)
          '()
          (cons (list (clause-weight (car clause*)) i (car clause*))
                (decorate (cdr clause*) (+ i 1)))))
    (define (hotter? a b)
      (if (= (car a) (car b))
          (< (car (cdr a)) (car (cdr b)))
          (> (car a) (car b))))
    (map (lambda (entry) (car (cdr (cdr entry))))
         (sort (decorate clause* 0) hotter?)))
  ;; Start of code transformation.
  (syntax-case syn (else)
    [(_ clause ... [else e1 e2 ...])
     ;; Splice sorted clauses into a cond expression; else stays last.
     (let ([sorted (sort-clauses #'(clause ...))])
       (trace-decision 'exclusive-cond syn
                       (map clause-test sorted)
                       (map clause-test #'(clause ...))
                       "emitted clause order vs. source order; else pinned last")
       #`(cond #,@sorted [else e1 e2 ...]))]
    [(_ clause ...)
     (let ([sorted (sort-clauses #'(clause ...))])
       (trace-decision 'exclusive-cond syn
                       (map clause-test sorted)
                       (map clause-test #'(clause ...))
                       "emitted clause order vs. source order")
       #`(cond #,@sorted))]))
"""

#: Figure 6 (with the full paper version's else clause), plus the
#: ``key-in?`` membership helper the generated code calls.
CASE_LIBRARY = r"""
(define (key-in? key ls)
  ;; Take this branch if the key expression is equal? to some element of
  ;; the list of constants.
  (if (member key ls) #t #f))

(define-syntax (case syn)
  ;; Internal definition — runs at compile time.
  (define (rewrite-clause key-var clause)
    (syntax-case clause (else)
      [((k ...) e1 e2 ...)
       #`((key-in? #,key-var '(k ...)) e1 e2 ...)]
      [(else e1 e2 ...) #'(else e1 e2 ...)]))
  ;; Start of code transformation.
  (syntax-case syn ()
    [(_ key-expr clause ...)
     ;; Evaluate the key-expr only once, instead of copying the entire
     ;; expression in the template.
     (begin
       (trace-decision 'case syn '(delegate-to-exclusive-cond) '()
                       "mutual exclusivity established by construction; reordering delegated")
       #`(let ([t key-expr])
           (exclusive-cond
            ;; transform each case clause into an exclusive-cond clause
            #,@(map (curry rewrite-clause #'t) #'(clause ...)))))]))
"""


def make_case_system(
    mode: ProfileMode = ProfileMode.EXPR,
    policy: ProfilePolicy | str = ProfilePolicy.WARN,
) -> SchemeSystem:
    """A Scheme system with ``exclusive-cond`` and ``case`` installed.

    The default ``warn`` policy keeps clause reordering advisory: bad
    profile data degrades to the source order with a recorded reason.
    """
    system = SchemeSystem(mode=mode, policy=policy)
    system.load_library(EXCLUSIVE_COND_LIBRARY, "exclusive-cond.ss")
    system.load_library(CASE_LIBRARY, "case.ss")
    return system
