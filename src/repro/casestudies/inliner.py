"""Extension case study: profile-guided call-site inlining.

The paper's introduction motivates PGO with Arnold et al.'s result that
profile-guided *inlining* beat static heuristics by up to 59% in Java.
This library implements that optimization as a user-level meta-program:

``(define-inlinable (name arg ...) body ...)`` defines ``name`` twice —

* a plain procedure (the out-of-line implementation), and
* a *macro* intercepting every call site: if the call site's own profile
  weight exceeds ``inline-threshold``, the call expands to a beta-redex of
  the recorded body (``((lambda (args) body) actuals)``); otherwise it
  stays an ordinary call. A bare ``name`` reference evaluates to the
  procedure, so higher-order uses keep working.

Per-call-site decisions fall out of the §3 design for free: the call
site's implicit profile point *is* its source location, so hot loops
inline while cold paths keep the compact call.

This is also the reproduction's stress test for macro-*generating* macros:
the transformer for each ``name`` is itself generated from a template, so
the library leans on ``with-syntax`` and the ``(... ...)`` ellipsis escape
exactly the way large Scheme systems do.
"""

from __future__ import annotations

from repro.core.policy import ProfilePolicy
from repro.scheme.instrument import ProfileMode
from repro.scheme.pipeline import SchemeSystem

__all__ = ["INLINER_LIBRARY", "make_inliner_system"]

INLINER_LIBRARY = r"""
;; A call site hotter than this (relative to the run's hottest point)
;; gets the body inlined.
(meta (define inline-threshold 1/2))

;; Does `sym` occur anywhere in (the datum of) `stx`? Used to detect
;; recursive inlinables, which are never inlined (inlining a recursive
;; body would regenerate an equally-hot copy of the same call site and
;; diverge — the standard compiler restriction).
(meta
  (define (occurs? sym datum)
    (cond
      [(symbol? datum) (eq? sym datum)]
      [(pair? datum) (or (occurs? sym (car datum)) (occurs? sym (cdr datum)))]
      [(vector? datum) (exists (lambda (d) (occurs? sym d))
                               (vector->list datum))]
      [else #f])))

(define-syntax (define-inlinable stx)
  (syntax-case stx ()
    [(_ (name arg ...) body ...)
     (with-syntax ([impl (datum->syntax #'name
                           (string->symbol
                             (string-append
                               (symbol->string (syntax->datum #'name))
                               "-impl")))]
                   [rec (occurs? (syntax->datum #'name)
                                 (syntax->datum #'(body ...)))])
       ;; NOTE: the interceptor macro must be bound BEFORE the
       ;; implementation's body expands, so that a recursive body's
       ;; self-call routes through it (top-level begin splices expand in
       ;; order).
       #`(begin
           ;; The call-site interceptor: a generated macro.
           (define-syntax (name use)
             (syntax-case use ()
               [(_ actual (... ...))
                ;; Either expansion is re-annotated with the *call site's*
                ;; profile point, so the site keeps counting under its own
                ;; identity — pass-1 instrumentation feeds this decision,
                ;; and re-profiling after inlining stays stable.
                (if (and (not rec) (> (profile-query use) inline-threshold))
                    ;; Hot call site: inline the recorded body.
                    (begin
                      (trace-decision 'define-inlinable use
                                      '(inline name) '(call name)
                                      "call-site weight above inline-threshold")
                      (annotate-expr
                        #'((lambda (arg ...) body ...) actual (... ...))
                        (expression-profile-point use)))
                    ;; Cold (or recursive) call site: plain call.
                    (begin
                      (trace-decision 'define-inlinable use
                                      '(call name) '(inline name)
                                      (if rec
                                          "recursive; never inlined"
                                          "call-site weight at or below inline-threshold"))
                      (annotate-expr
                        #'(impl actual (... ...))
                        (expression-profile-point use))))]
               ;; Bare reference (higher-order use): the procedure itself.
               [_ #'impl]))
           ;; The out-of-line implementation.
           (define impl (lambda (arg ...) body ...))))]))
"""


def make_inliner_system(
    mode: ProfileMode = ProfileMode.EXPR,
    policy: ProfilePolicy | str = ProfilePolicy.WARN,
) -> SchemeSystem:
    """A Scheme system with ``define-inlinable`` installed."""
    system = SchemeSystem(mode=mode, policy=policy)
    system.load_library(INLINER_LIBRARY, "inliner.ss")
    return system
