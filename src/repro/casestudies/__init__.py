"""The paper's case studies (Section 6), on the Scheme substrate.

Each module pairs a Scheme macro library — written to match the paper's
figures — with a small Python driver API that runs the profile → recompile
workflow. The libraries are genuine profile-guided meta-programs: they run
at expand time and consult ``profile-query``.

* :mod:`repro.casestudies.if_r` — the running example (Figures 1–2);
* :mod:`repro.casestudies.exclusive_cond` — profile-guided conditional
  branch optimization, ``case``/``exclusive-cond`` (Section 6.1,
  Figures 5–8);
* :mod:`repro.casestudies.receiver_class` — an embedded object system with
  profile-guided receiver class prediction (Section 6.2, Figures 9–12);
* :mod:`repro.casestudies.datastructs` — data-structure specialization:
  profiled lists/vectors that warn, and a self-specializing sequence
  (Section 6.3, Figures 13–14).
"""

from repro.casestudies.if_r import IF_R_LIBRARY, make_if_r_system
from repro.casestudies.exclusive_cond import (
    CASE_LIBRARY,
    EXCLUSIVE_COND_LIBRARY,
    make_case_system,
)
from repro.casestudies.receiver_class import (
    OBJECT_SYSTEM_LIBRARY,
    make_object_system,
)
from repro.casestudies.datastructs import (
    PROFILED_LIST_LIBRARY,
    PROFILED_SEQUENCE_LIBRARY,
    PROFILED_VECTOR_LIBRARY,
    make_datastructs_system,
)
from repro.casestudies.boolean_reorder import (
    BOOLEAN_REORDER_LIBRARY,
    make_boolean_system,
)
from repro.casestudies.inliner import INLINER_LIBRARY, make_inliner_system

__all__ = [
    "BOOLEAN_REORDER_LIBRARY",
    "CASE_LIBRARY",
    "INLINER_LIBRARY",
    "EXCLUSIVE_COND_LIBRARY",
    "IF_R_LIBRARY",
    "OBJECT_SYSTEM_LIBRARY",
    "PROFILED_LIST_LIBRARY",
    "PROFILED_SEQUENCE_LIBRARY",
    "PROFILED_VECTOR_LIBRARY",
    "make_boolean_system",
    "make_case_system",
    "make_inliner_system",
    "make_datastructs_system",
    "make_if_r_system",
    "make_object_system",
]
