"""The macro expander.

Lowers surface syntax to the core AST of :mod:`repro.scheme.core_forms`,
running user macros at expand time. Macro transformers are ordinary Scheme
procedures (``(define-syntax (name stx) ...)`` or
``(define-syntax name (lambda (stx) ...))``) that the expander compiles and
executes with the *same* interpreter used at run time — with the Figure-4
PGMP API (``profile-query``, ``make-profile-point``, ``annotate-expr``,
…) available as expand-time primitives. This is precisely the paper's
setting: meta-programs run at compile time and consult profile information
gathered from previous runs.

Hygiene follows the sets-of-scopes discipline of
:mod:`repro.scheme.hygiene`: binding forms add fresh scopes, macro
invocations flip a fresh introduction scope around the transformer call.

Core/derived forms handled here: ``quote`` ``if`` ``lambda`` ``begin``
``set!`` ``define`` ``define-syntax`` ``let`` ``let*`` ``letrec``
``letrec*`` named ``let`` ``cond`` ``and`` ``or`` ``when`` ``unless``
``quasiquote`` ``syntax`` ``quasisyntax`` ``syntax-case`` ``with-syntax``
``let-syntax`` ``letrec-syntax`` ``meta`` — note that ``case`` is *not*
built in: the paper implements it as a profile-guided meta-program
(Section 6.1), and so do we (:mod:`repro.casestudies.exclusive_cond`).
"""

from __future__ import annotations

import contextlib
from fractions import Fraction

from repro.core.errors import ExpandError
from repro.core.profile_point import reset_generated_points
from repro.obs.tracer import active_tracer
from repro.scheme.core_forms import (
    App,
    Begin,
    Const,
    CoreExpr,
    Define,
    If,
    Lambda,
    Program,
    Ref,
    SetBang,
    SyntaxCaseClause,
    SyntaxCaseExpr,
    TemplateExpr,
)
from repro.scheme.datum import (
    NIL,
    UNSPECIFIED,
    Char,
    Pair,
    SchemeVector,
    Symbol,
    gensym,
    scheme_list,
    write_datum,
)
from repro.scheme.env import GlobalEnvironment
from repro.scheme.hygiene import (
    BindingTable,
    CoreBinding,
    MacroBinding,
    PatternBinding,
    ScopeCounter,
    VariableBinding,
)
from repro.scheme.interpreter import Closure, Interpreter, apply_procedure
from repro.scheme.patterns import pattern_variables
from repro.scheme.syntax import (
    Syntax,
    datum_to_syntax,
    is_identifier,
    syntax_pylist,
    syntax_to_datum,
)

__all__ = ["Expander", "CORE_FORM_NAMES"]

CORE_FORM_NAMES = frozenset(
    {
        "quote",
        "if",
        "lambda",
        "begin",
        "set!",
        "define",
        "define-syntax",
        "let",
        "let*",
        "letrec",
        "letrec*",
        "cond",
        "and",
        "or",
        "when",
        "unless",
        "quasiquote",
        "unquote",
        "unquote-splicing",
        "syntax",
        "quasisyntax",
        "unsyntax",
        "unsyntax-splicing",
        "syntax-case",
        "with-syntax",
        "let-syntax",
        "letrec-syntax",
        "meta",
        "do",
        "syntax-rules",
        "case-lambda",
        "define-record-type",
        "let-values",
    }
)

_SELF_EVALUATING = (int, float, Fraction, str, bool, Char)


class Expander:
    """One expansion session over a shared binding table and expand-time env.

    A single :class:`Expander` may expand many programs; top-level bindings
    (including macros) persist across calls, which is how case-study
    "libraries" are loaded before user programs.
    """

    def __init__(self, expand_env: GlobalEnvironment) -> None:
        self.scope_counter = ScopeCounter()
        self.table = BindingTable()
        self.core_scope = self.scope_counter.fresh()
        self.core_scopes = frozenset({self.core_scope})
        for name in CORE_FORM_NAMES:
            self.table.add(Symbol(name), self.core_scopes, CoreBinding(name))
        self.expand_env = expand_env
        self.expand_interp = Interpreter(expand_env)

    # ---------------------------------------------------------------- top level

    def expand_program(self, forms: list[Syntax]) -> Program:
        """Expand a sequence of top-level forms into a core program."""
        reset_generated_points()
        out: list[CoreExpr] = []
        for form in forms:
            out.extend(self.expand_top_form(form.add_scope(self.core_scope)))
        return Program(out)

    def expand_top_form(self, stx: Syntax) -> list[CoreExpr]:
        stx = self._head_expand(stx)
        head = self._core_head(stx)
        if head == "define-record-type":
            return self.expand_top_form(self._expand_record_type(stx))
        if head == "begin":
            forms = syntax_pylist(stx)[1:]
            out: list[CoreExpr] = []
            for form in forms:
                out.extend(self.expand_top_form(form))
            return out
        if head == "define":
            return [self._expand_top_define(stx)]
        if head == "define-syntax":
            self._expand_define_syntax(stx)
            return []
        if head == "meta":
            self._expand_meta(stx)
            return []
        return [self.expand_expr(stx)]

    def _expand_top_define(self, stx: Syntax) -> Define:
        identifier, value_stx = self._parse_define(stx)
        name = identifier.datum
        assert isinstance(name, Symbol)
        # Top level is deliberately name-stable: the unique name *is* the
        # source name, so separately-expanded forms and expand-time
        # fallbacks agree on the variable's identity.
        unique = Symbol(name.name)
        self.table.add(name, identifier.scopes, VariableBinding(unique))
        expr = self.expand_expr(value_stx)
        if isinstance(expr, Lambda):
            expr.name = name.name
        return Define(stx, unique, expr, source_name=name.name)

    def _parse_define(self, stx: Syntax) -> tuple[Syntax, Syntax]:
        """Split ``(define id e)`` / ``(define (id . args) body…)``."""
        parts = syntax_pylist(stx)
        if len(parts) < 2:
            raise ExpandError(f"malformed define at {stx.srcloc}")
        target = parts[1]
        if is_identifier(target):
            if len(parts) == 2:
                # (define id) — initialize to unspecified.
                return target, datum_to_syntax(
                    scheme_list(Symbol("quote"), UNSPECIFIED), context=stx
                )
            if len(parts) != 3:
                raise ExpandError(f"malformed define at {stx.srcloc}")
            return target, parts[2]
        # (define (id . formals) body ...)
        if not target.is_pair():
            raise ExpandError(f"malformed define at {stx.srcloc}")
        head = target.datum.car
        head_stx = head if isinstance(head, Syntax) else datum_to_syntax(head)
        if not is_identifier(head_stx):
            raise ExpandError(f"malformed define at {stx.srcloc}")
        formals = target.datum.cdr
        lam = Syntax(
            Pair(
                Syntax(Symbol("lambda"), stx.srcloc, self.core_scopes),
                Pair(
                    formals
                    if isinstance(formals, Syntax)
                    else Syntax(formals, target.srcloc, target.scopes),
                    _tail_of(stx, 2),
                ),
            ),
            stx.srcloc,
            stx.scopes,
        )
        return head_stx, lam

    def _expand_record_type(self, stx: Syntax) -> Syntax:
        """(define-record-type name (fields f ...)) -> a begin of defines.

        Generates ``make-NAME``, ``NAME?``, and one accessor ``NAME-f`` and
        mutator ``set-NAME-f!`` per field, over a tagged-vector
        representation (tag symbol is unique per definition site, so two
        record types with the same name are distinct).
        """
        parts = syntax_pylist(stx)
        if len(parts) != 3 or not is_identifier(parts[1]):
            raise ExpandError(f"malformed define-record-type at {stx.srcloc}")
        name_id = parts[1]
        name = name_id.symbol_name
        fields_clause = syntax_pylist(parts[2])
        if (
            not fields_clause
            or not is_identifier(fields_clause[0])
            or fields_clause[0].symbol_name != "fields"
        ):
            raise ExpandError(
                f"define-record-type expects a (fields ...) clause at {stx.srcloc}"
            )
        field_ids = fields_clause[1:]
        for field_id in field_ids:
            if not is_identifier(field_id):
                raise ExpandError(f"malformed record field at {field_id.srcloc}")
        field_names = [f.symbol_name for f in field_ids]
        tag = gensym(f"record:{name}")

        def at(name_: str) -> Syntax:
            return Syntax(Symbol(name_), stx.srcloc, name_id.scopes)

        def core(name_: str) -> Syntax:
            return Syntax(Symbol(name_), stx.srcloc, self.core_scopes)

        def lst(*items: object) -> Syntax:
            return Syntax(_list_from(list(items)), stx.srcloc, stx.scopes)

        quoted_tag = lst(core("quote"), Syntax(tag, stx.srcloc, frozenset()))
        forms: list[object] = []
        # Constructor.
        forms.append(
            lst(core("define"), lst(at(f"make-{name}"), *[at(f) for f in field_names]),
                lst(core("vector"), quoted_tag, *[at(f) for f in field_names]))
        )
        # Predicate.
        forms.append(
            lst(core("define"), lst(at(f"{name}?"), at("x")),
                lst(core("and"),
                    lst(at("vector?"), at("x")),
                    lst(at("="), lst(at("vector-length"), at("x")),
                        Syntax(len(field_names) + 1, stx.srcloc, frozenset())),
                    lst(at("eq?"), lst(at("vector-ref"), at("x"),
                                       Syntax(0, stx.srcloc, frozenset())),
                        quoted_tag)))
        )
        # Accessors and mutators.
        for index, field in enumerate(field_names, start=1):
            idx = Syntax(index, stx.srcloc, frozenset())
            forms.append(
                lst(core("define"), lst(at(f"{name}-{field}"), at("r")),
                    lst(at("vector-ref"), at("r"), idx))
            )
            forms.append(
                lst(core("define"), lst(at(f"set-{name}-{field}!"), at("r"), at("v")),
                    lst(at("vector-set!"), at("r"), idx, at("v")))
            )
        return lst(core("begin"), *forms)

    def _expand_define_syntax(self, stx: Syntax, scopes_hint: frozenset | None = None) -> None:
        parts = syntax_pylist(stx)
        if len(parts) < 3:
            raise ExpandError(f"malformed define-syntax at {stx.srcloc}")
        target = parts[1]
        if is_identifier(target):
            if len(parts) != 3:
                raise ExpandError(f"malformed define-syntax at {stx.srcloc}")
            transformer_stx = parts[2]
        else:
            # (define-syntax (name stx) body ...) sugar — the paper's Figure 1.
            if not target.is_pair():
                raise ExpandError(f"malformed define-syntax at {stx.srcloc}")
            sub = syntax_pylist(target)
            if len(sub) != 2 or not is_identifier(sub[0]) or not is_identifier(sub[1]):
                raise ExpandError(f"malformed define-syntax at {stx.srcloc}")
            target = sub[0]
            transformer_stx = Syntax(
                Pair(
                    Syntax(Symbol("lambda"), stx.srcloc, self.core_scopes),
                    Pair(
                        Syntax(Pair(sub[1], NIL), stx.srcloc, stx.scopes),
                        _tail_of(stx, 2),
                    ),
                ),
                stx.srcloc,
                stx.scopes,
            )
        transformer = self._eval_transformer(transformer_stx)
        name = target.datum
        assert isinstance(name, Symbol)
        scopes = scopes_hint if scopes_hint is not None else target.scopes
        self.table.add(name, scopes, MacroBinding(transformer, name=name.name))

    def _eval_transformer(self, transformer_stx: Syntax) -> object:
        # (syntax-rules ...) builds a rewrite-only transformer directly.
        if self._core_head(transformer_stx) == "syntax-rules":
            return self._make_syntax_rules(transformer_stx)
        core = self.expand_expr(transformer_stx)
        value = self.expand_interp.eval_expr(core)
        if not (isinstance(value, Closure) or callable(value)):
            raise ExpandError(
                f"define-syntax transformer is not a procedure at "
                f"{transformer_stx.srcloc}"
            )
        return value

    def _core_syntax_rules(self, stx: Syntax) -> CoreExpr:
        raise ExpandError(
            f"syntax-rules is only allowed as a transformer ({stx.srcloc})"
        )

    def _make_syntax_rules(self, stx: Syntax) -> object:
        """Build a transformer from ``(syntax-rules (lit ...) [pat tmpl] ...)``.

        The classic rewrite-only macro facility: each clause's pattern is
        matched with its leading keyword position wildcarded, and the
        matching clause's template is instantiated with the match bindings.
        """
        from repro.scheme.patterns import match_pattern, pattern_variables
        from repro.scheme.template import instantiate_template

        parts = syntax_pylist(stx)
        if len(parts) < 2:
            raise ExpandError(f"malformed syntax-rules at {stx.srcloc}")
        literals = frozenset(
            identifier.symbol_name for identifier in syntax_pylist(parts[1])
        )
        clauses: list[tuple[Syntax, dict[str, int], Syntax]] = []
        for clause_stx in parts[2:]:
            items = syntax_pylist(clause_stx)
            if len(items) != 2:
                raise ExpandError(
                    f"malformed syntax-rules clause at {clause_stx.srcloc}"
                )
            pattern = _wildcard_head(items[0])
            depths = pattern_variables(pattern, literals)
            clauses.append((pattern, depths, items[1]))
        srcloc = stx.srcloc

        def transform(use: Syntax) -> Syntax:
            for pattern, depths, template in clauses:
                bindings = match_pattern(pattern, use, literals)
                if bindings is None:
                    continue
                env = {
                    name: (depths[name], value)
                    for name, value in bindings.items()
                }
                return instantiate_template(template, env)
            raise ExpandError(
                f"no syntax-rules clause (defined at {srcloc}) matches "
                f"{write_datum(syntax_to_datum(use))} at {use.srcloc}"
            )

        transform.scheme_name = "syntax-rules-transformer"
        return transform

    def _expand_meta(self, stx: Syntax) -> None:
        """``(meta form)``: expand and evaluate ``form`` at expand time."""
        parts = syntax_pylist(stx)
        for form in parts[1:]:
            for core in self.expand_top_form(form):
                if isinstance(core, Define):
                    value = self.expand_interp.eval_expr(core.expr)
                    if isinstance(value, Closure) and value.name == "lambda":
                        value.name = core.source_name
                    self.expand_env.define(core.unique, value)
                else:
                    self.expand_interp.eval_expr(core)

    # ---------------------------------------------------------------- dispatch

    def _head_expand(self, stx: Syntax) -> Syntax:
        """Expand macro uses at the head of ``stx`` until a non-macro form."""
        for _ in range(10_000):
            if stx.is_pair():
                head = stx.datum.car
                head_stx = head if isinstance(head, Syntax) else None
                if head_stx is not None and is_identifier(head_stx):
                    binding = self.table.resolve(head_stx)
                    if isinstance(binding, MacroBinding):
                        stx = self._apply_macro(binding, stx)
                        continue
            elif is_identifier(stx):
                binding = self.table.resolve(stx)
                if isinstance(binding, MacroBinding):
                    stx = self._apply_macro(binding, stx)
                    continue
            return stx
        raise ExpandError(f"macro expansion did not terminate at {stx.srcloc}")

    def _core_head(self, stx: Syntax) -> str | None:
        """The core-form name ``stx`` dispatches to, if any."""
        if not stx.is_pair():
            return None
        head = stx.datum.car
        if not (isinstance(head, Syntax) and is_identifier(head)):
            return None
        binding = self.table.resolve(head)
        if isinstance(binding, CoreBinding):
            return binding.name
        if binding is None and head.symbol_name in CORE_FORM_NAMES:
            # Scope-less syntax (raw datum->syntax output) falls back to core.
            return head.symbol_name
        return None

    def _apply_macro(self, binding: MacroBinding, stx: Syntax) -> Syntax:
        intro = self.scope_counter.fresh()
        flipped = stx.flip_scope(intro)
        tracer = active_tracer()
        span = (
            tracer.span("expand", binding.name, location=str(stx.srcloc))
            if tracer is not None
            else contextlib.nullcontext()
        )
        try:
            with span:
                result = apply_procedure(binding.transformer, [flipped])
        except ExpandError:
            raise
        except Exception as exc:
            raise ExpandError(
                f"error while expanding {binding.name} at {stx.srcloc}: {exc}"
            ) from exc
        if not isinstance(result, Syntax):
            result = datum_to_syntax(result, context=stx)
        return result.flip_scope(intro)

    def expand_expr(self, stx: Syntax) -> CoreExpr:
        stx = self._head_expand(stx)
        datum = stx.datum

        if isinstance(datum, Symbol):
            return self._expand_reference(stx)

        if isinstance(datum, bool) or isinstance(datum, _SELF_EVALUATING):
            return Const(stx, datum)

        if isinstance(datum, SchemeVector):
            return Const(stx, syntax_to_datum(stx))

        if datum is NIL:
            raise ExpandError(f"empty application () at {stx.srcloc}")

        if isinstance(datum, Pair):
            head = self._core_head(stx)
            if head is not None:
                return self._expand_core(head, stx)
            parts = syntax_pylist(stx)
            fn = self.expand_expr(parts[0])
            args = [self.expand_expr(arg) for arg in parts[1:]]
            return App(stx, fn, args)

        raise ExpandError(
            f"cannot expand {write_datum(syntax_to_datum(stx))} at {stx.srcloc}"
        )

    def _expand_reference(self, stx: Syntax) -> CoreExpr:
        binding = self.table.resolve(stx)
        name = stx.datum
        assert isinstance(name, Symbol)
        if binding is None:
            # Top-level fallback: unbound references denote (possibly
            # not-yet-defined) top-level variables or primitives.
            return Ref(stx, Symbol(name.name), source_name=name.name)
        if isinstance(binding, VariableBinding):
            return Ref(stx, binding.unique, source_name=name.name)
        if isinstance(binding, PatternBinding):
            raise ExpandError(
                f"pattern variable {name.name!r} referenced outside a syntax "
                f"template at {stx.srcloc}"
            )
        if isinstance(binding, CoreBinding):
            raise ExpandError(
                f"invalid use of core form {name.name!r} at {stx.srcloc}"
            )
        raise ExpandError(f"invalid reference to {name.name!r} at {stx.srcloc}")

    # ---------------------------------------------------------------- core forms

    def _expand_core(self, head: str, stx: Syntax) -> CoreExpr:
        handler = getattr(self, "_core_" + head.replace("!", "_bang").replace("-", "_").replace("*", "_star"), None)
        if handler is None:
            raise ExpandError(f"core form {head!r} not allowed here ({stx.srcloc})")
        return handler(stx)

    def _core_quote(self, stx: Syntax) -> CoreExpr:
        parts = syntax_pylist(stx)
        if len(parts) != 2:
            raise ExpandError(f"malformed quote at {stx.srcloc}")
        return Const(stx, syntax_to_datum(parts[1]))

    def _core_if(self, stx: Syntax) -> CoreExpr:
        parts = syntax_pylist(stx)
        if len(parts) not in (3, 4):
            raise ExpandError(f"malformed if at {stx.srcloc}")
        test = self.expand_expr(parts[1])
        then = self.expand_expr(parts[2])
        otherwise = (
            self.expand_expr(parts[3])
            if len(parts) == 4
            else Const(None, UNSPECIFIED)
        )
        return If(stx, test, then, otherwise)

    def _core_lambda(self, stx: Syntax) -> CoreExpr:
        parts = syntax_pylist(stx)
        if len(parts) < 3:
            raise ExpandError(f"malformed lambda at {stx.srcloc}")
        scope = self.scope_counter.fresh()
        formals = parts[1].add_scope(scope)
        body_forms = [form.add_scope(scope) for form in parts[2:]]
        params, rest, param_names = self._bind_formals(formals)
        body = self._expand_body(body_forms, stx)
        return Lambda(stx, params, rest, body, param_names=param_names)

    def _bind_formals(self, formals: Syntax) -> tuple[list[Symbol], Symbol | None, list[str]]:
        params: list[Symbol] = []
        names: list[str] = []
        rest: Symbol | None = None
        datum = formals.datum
        if is_identifier(formals):
            rest = self.table.bind_variable(formals)
            return params, rest, names
        node: object = datum
        while True:
            if isinstance(node, Syntax):
                if is_identifier(node):
                    rest = self.table.bind_variable(node)
                    return params, rest, names
                node = node.datum
                continue
            if isinstance(node, Pair):
                car = node.car
                car_stx = car if isinstance(car, Syntax) else datum_to_syntax(car)
                if not is_identifier(car_stx):
                    raise ExpandError(f"malformed parameter at {formals.srcloc}")
                params.append(self.table.bind_variable(car_stx))
                names.append(car_stx.symbol_name)
                node = node.cdr
                continue
            if node is NIL:
                return params, rest, names
            raise ExpandError(f"malformed formals at {formals.srcloc}")

    def _expand_body(self, forms: list[Syntax], context: Syntax) -> list[CoreExpr]:
        """Expand a lambda/let body with internal defines (letrec* scope).

        Pass 1 head-expands each form, splices ``begin``, registers internal
        ``define`` names and local macros; pass 2 expands right-hand sides
        and expressions. Internal defines lower to an inner lambda whose
        parameters are the defined names, initialized to unspecified and
        ``set!`` before the body runs.
        """
        if not forms:
            raise ExpandError(f"empty body at {context.srcloc}")
        # Pass 1: discover definitions.
        flat: list[Syntax] = []
        queue = list(forms)
        while queue:
            form = self._head_expand(queue.pop(0))
            if self._core_head(form) == "begin" and len(syntax_pylist(form)) > 1:
                queue = syntax_pylist(form)[1:] + queue
                continue
            flat.append(form)
        defines: list[tuple[Symbol, Syntax, str]] = []
        exprs: list[Syntax] = []
        expanded_flat: list[Syntax] = []
        for form in flat:
            if self._core_head(form) == "define-record-type":
                rewritten = self._expand_record_type(form)
                expanded_flat.extend(syntax_pylist(rewritten)[1:])
            else:
                expanded_flat.append(form)
        flat = expanded_flat
        for form in flat:
            head = self._core_head(form)
            if head == "define":
                identifier, value_stx = self._parse_define(form)
                unique = self.table.bind_variable(identifier)
                defines.append((unique, value_stx, identifier.symbol_name))
            elif head == "define-syntax":
                self._expand_define_syntax(form)
            else:
                exprs.append(form)
        if not exprs:
            raise ExpandError(f"body has no expressions at {context.srcloc}")
        # Pass 2: expand.
        if not defines:
            return [self.expand_expr(form) for form in exprs]
        inner_body: list[CoreExpr] = []
        for unique, value_stx, source_name in defines:
            value = self.expand_expr(value_stx)
            if isinstance(value, Lambda):
                value.name = source_name
            inner_body.append(SetBang(None, unique, value, source_name=source_name))
        inner_body.extend(self.expand_expr(form) for form in exprs)
        inner = Lambda(
            None,
            [unique for unique, _, _ in defines],
            None,
            inner_body,
            name="body",
        )
        unspecified = [Const(None, UNSPECIFIED) for _ in defines]
        return [App(None, inner, unspecified)]

    def _core_begin(self, stx: Syntax) -> CoreExpr:
        parts = syntax_pylist(stx)
        if len(parts) == 1:
            return Const(stx, UNSPECIFIED)
        return Begin(stx, [self.expand_expr(p) for p in parts[1:]])

    def _core_set_bang(self, stx: Syntax) -> CoreExpr:
        parts = syntax_pylist(stx)
        if len(parts) != 3 or not is_identifier(parts[1]):
            raise ExpandError(f"malformed set! at {stx.srcloc}")
        binding = self.table.resolve(parts[1])
        name = parts[1].datum
        assert isinstance(name, Symbol)
        if binding is None:
            unique = Symbol(name.name)
        elif isinstance(binding, VariableBinding):
            unique = binding.unique
        else:
            raise ExpandError(f"set! of non-variable {name.name!r} at {stx.srcloc}")
        return SetBang(stx, unique, self.expand_expr(parts[2]), source_name=name.name)

    def _core_define(self, stx: Syntax) -> CoreExpr:
        raise ExpandError(
            f"define is only allowed at top level or in a body ({stx.srcloc})"
        )

    def _core_define_syntax(self, stx: Syntax) -> CoreExpr:
        raise ExpandError(
            f"define-syntax is only allowed at top level or in a body ({stx.srcloc})"
        )

    def _core_meta(self, stx: Syntax) -> CoreExpr:
        raise ExpandError(f"meta is only allowed at top level ({stx.srcloc})")

    # -- let family ----------------------------------------------------------------

    def _parse_bindings(self, bindings_stx: Syntax, what: str) -> list[tuple[Syntax, Syntax]]:
        out = []
        for binding in syntax_pylist(bindings_stx):
            pair = syntax_pylist(binding)
            if len(pair) != 2 or not is_identifier(pair[0]):
                raise ExpandError(f"malformed {what} binding at {binding.srcloc}")
            out.append((pair[0], pair[1]))
        return out

    def _core_let(self, stx: Syntax) -> CoreExpr:
        parts = syntax_pylist(stx)
        if len(parts) >= 3 and is_identifier(parts[1]):
            return self._expand_named_let(stx, parts)
        if len(parts) < 3:
            raise ExpandError(f"malformed let at {stx.srcloc}")
        bindings = self._parse_bindings(parts[1], "let")
        inits = [self.expand_expr(init) for _, init in bindings]
        scope = self.scope_counter.fresh()
        params = [
            self.table.bind_variable(identifier.add_scope(scope))
            for identifier, _ in bindings
        ]
        body_forms = [form.add_scope(scope) for form in parts[2:]]
        body = self._expand_body(body_forms, stx)
        names = [identifier.symbol_name for identifier, _ in bindings]
        return App(stx, Lambda(None, params, None, body, name="let", param_names=names), inits)

    def _expand_named_let(self, stx: Syntax, parts: list[Syntax]) -> CoreExpr:
        if len(parts) < 4:
            raise ExpandError(f"malformed named let at {stx.srcloc}")
        loop_id = parts[1]
        bindings = self._parse_bindings(parts[2], "named-let")
        inits = [self.expand_expr(init) for _, init in bindings]
        outer_scope = self.scope_counter.fresh()
        loop_unique = self.table.bind_variable(loop_id.add_scope(outer_scope))
        inner_scope = self.scope_counter.fresh()
        params = [
            self.table.bind_variable(ident.add_scope(outer_scope).add_scope(inner_scope))
            for ident, _ in bindings
        ]
        body_forms = [
            form.add_scope(outer_scope).add_scope(inner_scope) for form in parts[3:]
        ]
        body = self._expand_body(body_forms, stx)
        loop_lambda = Lambda(
            None, params, None, body, name=loop_id.symbol_name,
            param_names=[i.symbol_name for i, _ in bindings],
        )
        # ((lambda (loop) (set! loop (lambda params body)) (loop inits...)) unspec)
        wrapper_body: list[CoreExpr] = [
            SetBang(None, loop_unique, loop_lambda, source_name=loop_id.symbol_name),
            App(None, Ref(None, loop_unique, source_name=loop_id.symbol_name), inits),
        ]
        wrapper = Lambda(None, [loop_unique], None, wrapper_body, name="named-let")
        return App(stx, wrapper, [Const(None, UNSPECIFIED)])

    def _core_let_star(self, stx: Syntax) -> CoreExpr:
        parts = syntax_pylist(stx)
        if len(parts) < 3:
            raise ExpandError(f"malformed let* at {stx.srcloc}")
        bindings = self._parse_bindings(parts[1], "let*")
        scopes: list[int] = []
        compiled: list[tuple[Symbol, CoreExpr, str]] = []
        for identifier, init_stx in bindings:
            for scope in scopes:
                init_stx = init_stx.add_scope(scope)
            init = self.expand_expr(init_stx)
            scope = self.scope_counter.fresh()
            scopes.append(scope)
            ident = identifier
            for s in scopes:
                ident = ident.add_scope(s)
            unique = self.table.bind_variable(ident)
            compiled.append((unique, init, identifier.symbol_name))
        body_forms = parts[2:]
        for scope in scopes:
            body_forms = [form.add_scope(scope) for form in body_forms]
        body = self._expand_body(body_forms, stx)
        # Nest single-binding lets innermost-last; only the outermost
        # application carries the source form (and its profile point).
        for unique, init, name in reversed(compiled):
            body = [
                App(
                    None,
                    Lambda(None, [unique], None, body, name="let*", param_names=[name]),
                    [init],
                )
            ]
        outer = body[0]
        outer.stx = stx
        return outer

    def _core_letrec(self, stx: Syntax) -> CoreExpr:
        return self._expand_letrec(stx)

    def _core_letrec_star(self, stx: Syntax) -> CoreExpr:
        return self._expand_letrec(stx)

    def _expand_letrec(self, stx: Syntax) -> CoreExpr:
        parts = syntax_pylist(stx)
        if len(parts) < 3:
            raise ExpandError(f"malformed letrec at {stx.srcloc}")
        bindings = self._parse_bindings(parts[1], "letrec")
        scope = self.scope_counter.fresh()
        uniques = [
            self.table.bind_variable(identifier.add_scope(scope))
            for identifier, _ in bindings
        ]
        inits = [self.expand_expr(init.add_scope(scope)) for _, init in bindings]
        body_forms = [form.add_scope(scope) for form in parts[2:]]
        body = self._expand_body(body_forms, stx)
        inner_body: list[CoreExpr] = []
        for (identifier, _), unique, init in zip(bindings, uniques, inits):
            if isinstance(init, Lambda):
                init.name = identifier.symbol_name
            inner_body.append(
                SetBang(None, unique, init, source_name=identifier.symbol_name)
            )
        inner_body.extend(body)
        inner = Lambda(None, uniques, None, inner_body, name="letrec")
        return App(stx, inner, [Const(None, UNSPECIFIED) for _ in uniques])

    # -- conditionals / boolean forms -------------------------------------------------

    def _core_cond(self, stx: Syntax) -> CoreExpr:
        parts = syntax_pylist(stx)
        clauses = parts[1:]
        return self._expand_cond_clauses(stx, clauses)

    def _expand_cond_clauses(self, stx: Syntax, clauses: list[Syntax]) -> CoreExpr:
        if not clauses:
            return Const(stx, UNSPECIFIED)
        clause = clauses[0]
        rest = clauses[1:]
        items = syntax_pylist(clause)
        if not items:
            raise ExpandError(f"malformed cond clause at {clause.srcloc}")
        test = items[0]
        if is_identifier(test) and test.symbol_name == "else":
            if rest:
                raise ExpandError(f"cond: else clause must be last ({clause.srcloc})")
            if len(items) < 2:
                raise ExpandError(f"malformed else clause at {clause.srcloc}")
            body = [self.expand_expr(e) for e in items[1:]]
            return body[0] if len(body) == 1 else Begin(clause, body)
        if len(items) >= 3 and is_identifier(items[1]) and items[1].symbol_name == "=>":
            # (test => receiver): apply receiver to the test value.
            test_core = self.expand_expr(test)
            receiver = self.expand_expr(items[2])
            tmp = gensym("condv")
            return App(
                clause,
                Lambda(
                    None,
                    [tmp],
                    None,
                    [
                        If(
                            None,
                            Ref(None, tmp),
                            App(None, receiver, [Ref(None, tmp)]),
                            self._expand_cond_clauses(stx, rest),
                        )
                    ],
                    name="cond=>",
                ),
                [test_core],
            )
        test_core = self.expand_expr(test)
        if len(items) == 1:
            # (test): the test value itself when true.
            tmp = gensym("condv")
            return App(
                clause,
                Lambda(
                    None,
                    [tmp],
                    None,
                    [
                        If(
                            None,
                            Ref(None, tmp),
                            Ref(None, tmp),
                            self._expand_cond_clauses(stx, rest),
                        )
                    ],
                    name="cond",
                ),
                [test_core],
            )
        body = [self.expand_expr(e) for e in items[1:]]
        then = body[0] if len(body) == 1 else Begin(clause, body)
        return If(clause, test_core, then, self._expand_cond_clauses(stx, rest))

    def _core_and(self, stx: Syntax) -> CoreExpr:
        parts = syntax_pylist(stx)[1:]
        if not parts:
            return Const(stx, True)
        exprs = [self.expand_expr(p) for p in parts]
        result = exprs[-1]
        for expr in reversed(exprs[:-1]):
            result = If(None, expr, result, Const(None, False))
        if isinstance(result, If):
            result.stx = stx
        return result

    def _core_or(self, stx: Syntax) -> CoreExpr:
        parts = syntax_pylist(stx)[1:]
        if not parts:
            return Const(stx, False)
        exprs = [self.expand_expr(p) for p in parts]
        result = exprs[-1]
        for expr in reversed(exprs[:-1]):
            tmp = gensym("orv")
            result = App(
                None,
                Lambda(
                    None,
                    [tmp],
                    None,
                    [If(None, Ref(None, tmp), Ref(None, tmp), result)],
                    name="or",
                ),
                [expr],
            )
        if isinstance(result, App):
            result.stx = stx
        return result

    def _core_let_values(self, stx: Syntax) -> CoreExpr:
        """(let-values ([(a b ...) expr] ...) body ...)

        Lowered to nested ``call-with-values`` applications: each binding's
        producer thunk feeds a consumer lambda binding that clause's
        variables over the rest of the chain.
        """
        parts = syntax_pylist(stx)
        if len(parts) < 3:
            raise ExpandError(f"malformed let-values at {stx.srcloc}")
        bindings: list[tuple[Syntax, Syntax]] = []
        for binding in syntax_pylist(parts[1]):
            items = syntax_pylist(binding)
            if len(items) != 2:
                raise ExpandError(f"malformed let-values binding at {binding.srcloc}")
            bindings.append((items[0], items[1]))
        core = self.core_scopes

        def sym(name: str) -> Syntax:
            return Syntax(Symbol(name), stx.srcloc, core)

        body: object = Syntax(
            _list_from([sym("begin"), *parts[2:]]), stx.srcloc, stx.scopes
        )
        for formals, producer in reversed(bindings):
            thunk = Syntax(
                _list_from([sym("lambda"), Syntax(NIL, producer.srcloc, producer.scopes), producer]),
                producer.srcloc,
                stx.scopes,
            )
            consumer = Syntax(
                _list_from([sym("lambda"), formals, body]), stx.srcloc, stx.scopes
            )
            body = Syntax(
                _list_from([sym("call-with-values"), thunk, consumer]),
                stx.srcloc,
                stx.scopes,
            )
        return self.expand_expr(body)

    def _core_case_lambda(self, stx: Syntax) -> CoreExpr:
        """(case-lambda [formals body ...] ...)

        Lowered to ``(make-case-lambda n-or-#f proc ...)``: each clause
        becomes a plain lambda; the runtime helper dispatches on argument
        count (#f marks a rest-accepting clause with its minimum arity
        encoded as a negative number minus one).
        """
        parts = syntax_pylist(stx)
        if len(parts) < 2:
            raise ExpandError(f"malformed case-lambda at {stx.srcloc}")
        args: list[CoreExpr] = []
        for clause_stx in parts[1:]:
            items = syntax_pylist(clause_stx)
            if len(items) < 2:
                raise ExpandError(
                    f"malformed case-lambda clause at {clause_stx.srcloc}"
                )
            scope = self.scope_counter.fresh()
            formals = items[0].add_scope(scope)
            body_forms = [form.add_scope(scope) for form in items[1:]]
            params, rest, names = self._bind_formals(formals)
            body = self._expand_body(body_forms, stx)
            lam = Lambda(None, params, rest, body, name="case-lambda-clause",
                         param_names=names)
            if rest is None:
                arity: object = len(params)
            else:
                arity = -(len(params) + 1)  # >= len(params), rest collected
            args.append(Const(None, arity))
            args.append(lam)
        return App(stx, Ref(None, Symbol("make-case-lambda")), args)

    def _core_define_record_type(self, stx: Syntax) -> CoreExpr:
        raise ExpandError(
            f"define-record-type is only allowed at top level or in a body "
            f"({stx.srcloc})"
        )

    def _core_do(self, stx: Syntax) -> CoreExpr:
        """(do ([var init step] ...) (test result ...) body ...)

        Lowered to a named let: loop on vars; when test fires, evaluate the
        results (or unspecified); otherwise run the body and recur on the
        step expressions (a var without a step recurs on itself).
        """
        parts = syntax_pylist(stx)
        if len(parts) < 3:
            raise ExpandError(f"malformed do at {stx.srcloc}")
        bindings: list[tuple[Syntax, Syntax, Syntax]] = []
        for binding in syntax_pylist(parts[1]):
            items = syntax_pylist(binding)
            if len(items) == 2:
                var, init = items
                step = var
            elif len(items) == 3:
                var, init, step = items
            else:
                raise ExpandError(f"malformed do binding at {binding.srcloc}")
            if not is_identifier(var):
                raise ExpandError(f"malformed do variable at {binding.srcloc}")
            bindings.append((var, init, step))
        exit_clause = syntax_pylist(parts[2])
        if not exit_clause:
            raise ExpandError(f"do requires a test clause at {stx.srcloc}")
        test = exit_clause[0]
        results = exit_clause[1:]
        body = parts[3:]
        core = self.core_scopes
        loop = Syntax(gensym("doloop"), stx.srcloc, stx.scopes)

        def sym(name: str) -> Syntax:
            return Syntax(Symbol(name), stx.srcloc, core)

        result_expr: object
        if results:
            result_expr = Syntax(
                _list_from([sym("begin"), *results]), stx.srcloc, stx.scopes
            )
        else:
            result_expr = Syntax(
                _list_from([sym("void")]), stx.srcloc, stx.scopes
            )
        recur = Syntax(
            _list_from([loop, *[step for _, _, step in bindings]]),
            stx.srcloc,
            stx.scopes,
        )
        body_and_recur: list[object] = [*body, recur]
        loop_body = Syntax(
            _list_from(
                [sym("if"), test, result_expr,
                 Syntax(_list_from([sym("begin"), *body_and_recur]), stx.srcloc, stx.scopes)]
            ),
            stx.srcloc,
            stx.scopes,
        )
        let_bindings = Syntax(
            _list_from(
                [
                    Syntax(_list_from([var, init]), var.srcloc, var.scopes)
                    for var, init, _ in bindings
                ]
            ),
            stx.srcloc,
            stx.scopes,
        )
        named_let = Syntax(
            _list_from([sym("let"), loop, let_bindings, loop_body]),
            stx.srcloc,
            stx.scopes,
        )
        return self.expand_expr(named_let)

    def _core_when(self, stx: Syntax) -> CoreExpr:
        parts = syntax_pylist(stx)
        if len(parts) < 3:
            raise ExpandError(f"malformed when at {stx.srcloc}")
        body = [self.expand_expr(p) for p in parts[2:]]
        then = body[0] if len(body) == 1 else Begin(stx, body)
        return If(stx, self.expand_expr(parts[1]), then, Const(None, UNSPECIFIED))

    def _core_unless(self, stx: Syntax) -> CoreExpr:
        parts = syntax_pylist(stx)
        if len(parts) < 3:
            raise ExpandError(f"malformed unless at {stx.srcloc}")
        body = [self.expand_expr(p) for p in parts[2:]]
        then = body[0] if len(body) == 1 else Begin(stx, body)
        return If(stx, self.expand_expr(parts[1]), Const(None, UNSPECIFIED), then)

    # -- quasiquote -----------------------------------------------------------------

    def _core_quasiquote(self, stx: Syntax) -> CoreExpr:
        parts = syntax_pylist(stx)
        if len(parts) != 2:
            raise ExpandError(f"malformed quasiquote at {stx.srcloc}")
        return self._qq(parts[1], 1)

    def _core_unquote(self, stx: Syntax) -> CoreExpr:
        raise ExpandError(f"unquote outside quasiquote at {stx.srcloc}")

    def _core_unquote_splicing(self, stx: Syntax) -> CoreExpr:
        raise ExpandError(f"unquote-splicing outside quasiquote at {stx.srcloc}")

    def _qq_tagged(self, stx: Syntax) -> tuple[str, Syntax] | None:
        """Recognize (unquote e) / (unquote-splicing e) / (quasiquote e)."""
        if not stx.is_pair():
            return None
        head = stx.datum.car
        if isinstance(head, Syntax) and is_identifier(head):
            name = head.symbol_name
            if name in ("unquote", "unquote-splicing", "quasiquote"):
                rest = syntax_pylist(stx)
                if len(rest) == 2:
                    return name, rest[1]
        return None

    def _qq(self, stx: Syntax, depth: int) -> CoreExpr:
        tagged = self._qq_tagged(stx)
        if tagged is not None:
            tag, inner = tagged
            if tag == "unquote":
                if depth == 1:
                    return self.expand_expr(inner)
                return self._qq_rebuild(stx, tag, inner, depth - 1)
            if tag == "quasiquote":
                return self._qq_rebuild(stx, tag, inner, depth + 1)
            if tag == "unquote-splicing":
                raise ExpandError(
                    f"unquote-splicing outside list context at {stx.srcloc}"
                )
        datum = stx.datum
        if isinstance(datum, Pair):
            return self._qq_list(stx, depth)
        if isinstance(datum, SchemeVector):
            elems = Syntax(
                _list_from([x if isinstance(x, Syntax) else datum_to_syntax(x) for x in datum]),
                stx.srcloc,
                stx.scopes,
            )
            return App(
                stx,
                Ref(None, Symbol("list->vector")),
                [self._qq_list(elems, depth)],
            )
        return Const(stx, syntax_to_datum(stx))

    def _qq_rebuild(self, stx: Syntax, tag: str, inner: Syntax, depth: int) -> CoreExpr:
        return App(
            stx,
            Ref(None, Symbol("list")),
            [Const(None, Symbol(tag)), self._qq(inner, depth)],
        )

    def _qq_list(self, stx: Syntax, depth: int) -> CoreExpr:
        node: object = stx.datum
        elements: list[Syntax] = []
        tail: object = NIL
        while True:
            if isinstance(node, Syntax):
                tagged = self._qq_tagged(node)
                if tagged is not None or not (
                    isinstance(node.datum, Pair) or node.datum is NIL
                ):
                    tail = node
                    break
                node = node.datum
                continue
            if isinstance(node, Pair):
                car = node.car
                elements.append(car if isinstance(car, Syntax) else datum_to_syntax(car))
                node = node.cdr
                continue
            tail = node  # NIL
            break
        if tail is NIL:
            result: CoreExpr = Const(None, NIL)
        else:
            result = self._qq(tail if isinstance(tail, Syntax) else datum_to_syntax(tail), depth)
        for element in reversed(elements):
            tagged = self._qq_tagged(element)
            if tagged is not None and tagged[0] == "unquote-splicing" and depth == 1:
                spliced = self.expand_expr(tagged[1])
                result = App(stx, Ref(None, Symbol("append")), [spliced, result])
            else:
                result = App(
                    stx, Ref(None, Symbol("cons")), [self._qq(element, depth), result]
                )
        return result

    # -- syntax templates and syntax-case -----------------------------------------------

    def _template_pvars(self, template: Syntax) -> dict[str, tuple[Symbol, int]]:
        """Pattern variables (from enclosing syntax-case clauses) in template."""
        pvars: dict[str, tuple[Symbol, int]] = {}
        self._scan_template(template, pvars)
        return pvars

    def _scan_template(self, stx: object, pvars: dict[str, tuple[Symbol, int]]) -> None:
        if isinstance(stx, Syntax):
            datum = stx.datum
            if isinstance(datum, Symbol):
                if datum.name in pvars or datum.name == "...":
                    return
                binding = self.table.resolve(stx)
                if isinstance(binding, PatternBinding):
                    pvars[datum.name] = (binding.unique, binding.depth)
                return
            self._scan_template(datum, pvars)
            return
        if isinstance(stx, Pair):
            node: object = stx
            while isinstance(node, Pair):
                self._scan_template(node.car, pvars)
                node = node.cdr
            if node is not NIL:
                self._scan_template(node, pvars)
            return
        if isinstance(stx, SchemeVector):
            for item in stx:
                self._scan_template(item, pvars)

    def _core_syntax(self, stx: Syntax) -> CoreExpr:
        parts = syntax_pylist(stx)
        if len(parts) != 2:
            raise ExpandError(f"malformed syntax at {stx.srcloc}")
        template = parts[1]
        return TemplateExpr(stx, template, self._template_pvars(template), {})

    def _core_unsyntax(self, stx: Syntax) -> CoreExpr:
        raise ExpandError(f"unsyntax outside quasisyntax at {stx.srcloc}")

    def _core_unsyntax_splicing(self, stx: Syntax) -> CoreExpr:
        raise ExpandError(f"unsyntax-splicing outside quasisyntax at {stx.srcloc}")

    def _core_quasisyntax(self, stx: Syntax) -> CoreExpr:
        parts = syntax_pylist(stx)
        if len(parts) != 2:
            raise ExpandError(f"malformed quasisyntax at {stx.srcloc}")
        holes: dict[str, tuple[CoreExpr, bool]] = {}
        template = self._strip_unsyntax(parts[1], 1, holes)
        return TemplateExpr(stx, template, self._template_pvars(template), holes)

    def _qsyn_tagged(self, stx: Syntax) -> tuple[str, Syntax] | None:
        if not stx.is_pair():
            return None
        head = stx.datum.car
        if isinstance(head, Syntax) and is_identifier(head):
            name = head.symbol_name
            if name in ("unsyntax", "unsyntax-splicing", "quasisyntax"):
                rest = syntax_pylist(stx)
                if len(rest) == 2:
                    return name, rest[1]
        return None

    def _strip_unsyntax(
        self, stx: Syntax, depth: int, holes: dict[str, tuple[CoreExpr, bool]]
    ) -> Syntax:
        tagged = self._qsyn_tagged(stx)
        if tagged is not None:
            tag, inner = tagged
            if tag == "quasisyntax":
                inner2 = self._strip_unsyntax(inner, depth + 1, holes)
                return _retag(stx, tag, inner2)
            if depth == 1:
                hole_name = f"hole%{len(holes)}%{gensym('h').name}"
                holes[hole_name] = (
                    self.expand_expr(inner),
                    tag == "unsyntax-splicing",
                )
                return Syntax(Symbol(hole_name), stx.srcloc, stx.scopes)
            inner2 = self._strip_unsyntax(inner, depth - 1, holes)
            return _retag(stx, tag, inner2)
        datum = stx.datum
        if isinstance(datum, Pair):
            items: list[object] = []
            node: object = datum
            tail: object = NIL
            while True:
                if isinstance(node, Syntax):
                    if isinstance(node.datum, Pair) or node.datum is NIL:
                        node = node.datum
                        continue
                    tail = self._strip_unsyntax(node, depth, holes)
                    break
                if isinstance(node, Pair):
                    car = node.car
                    car_stx = car if isinstance(car, Syntax) else datum_to_syntax(car)
                    items.append(self._strip_unsyntax(car_stx, depth, holes))
                    node = node.cdr
                    continue
                tail = NIL
                break
            new_datum: object = tail
            for item in reversed(items):
                new_datum = Pair(item, new_datum)
            return Syntax(new_datum, stx.srcloc, stx.scopes, stx.explicit_point)
        if isinstance(datum, SchemeVector):
            new_items = [
                self._strip_unsyntax(
                    x if isinstance(x, Syntax) else datum_to_syntax(x), depth, holes
                )
                for x in datum
            ]
            return Syntax(SchemeVector(new_items), stx.srcloc, stx.scopes, stx.explicit_point)
        return stx

    def _core_syntax_case(self, stx: Syntax) -> CoreExpr:
        parts = syntax_pylist(stx)
        if len(parts) < 3:
            raise ExpandError(f"malformed syntax-case at {stx.srcloc}")
        subject = self.expand_expr(parts[1])
        literals = frozenset(
            identifier.symbol_name for identifier in syntax_pylist(parts[2])
        )
        clauses: list[SyntaxCaseClause] = []
        for clause_stx in parts[3:]:
            items = syntax_pylist(clause_stx)
            if len(items) == 2:
                pattern, fender_stx, body_stx = items[0], None, items[1]
            elif len(items) == 3:
                pattern, fender_stx, body_stx = items[0], items[1], items[2]
            else:
                raise ExpandError(f"malformed syntax-case clause at {clause_stx.srcloc}")
            depths = pattern_variables(pattern, literals)
            scope = self.scope_counter.fresh()
            pvar_map: dict[str, tuple[Symbol, int]] = {}
            occurrences = _pattern_identifier_occurrences(pattern, set(depths))
            for name, depth in depths.items():
                unique = gensym("pv_" + name)
                occurrence = occurrences[name]
                self.table.add(
                    Symbol(name),
                    occurrence.scopes | {scope},
                    PatternBinding(unique, depth),
                )
                pvar_map[name] = (unique, depth)
            fender = (
                self.expand_expr(fender_stx.add_scope(scope))
                if fender_stx is not None
                else None
            )
            body = self.expand_expr(body_stx.add_scope(scope))
            clauses.append(SyntaxCaseClause(pattern, pvar_map, fender, body))
        return SyntaxCaseExpr(stx, subject, literals, clauses)

    def _core_with_syntax(self, stx: Syntax) -> CoreExpr:
        # (with-syntax ([pat expr] ...) body ...)
        # ==> (syntax-case (list expr ...) () [(pat ...) (begin body ...)])
        parts = syntax_pylist(stx)
        if len(parts) < 3:
            raise ExpandError(f"malformed with-syntax at {stx.srcloc}")
        patterns_: list[Syntax] = []
        exprs: list[Syntax] = []
        for binding in syntax_pylist(parts[1]):
            pair = syntax_pylist(binding)
            if len(pair) != 2:
                raise ExpandError(f"malformed with-syntax binding at {binding.srcloc}")
            patterns_.append(pair[0])
            exprs.append(pair[1])
        core = self.core_scopes
        list_call = Syntax(
            _list_from([Syntax(Symbol("list"), stx.srcloc, frozenset())] + exprs),
            stx.srcloc,
            stx.scopes,
        )
        pattern = Syntax(_list_from(patterns_), stx.srcloc, stx.scopes)
        body = Syntax(
            _list_from([Syntax(Symbol("begin"), stx.srcloc, core)] + parts[2:]),
            stx.srcloc,
            stx.scopes,
        )
        clause = Syntax(_list_from([pattern, body]), stx.srcloc, stx.scopes)
        rebuilt = Syntax(
            _list_from(
                [
                    Syntax(Symbol("syntax-case"), stx.srcloc, core),
                    list_call,
                    Syntax(NIL, stx.srcloc, stx.scopes),
                    clause,
                ]
            ),
            stx.srcloc,
            stx.scopes,
        )
        return self.expand_expr(rebuilt)

    def _core_let_syntax(self, stx: Syntax) -> CoreExpr:
        return self._expand_let_syntax(stx)

    def _core_letrec_syntax(self, stx: Syntax) -> CoreExpr:
        return self._expand_let_syntax(stx)

    def _expand_let_syntax(self, stx: Syntax) -> CoreExpr:
        parts = syntax_pylist(stx)
        if len(parts) < 3:
            raise ExpandError(f"malformed let-syntax at {stx.srcloc}")
        scope = self.scope_counter.fresh()
        for binding in syntax_pylist(parts[1]):
            pair = syntax_pylist(binding)
            if len(pair) != 2 or not is_identifier(pair[0]):
                raise ExpandError(f"malformed let-syntax binding at {binding.srcloc}")
            transformer = self._eval_transformer(pair[1])
            name = pair[0].datum
            assert isinstance(name, Symbol)
            self.table.add(
                name,
                pair[0].scopes | {scope},
                MacroBinding(transformer, name=name.name),
            )
        body_forms = [form.add_scope(scope) for form in parts[2:]]
        body = self._expand_body(body_forms, stx)
        return body[0] if len(body) == 1 else Begin(stx, body)


# -- module-level helpers ---------------------------------------------------------


def _tail_of(stx: Syntax, n: int) -> object:
    """The raw spine of ``stx`` after dropping ``n`` elements."""
    node: object = stx.datum
    for _ in range(n):
        while isinstance(node, Syntax):
            node = node.datum
        assert isinstance(node, Pair)
        node = node.cdr
    return node


def _list_from(items: list[object]) -> object:
    datum: object = NIL
    for item in reversed(items):
        datum = Pair(item, datum)
    return datum


def _wildcard_head(pattern: Syntax) -> Syntax:
    """Replace a pattern's leading element (the macro keyword) with ``_``."""
    if not pattern.is_pair():
        return pattern
    datum = pattern.datum
    head = datum.car
    head_stx = head if isinstance(head, Syntax) else datum_to_syntax(head)
    wildcard = Syntax(Symbol("_"), head_stx.srcloc, head_stx.scopes)
    return Syntax(Pair(wildcard, datum.cdr), pattern.srcloc, pattern.scopes)


def _retag(stx: Syntax, tag: str, inner: Syntax) -> Syntax:
    return Syntax(
        Pair(Syntax(Symbol(tag), stx.srcloc, stx.scopes), Pair(inner, NIL)),
        stx.srcloc,
        stx.scopes,
    )


def _pattern_identifier_occurrences(
    pattern: Syntax, names: set[str]
) -> dict[str, Syntax]:
    """First syntax occurrence of each pattern-variable name in a pattern."""
    found: dict[str, Syntax] = {}

    def walk(stx: object) -> None:
        if isinstance(stx, Syntax):
            datum = stx.datum
            if isinstance(datum, Symbol):
                if datum.name in names and datum.name not in found:
                    found[datum.name] = stx
                return
            walk(datum)
            return
        if isinstance(stx, Pair):
            node: object = stx
            while isinstance(node, Pair):
                walk(node.car)
                node = node.cdr
            if node is not NIL:
                walk(node)
            return
        if isinstance(stx, SchemeVector):
            for item in stx:
                walk(item)

    walk(pattern)
    return found
