r"""Syntax template instantiation (``#'``, ``#\```, ``#,``, ``#,@``).

A template is a syntax object in which

* pattern variables (bound by an enclosing ``syntax-case`` match) are
  replaced by their match values,
* ``(t ...)`` repeats ``t`` once per element of the pattern variables inside
  ``t`` that were matched under an ellipsis ("driving" variables),
* ``(... t)`` escapes: produces ``t`` literally, with ellipses uninterpreted,
* *holes* — produced by the expander for ``#,e`` and ``#,@e`` inside
  quasisyntax — are replaced by (resp. spliced from) run-time computed
  values.

Instantiation is driven by an environment mapping variable names to
``(remaining-depth, value)`` pairs; values at depth *n* are nested lists of
syntax, matching :mod:`repro.scheme.patterns`' match values.
"""

from __future__ import annotations

from repro.core.errors import TemplateError
from repro.scheme.datum import NIL, Pair, SchemeVector, Symbol
from repro.scheme.syntax import Syntax, datum_to_syntax

__all__ = ["Splice", "instantiate_template", "template_variables"]

ELLIPSIS = "..."


class Splice:
    """Wrapper marking a hole value that splices into the enclosing list."""

    __slots__ = ("items",)

    def __init__(self, items: list) -> None:
        self.items = items


def _unwrap(stx: object) -> object:
    return stx.datum if isinstance(stx, Syntax) else stx


def _as_syntax(obj: object, like: Syntax | None = None) -> Syntax:
    if isinstance(obj, Syntax):
        return obj
    return datum_to_syntax(obj, context=like)


def _spine(stx: object) -> tuple[list[object], object]:
    items: list[object] = []
    node = _unwrap(stx)
    while isinstance(node, Pair):
        items.append(node.car)
        node = node.cdr
        if isinstance(node, Syntax):
            inner = node.datum
            if isinstance(inner, Pair) or inner is NIL:
                node = inner
            else:
                return items, node
    return items, node


def _is_ellipsis(stx: object) -> bool:
    datum = _unwrap(stx)
    return isinstance(datum, Symbol) and datum.name == ELLIPSIS


def template_variables(template: Syntax, env: dict[str, tuple[int, object]]) -> set[str]:
    """The environment variables that occur in ``template``."""
    found: set[str] = set()
    _walk_variables(template, env, found)
    return found


def _walk_variables(
    template: object, env: dict[str, tuple[int, object]], found: set[str]
) -> None:
    datum = _unwrap(template)
    if isinstance(datum, Symbol):
        if datum.name in env:
            found.add(datum.name)
        return
    if isinstance(datum, Pair):
        items, tail = _spine(template)
        for item in items:
            _walk_variables(item, env, found)
        if tail is not NIL:
            _walk_variables(tail, env, found)
        return
    if isinstance(datum, SchemeVector):
        for item in datum:
            _walk_variables(item, env, found)


def instantiate_template(
    template: Syntax, env: dict[str, tuple[int, object]]
) -> Syntax:
    """Instantiate ``template`` under ``env`` (name -> (depth, value))."""
    result = _instantiate(template, env)
    if isinstance(result, Splice):
        raise TemplateError("splicing hole used outside a list template")
    return _as_syntax(result, like=template)


def _instantiate(template: object, env: dict[str, tuple[int, object]]) -> object:
    stx = _as_syntax(template)
    datum = stx.datum

    if isinstance(datum, Symbol):
        entry = env.get(datum.name)
        if entry is None:
            return stx  # literal identifier: keep template's scopes/srcloc
        depth, value = entry
        if depth != 0:
            raise TemplateError(
                f"pattern variable {datum.name!r} used at ellipsis depth 0 "
                f"but matched at depth {depth} (at {stx.srcloc})"
            )
        if isinstance(value, Splice):
            return value
        return _as_syntax(value, like=stx)

    if isinstance(datum, Pair):
        items, tail = _spine(stx)
        # (... t) escape: t instantiated with ellipses treated literally.
        if len(items) == 2 and tail is NIL and _is_ellipsis(items[0]):
            return _instantiate_literal(items[1])
        return _instantiate_list(stx, items, tail, env)

    if isinstance(datum, SchemeVector):
        fake_items = list(datum.items)
        out = _instantiate_elements(fake_items, env, stx)
        return Syntax(SchemeVector(out), stx.srcloc, stx.scopes, stx.explicit_point)

    return stx  # self-evaluating atom


def _instantiate_literal(template: object) -> Syntax:
    """The body of a (... t) escape: returned as-is."""
    return _as_syntax(template)


def _instantiate_elements(
    items: list[object], env: dict[str, tuple[int, object]], context: Syntax
) -> list[object]:
    """Instantiate a sequence of template elements, handling ellipses and
    splices, returning the flat list of output elements."""
    out: list[object] = []
    i = 0
    while i < len(items):
        item = items[i]
        n_ellipses = 0
        j = i + 1
        while j < len(items) and _is_ellipsis(items[j]):
            n_ellipses += 1
            j += 1
        if n_ellipses == 0:
            value = _instantiate(item, env)
            if isinstance(value, Splice):
                out.extend(_as_syntax(v) for v in value.items)
            else:
                out.append(value)
            i += 1
            continue
        expanded = _expand_ellipsis(item, env, n_ellipses, context)
        out.extend(expanded)
        i = j
    return out


def _expand_ellipsis(
    item: object,
    env: dict[str, tuple[int, object]],
    n_ellipses: int,
    context: Syntax,
) -> list[object]:
    """Expand ``item ...`` (with ``n_ellipses`` trailing ellipses)."""
    item_stx = _as_syntax(item)
    drivers = [
        name
        for name in template_variables(item_stx, env)
        if env[name][0] > 0
    ]
    if not drivers:
        raise TemplateError(
            f"ellipsis template contains no pattern variable matched under "
            f"an ellipsis (at {item_stx.srcloc})"
        )
    lengths = set()
    for name in drivers:
        _, value = env[name]
        if not isinstance(value, list):
            raise TemplateError(
                f"pattern variable {name!r} has no repetition to drive an "
                f"ellipsis (at {item_stx.srcloc})"
            )
        lengths.add(len(value))
    if len(lengths) > 1:
        raise TemplateError(
            f"ellipsis pattern variables have mismatched lengths {sorted(lengths)} "
            f"(at {item_stx.srcloc})"
        )
    (n,) = lengths or {0}
    results: list[object] = []
    for k in range(n):
        sub_env = dict(env)
        for name in drivers:
            depth, value = env[name]
            sub_env[name] = (depth - 1, value[k])
        if n_ellipses == 1:
            value = _instantiate(item_stx, sub_env)
            if isinstance(value, Splice):
                results.extend(_as_syntax(v) for v in value.items)
            else:
                results.append(value)
        else:
            # (t ... ...): flatten one extra level per additional ellipsis.
            results.extend(
                _expand_ellipsis(item_stx, sub_env, n_ellipses - 1, context)
            )
    return results


def _instantiate_list(
    stx: Syntax,
    items: list[object],
    tail: object,
    env: dict[str, tuple[int, object]],
) -> Syntax:
    out = _instantiate_elements(items, env, stx)
    if tail is NIL:
        new_tail: object = NIL
    else:
        tail_value = _instantiate(tail, env)
        if isinstance(tail_value, Splice):
            raise TemplateError("splicing hole cannot appear as a dotted tail")
        new_tail = tail_value
    datum: object = new_tail
    for item in reversed(out):
        datum = Pair(item, datum)
    return Syntax(datum, stx.srcloc, stx.scopes, stx.explicit_point)
