"""Core-AST simplification: immediate beta contraction.

Source-level inlining (the §6.2 PIC, the ``define-inlinable`` extension)
produces beta-redexes — ``((lambda (x) body) arg)``. In Chez Scheme the
backend contracts these for free; our substrate is an interpreter, so this
module supplies the missing pass: an opt-in rewrite that substitutes
*simple* arguments (constants and variable references) into the body and
deletes the redex.

Soundness conditions, checked conservatively:

* the lambda has no rest parameter and arity matches exactly;
* every argument is a ``Const`` or ``Ref`` (no effects, no recomputation
  concerns — evaluation order becomes irrelevant);
* the body contains **no** ``set!`` and **no** nested ``lambda``: this
  rules out both mutation of substituted variables and closures that could
  capture-and-outlive them. (Unique post-expansion names already rule out
  shadowing.)

Note the profile-point caveat: contraction deletes the application node —
and with it any profile point ``annotate-expr`` placed on the redex. That
is why the pass is opt-in and run only on final, post-PGMP builds (the
same reason the paper's three-pass protocol orders source-level PGO before
block-level).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.scheme.core_forms import (
    App,
    Begin,
    Const,
    CoreExpr,
    Define,
    If,
    Lambda,
    Program,
    Ref,
    SetBang,
    SyntaxCaseExpr,
    TemplateExpr,
)
from repro.scheme.datum import Symbol

__all__ = ["contract_betas", "ContractionReport"]


@dataclass
class ContractionReport:
    """How many redexes the pass contracted."""

    contracted: int = 0
    considered: int = 0


def contract_betas(program: Program) -> tuple[Program, ContractionReport]:
    """Contract immediate beta-redexes throughout a program."""
    report = ContractionReport()
    forms = [_walk(form, report) for form in program.forms]
    return Program(forms), report


def _walk(expr: CoreExpr, report: ContractionReport) -> CoreExpr:
    if isinstance(expr, (Const, Ref)):
        return expr
    if isinstance(expr, Define):
        return Define(expr.stx, expr.unique, _walk(expr.expr, report), expr.source_name)
    if isinstance(expr, SetBang):
        return SetBang(expr.stx, expr.unique, _walk(expr.expr, report), expr.source_name)
    if isinstance(expr, If):
        return If(
            expr.stx,
            _walk(expr.test, report),
            _walk(expr.then, report),
            _walk(expr.otherwise, report),
        )
    if isinstance(expr, Begin):
        return Begin(expr.stx, [_walk(e, report) for e in expr.exprs])
    if isinstance(expr, Lambda):
        return Lambda(
            expr.stx,
            expr.params,
            expr.rest,
            [_walk(e, report) for e in expr.body],
            expr.name,
            expr.param_names,
        )
    if isinstance(expr, App):
        fn = _walk(expr.fn, report)
        args = [_walk(arg, report) for arg in expr.args]
        if isinstance(fn, Lambda):
            report.considered += 1
            contracted = _try_contract(fn, args)
            if contracted is not None:
                report.contracted += 1
                # The contracted body may expose further redexes.
                return _walk(contracted, report)
        return App(expr.stx, fn, args)
    if isinstance(expr, (SyntaxCaseExpr, TemplateExpr)):
        return expr  # expand-time forms: leave untouched
    raise TypeError(f"cannot simplify {type(expr).__name__}")


def _try_contract(fn: Lambda, args: list[CoreExpr]) -> CoreExpr | None:
    if fn.rest is not None or len(args) != len(fn.params):
        return None
    if not all(isinstance(arg, (Const, Ref)) for arg in args):
        return None
    if any(_impure_for_substitution(e) for e in fn.body):
        return None
    substitution = dict(zip(fn.params, args))
    body = [_substitute(e, substitution) for e in fn.body]
    if len(body) == 1:
        return body[0]
    return Begin(fn.stx, body)


def _impure_for_substitution(expr: CoreExpr) -> bool:
    """True if the body may mutate or capture substituted variables."""
    if isinstance(expr, (SetBang, Lambda)):
        return True
    if isinstance(expr, (Const, Ref)):
        return False
    if isinstance(expr, If):
        return (
            _impure_for_substitution(expr.test)
            or _impure_for_substitution(expr.then)
            or _impure_for_substitution(expr.otherwise)
        )
    if isinstance(expr, Begin):
        return any(_impure_for_substitution(e) for e in expr.exprs)
    if isinstance(expr, App):
        return _impure_for_substitution(expr.fn) or any(
            _impure_for_substitution(a) for a in expr.args
        )
    return True  # anything exotic: refuse


def _substitute(expr: CoreExpr, sub: dict[Symbol, CoreExpr]) -> CoreExpr:
    if isinstance(expr, Ref):
        replacement = sub.get(expr.unique)
        return replacement if replacement is not None else expr
    if isinstance(expr, Const):
        return expr
    if isinstance(expr, If):
        return If(
            expr.stx,
            _substitute(expr.test, sub),
            _substitute(expr.then, sub),
            _substitute(expr.otherwise, sub),
        )
    if isinstance(expr, Begin):
        return Begin(expr.stx, [_substitute(e, sub) for e in expr.exprs])
    if isinstance(expr, App):
        return App(
            expr.stx,
            _substitute(expr.fn, sub),
            [_substitute(a, sub) for a in expr.args],
        )
    raise TypeError(f"substitution reached unexpected node {type(expr).__name__}")
