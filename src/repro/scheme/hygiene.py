"""Hygiene via sets of scopes.

The expander implements hygiene with a simplified *sets of scopes* model
(Flatt, POPL 2016 — the model behind Racket's expander, and a close cousin
of the marks/substitutions algorithm in Chez's ``syntax-case`` [12]):

* every syntax object carries a set of scopes (:class:`frozenset` of ints);
* every binding form (``lambda``, ``let``, internal ``define`` …) creates a
  fresh scope, adds it to the binding's body, and records the bound
  identifier *with its full scope set* in a global binding table;
* every macro expansion creates a fresh *introduction scope* that is flipped
  on the macro's input before expansion and on its output after, so
  macro-introduced identifiers carry a scope user code lacks (and vice
  versa) — the classic hygiene guarantee;
* an identifier reference resolves to the binding whose recorded scope set
  is the largest subset of the reference's scope set.

The binding table maps to :class:`Binding` values that tell the expander
what an identifier *means*: a run-time variable (with its unique resolved
name), a macro transformer, or a core form.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.core.errors import ExpandError
from repro.scheme.datum import Symbol, gensym
from repro.scheme.syntax import Syntax

__all__ = [
    "ScopeCounter",
    "Binding",
    "VariableBinding",
    "MacroBinding",
    "CoreBinding",
    "PatternBinding",
    "BindingTable",
]


class ScopeCounter:
    """Allocator of fresh scope identifiers."""

    def __init__(self) -> None:
        self._counter = itertools.count(1)

    def fresh(self) -> int:
        return next(self._counter)


class Binding:
    """What an identifier denotes. Subclasses carry the payload."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class VariableBinding(Binding):
    """A run-time variable; ``unique`` is its post-expansion name."""

    unique: Symbol
    mutable: bool = True


@dataclass(frozen=True, slots=True)
class CoreBinding(Binding):
    """A core form (``lambda``, ``if``, ``quote`` …) or built-in macro."""

    name: str


@dataclass(frozen=True, slots=True)
class MacroBinding(Binding):
    """A user macro: ``transformer`` maps one syntax object to another.

    The transformer is an expand-time value — either a Python callable or a
    Scheme closure applied through the expand-time interpreter.
    """

    transformer: object
    name: str = "macro"

    def __eq__(self, other: object) -> bool:
        return self is other

    def __hash__(self) -> int:
        return id(self)


@dataclass(frozen=True, slots=True)
class PatternBinding(Binding):
    """A ``syntax-case`` pattern variable, usable only inside templates.

    ``unique`` names the expand-time runtime slot holding the match value;
    ``depth`` is the ellipsis depth the variable was matched at.
    """

    unique: Symbol
    depth: int


@dataclass
class _Entry:
    scopes: frozenset[int]
    binding: Binding


class BindingTable:
    """The global identifier-resolution table."""

    def __init__(self) -> None:
        self._entries: dict[Symbol, list[_Entry]] = {}

    def add(self, name: Symbol, scopes: frozenset[int], binding: Binding) -> None:
        """Record that ``name`` with exactly ``scopes`` denotes ``binding``."""
        bucket = self._entries.setdefault(name, [])
        for entry in bucket:
            if entry.scopes == scopes:
                # Redefinition at the same scopes (e.g. top-level redefine).
                entry.binding = binding
                return
        bucket.append(_Entry(scopes, binding))

    def bind_variable(
        self, identifier: Syntax, mutable: bool = True
    ) -> Symbol:
        """Bind ``identifier`` as a fresh run-time variable; return its
        unique post-expansion name."""
        name = identifier.datum
        assert isinstance(name, Symbol)
        unique = gensym(name.name)
        self.add(name, identifier.scopes, VariableBinding(unique, mutable))
        return unique

    def resolve(self, identifier: Syntax) -> Binding | None:
        """Resolve a reference: the binding whose scope set is the largest
        subset of the reference's scopes, or None when unbound.

        Raises :class:`ExpandError` when two candidate bindings are maximal
        but incomparable (genuinely ambiguous references).
        """
        name = identifier.datum
        assert isinstance(name, Symbol), f"resolve on non-identifier {identifier!r}"
        bucket = self._entries.get(name)
        if not bucket:
            return None
        ref_scopes = identifier.scopes
        best: _Entry | None = None
        for entry in bucket:
            if not entry.scopes <= ref_scopes:
                continue
            if best is None or best.scopes < entry.scopes:
                best = entry
            elif not (entry.scopes <= best.scopes):
                # entry not ⊆ best and best not < entry: incomparable maxima.
                if len(entry.scopes) >= len(best.scopes):
                    raise ExpandError(
                        f"ambiguous reference to {name.name!r} at {identifier.srcloc}"
                    )
        return best.binding if best else None

    def bound_names(self) -> list[Symbol]:
        return list(self._entries)
