"""The fully-expanded core language.

The expander (:mod:`repro.scheme.expander`) lowers all surface syntax —
macros, ``let`` variants, ``cond``, quasiquote, … — into this small typed
AST. Identifiers have been resolved: every variable is a *unique* symbol
(locals are gensymmed; top-level variables keep their source name), so the
interpreter and the block compiler need no scope information.

Each node retains the :class:`~repro.scheme.syntax.Syntax` it was expanded
from, which carries the source location and (crucially) the profile point
that instrumentation uses. Meta-programs have already run by the time this
AST exists — profile-guided decisions are frozen into its shape.

``SyntaxCaseExpr`` and ``TemplateExpr`` make ``syntax-case`` and syntax
templates first-class core forms so that *transformers themselves* are
compiled and executed by the same interpreter (the substrate is
meta-circular in the same way Chez and Racket are).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.profile_point import ProfilePoint
from repro.scheme.datum import NIL, Pair, SchemeVector, Symbol, scheme_list
from repro.scheme.syntax import Syntax

__all__ = [
    "CoreExpr",
    "Const",
    "Ref",
    "SetBang",
    "If",
    "Lambda",
    "Begin",
    "App",
    "Define",
    "Program",
    "SyntaxCaseExpr",
    "SyntaxCaseClause",
    "TemplateExpr",
    "unparse",
    "unparse_string",
]


@dataclass(slots=True)
class CoreExpr:
    """Base class; ``stx`` links back to the source expression."""

    stx: Syntax | None

    @property
    def profile_point(self) -> ProfilePoint | None:
        """The profile point instrumented execution of this node bumps."""
        return self.stx.profile_point if self.stx is not None else None


@dataclass(slots=True)
class Const(CoreExpr):
    """A self-evaluating constant or ``quote``d datum."""

    value: object


@dataclass(slots=True)
class Ref(CoreExpr):
    """A variable reference, fully resolved to its unique name."""

    unique: Symbol
    source_name: str = ""


@dataclass(slots=True)
class SetBang(CoreExpr):
    unique: Symbol
    expr: "CoreExpr"
    source_name: str = ""


@dataclass(slots=True)
class If(CoreExpr):
    test: "CoreExpr"
    then: "CoreExpr"
    otherwise: "CoreExpr"


@dataclass(slots=True)
class Lambda(CoreExpr):
    params: list[Symbol]
    rest: Symbol | None
    body: list["CoreExpr"]
    name: str = "lambda"
    param_names: list[str] = field(default_factory=list)


@dataclass(slots=True)
class Begin(CoreExpr):
    exprs: list["CoreExpr"]


@dataclass(slots=True)
class App(CoreExpr):
    fn: "CoreExpr"
    args: list["CoreExpr"]


@dataclass(slots=True)
class Define(CoreExpr):
    """Top-level definition (internal defines are lowered into lambda bodies)."""

    unique: Symbol
    expr: "CoreExpr"
    source_name: str = ""


@dataclass(slots=True)
class SyntaxCaseClause:
    pattern: Syntax
    #: pattern-variable name -> (unique runtime slot, ellipsis depth)
    pvars: dict[str, tuple[Symbol, int]]
    fender: CoreExpr | None
    body: CoreExpr


@dataclass(slots=True)
class SyntaxCaseExpr(CoreExpr):
    """``(syntax-case subject (literals...) clause...)`` as a core form."""

    subject: "CoreExpr"
    literals: frozenset[str]
    clauses: list[SyntaxCaseClause]


@dataclass(slots=True)
class TemplateExpr(CoreExpr):
    """``(syntax template)`` / ``(quasisyntax template)`` as a core form.

    ``pvars`` maps template variable names to their runtime slots and
    depths; ``holes`` maps hole names (substituted into the template for
    ``#,e`` / ``#,@e``) to the compiled expression and a splicing flag.
    """

    template: Syntax
    pvars: dict[str, tuple[Symbol, int]]
    holes: dict[str, tuple["CoreExpr", bool]]


@dataclass(slots=True)
class Program:
    """A fully-expanded top-level program."""

    forms: list[CoreExpr]
    #: per-flavor compiled artifacts, attached lazily by the Python backend
    #: (:mod:`repro.scheme.compile_py`); excluded from equality because two
    #: programs with the same forms *are* the same program.
    artifacts: dict = field(default_factory=dict, compare=False, repr=False)


# -- unparsing (for tests, figures, and the CLI's `expand` command) -----------


def _pretty_symbol(sym: Symbol, pretty: bool) -> Symbol:
    if pretty and "%" in sym.name:
        return Symbol(sym.name.split("%", 1)[0])
    return sym


def unparse(expr: CoreExpr | Program, pretty: bool = True) -> object:
    """Convert core AST back to a datum (for printing / golden tests).

    With ``pretty=True``, gensymmed unique names are shown with their source
    base name (``t%42`` prints as ``t``), matching the paper's figures.
    """
    if isinstance(expr, Program):
        return scheme_list(*[unparse(form, pretty) for form in expr.forms])
    if isinstance(expr, Const):
        value = expr.value
        if isinstance(value, (Pair, Symbol, SchemeVector)) or value is NIL:
            return scheme_list(Symbol("quote"), value)
        return value
    if isinstance(expr, Ref):
        return _pretty_symbol(expr.unique, pretty)
    if isinstance(expr, SetBang):
        return scheme_list(
            Symbol("set!"), _pretty_symbol(expr.unique, pretty), unparse(expr.expr, pretty)
        )
    if isinstance(expr, If):
        return scheme_list(
            Symbol("if"),
            unparse(expr.test, pretty),
            unparse(expr.then, pretty),
            unparse(expr.otherwise, pretty),
        )
    if isinstance(expr, Lambda):
        params: object = scheme_list(*[_pretty_symbol(p, pretty) for p in expr.params])
        if expr.rest is not None:
            params = scheme_list(
                *[_pretty_symbol(p, pretty) for p in expr.params],
                tail=_pretty_symbol(expr.rest, pretty),
            )
        return scheme_list(
            Symbol("lambda"), params, *[unparse(b, pretty) for b in expr.body]
        )
    if isinstance(expr, Begin):
        return scheme_list(Symbol("begin"), *[unparse(e, pretty) for e in expr.exprs])
    if isinstance(expr, App):
        return scheme_list(
            unparse(expr.fn, pretty), *[unparse(a, pretty) for a in expr.args]
        )
    if isinstance(expr, Define):
        return scheme_list(
            Symbol("define"),
            _pretty_symbol(expr.unique, pretty),
            unparse(expr.expr, pretty),
        )
    if isinstance(expr, SyntaxCaseExpr):
        clauses = []
        for clause in expr.clauses:
            from repro.scheme.syntax import syntax_to_datum

            items = [syntax_to_datum(clause.pattern)]
            if clause.fender is not None:
                items.append(unparse(clause.fender, pretty))
            items.append(unparse(clause.body, pretty))
            clauses.append(scheme_list(*items))
        lits = scheme_list(*[Symbol(name) for name in sorted(expr.literals)])
        return scheme_list(
            Symbol("syntax-case"), unparse(expr.subject, pretty), lits, *clauses
        )
    if isinstance(expr, TemplateExpr):
        from repro.scheme.syntax import syntax_to_datum

        return scheme_list(Symbol("syntax"), syntax_to_datum(expr.template))
    raise TypeError(f"cannot unparse {type(expr).__name__}")


def unparse_string(expr: CoreExpr | Program, pretty: bool = True) -> str:
    from repro.scheme.datum import write_datum

    if isinstance(expr, Program):
        return "\n".join(write_datum(unparse(f, pretty)) for f in expr.forms)
    return write_datum(unparse(expr, pretty))
