"""The Scheme substrate: reader, hygienic macro expander, interpreter,
expression-level profiler — the reproduction's analogue of Chez Scheme
(Section 4.1) and, in call-profiling mode, of Racket + errortrace
(Section 4.2).
"""

from repro.scheme.datum import (
    EOF_OBJECT,
    NIL,
    UNSPECIFIED,
    Char,
    Pair,
    SchemeVector,
    Symbol,
    display_datum,
    gensym,
    pylist_from_scheme,
    scheme_list,
    write_datum,
)
from repro.scheme.expander import Expander
from repro.scheme.instrument import Instrumenter, ProfileMode
from repro.scheme.interpreter import Closure, Interpreter, apply_procedure
from repro.scheme.pipeline import RunResult, SchemeSystem
from repro.scheme.primitives import make_expand_env, make_global_env
from repro.scheme.reader import read_file, read_one, read_string
from repro.scheme.syntax import Syntax, datum_to_syntax, syntax_to_datum

__all__ = [
    "Char",
    "Closure",
    "EOF_OBJECT",
    "Expander",
    "Instrumenter",
    "Interpreter",
    "NIL",
    "Pair",
    "ProfileMode",
    "RunResult",
    "SchemeSystem",
    "SchemeVector",
    "Symbol",
    "Syntax",
    "UNSPECIFIED",
    "apply_procedure",
    "datum_to_syntax",
    "display_datum",
    "gensym",
    "make_expand_env",
    "make_global_env",
    "pylist_from_scheme",
    "read_file",
    "read_one",
    "read_string",
    "scheme_list",
    "syntax_to_datum",
    "write_datum",
]
