"""``syntax-case`` pattern matching.

A pattern is itself a syntax object. The matcher supports the full core of
R6RS/Chez ``syntax-case`` patterns:

* ``_`` — wildcard, matches anything, binds nothing;
* literal identifiers (declared in the literals list) — match an identifier
  with the same name;
* any other identifier — a *pattern variable*, matching anything and binding
  it at the current ellipsis depth;
* ``(p ...)``, ``(p ... q r)``, ``(p ... . tail)`` — ellipsis patterns with
  any number of trailing subpatterns and an optional dotted tail;
* ``(p . q)`` — pairs, including improper lists;
* ``#(p ...)`` — vector patterns;
* self-evaluating atoms — match ``equal?``-equal data.

Match results bind pattern-variable names to *match values*: a syntax object
at ellipsis depth 0, a list of match values at depth *n + 1*. The template
engine (:mod:`repro.scheme.template`) consumes the same representation.
"""

from __future__ import annotations

from fractions import Fraction

from repro.core.errors import PatternError
from repro.scheme.datum import NIL, Char, Pair, SchemeVector, Symbol
from repro.scheme.syntax import Syntax, datum_to_syntax

__all__ = [
    "ELLIPSIS",
    "WILDCARD",
    "pattern_variables",
    "match_pattern",
    "MatchValue",
]

ELLIPSIS = "..."
WILDCARD = "_"

#: depth 0: Syntax; depth n+1: list of values at depth n.
MatchValue = object


def _unwrap(stx: object) -> object:
    """One-level unwrap: the datum under a syntax wrapper (or the raw datum)."""
    return stx.datum if isinstance(stx, Syntax) else stx


def _as_syntax(obj: object, like: Syntax | None = None) -> Syntax:
    if isinstance(obj, Syntax):
        return obj
    return datum_to_syntax(obj, context=like)


def _spine(stx: object) -> tuple[list[Syntax], object]:
    """Split a (possibly improper, possibly syntax-wrapped) list into its
    element syntaxes and its tail (NIL or a non-pair terminal)."""
    items: list[Syntax] = []
    node = _unwrap(stx)
    while isinstance(node, Pair):
        items.append(_as_syntax(node.car))
        node = node.cdr
        if isinstance(node, Syntax):
            inner = node.datum
            if isinstance(inner, Pair) or inner is NIL:
                node = inner
            else:
                return items, node  # syntax-wrapped dotted terminal
    return items, node


def pattern_variables(
    pattern: Syntax, literals: frozenset[str] | set[str], depth: int = 0
) -> dict[str, int]:
    """The pattern variables of ``pattern`` with their ellipsis depths.

    Raises :class:`PatternError` on duplicate variables or misplaced
    ellipses.
    """
    found: dict[str, int] = {}
    _collect_variables(pattern, frozenset(literals), depth, found)
    return found


def _collect_variables(
    pattern: Syntax, literals: frozenset[str], depth: int, found: dict[str, int]
) -> None:
    datum = _unwrap(pattern)
    if isinstance(datum, Symbol):
        name = datum.name
        if name in (ELLIPSIS,):
            raise PatternError(f"misplaced ellipsis in pattern at {pattern.srcloc}")
        if name == WILDCARD or name in literals:
            return
        if name in found:
            raise PatternError(
                f"duplicate pattern variable {name!r} at {pattern.srcloc}"
            )
        found[name] = depth
        return
    if isinstance(datum, Pair) or datum is NIL:
        elements, tail = _spine(pattern)
        i = 0
        while i < len(elements):
            nxt = elements[i + 1] if i + 1 < len(elements) else None
            if nxt is not None and _is_ellipsis(nxt):
                _collect_variables(elements[i], literals, depth + 1, found)
                i += 2
                # multiple consecutive ellipses deepen further (rare; allow)
                while i < len(elements) and _is_ellipsis(elements[i]):
                    raise PatternError(
                        f"nested ellipsis after ellipsis unsupported in pattern "
                        f"at {elements[i].srcloc}"
                    )
            else:
                if _is_ellipsis(elements[i]):
                    raise PatternError(
                        f"misplaced ellipsis in pattern at {elements[i].srcloc}"
                    )
                _collect_variables(elements[i], literals, depth, found)
                i += 1
        if tail is not NIL:
            _collect_variables(_as_syntax(tail), literals, depth, found)
        return
    if isinstance(datum, SchemeVector):
        fake = datum_to_syntax(_vector_to_list(datum), context=pattern)
        _collect_variables(fake, literals, depth, found)
        return
    # self-evaluating atom: no variables


def _vector_to_list(vec: SchemeVector) -> object:
    lst: object = NIL
    for item in reversed(vec.items):
        lst = Pair(item, lst)
    return lst


def _is_ellipsis(stx: object) -> bool:
    datum = _unwrap(stx)
    return isinstance(datum, Symbol) and datum.name == ELLIPSIS


def _is_wildcard(datum: object) -> bool:
    return isinstance(datum, Symbol) and datum.name == WILDCARD


def match_pattern(
    pattern: Syntax,
    stx: object,
    literals: frozenset[str] | set[str] = frozenset(),
) -> dict[str, MatchValue] | None:
    """Match ``stx`` against ``pattern``; bindings dict or None on failure."""
    bindings: dict[str, MatchValue] = {}
    if _match(pattern, stx, frozenset(literals), bindings):
        return bindings
    return None


def _match(
    pattern: Syntax,
    stx: object,
    literals: frozenset[str],
    bindings: dict[str, MatchValue],
) -> bool:
    pdatum = _unwrap(pattern)

    if isinstance(pdatum, Symbol):
        name = pdatum.name
        if name == WILDCARD:
            return True
        if name in literals:
            sdatum = _unwrap(stx)
            return isinstance(sdatum, Symbol) and sdatum.name == name
        bindings[name] = _as_syntax(stx)
        return True

    if pdatum is NIL:
        return _unwrap(stx) is NIL

    if isinstance(pdatum, Pair):
        return _match_list(pattern, stx, literals, bindings)

    if isinstance(pdatum, SchemeVector):
        sdatum = _unwrap(stx)
        if not isinstance(sdatum, SchemeVector):
            return False
        p_list = datum_to_syntax(_vector_to_list(pdatum), context=pattern)
        s_list = datum_to_syntax(_vector_to_list(sdatum))
        return _match(p_list, s_list, literals, bindings)

    # self-evaluating atom
    sdatum = _unwrap(stx)
    if isinstance(pdatum, bool) or isinstance(sdatum, bool):
        return pdatum is sdatum
    if isinstance(pdatum, (int, float, Fraction)) and isinstance(
        sdatum, (int, float, Fraction)
    ):
        return pdatum == sdatum
    if isinstance(pdatum, str) and isinstance(sdatum, str):
        return pdatum == sdatum
    if isinstance(pdatum, Char) and isinstance(sdatum, Char):
        return pdatum == sdatum
    return False


def _match_list(
    pattern: Syntax,
    stx: object,
    literals: frozenset[str],
    bindings: dict[str, MatchValue],
) -> bool:
    p_items, p_tail = _spine(pattern)
    s_items, s_tail = _spine(stx)

    # Locate an ellipsis (at most one per list level).
    ell_index: int | None = None
    for i, item in enumerate(p_items):
        if _is_ellipsis(item):
            if i == 0:
                raise PatternError(
                    f"ellipsis with no preceding pattern at {item.srcloc}"
                )
            if ell_index is not None:
                raise PatternError(
                    f"multiple ellipses at one list level at {item.srcloc}"
                )
            ell_index = i

    if ell_index is None:
        if p_tail is NIL:
            if len(p_items) != len(s_items):
                return False
            for p, s in zip(p_items, s_items):
                if not _match(p, s, literals, bindings):
                    return False
            return s_tail is NIL
        # Dotted pattern (p1 ... pk . tail): tail matches the *rest* of the
        # input, which may include further list structure.
        if len(s_items) < len(p_items):
            return False
        for p, s in zip(p_items, s_items):
            if not _match(p, s, literals, bindings):
                return False
        rest = _rebuild_list(s_items[len(p_items) :], s_tail)
        return _match(_as_syntax(p_tail), rest, literals, bindings)

    rep_pattern = p_items[ell_index - 1]
    before = p_items[: ell_index - 1]
    after = p_items[ell_index + 1 :]

    if len(s_items) < len(before) + len(after):
        return False

    for p, s in zip(before, s_items):
        if not _match(p, s, literals, bindings):
            return False

    n_rep = len(s_items) - len(before) - len(after)
    rep_inputs = s_items[len(before) : len(before) + n_rep]
    after_inputs = s_items[len(before) + n_rep :]

    rep_vars = pattern_variables(rep_pattern, literals)
    collected: dict[str, list[MatchValue]] = {name: [] for name in rep_vars}
    for s in rep_inputs:
        sub: dict[str, MatchValue] = {}
        if not _match(rep_pattern, s, literals, sub):
            return False
        for name in rep_vars:
            collected[name].append(sub[name])
    for name, values in collected.items():
        bindings[name] = values

    for p, s in zip(after, after_inputs):
        if not _match(p, s, literals, bindings):
            return False
    return _match_tail(p_tail, s_tail, literals, bindings)


def _rebuild_list(items: list[Syntax], tail: object) -> Syntax:
    """Reassemble a (possibly improper) syntax list from spine parts."""
    result: object = tail if tail is not NIL else NIL
    for item in reversed(items):
        result = Pair(item, result)
    return _as_syntax(result)


def _match_tail(
    p_tail: object,
    s_tail: object,
    literals: frozenset[str],
    bindings: dict[str, MatchValue],
) -> bool:
    if p_tail is NIL:
        return s_tail is NIL
    # Dotted pattern tail: match whatever remains (including NIL).
    return _match(_as_syntax(p_tail), _as_syntax(s_tail), literals, bindings)
