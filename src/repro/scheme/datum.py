"""Scheme datum representation for the Scheme substrate.

The substrate models the value universe of a small Scheme:

===============  =======================================
Scheme type      Python representation
===============  =======================================
symbol           :class:`Symbol` (interned)
pair             :class:`Pair` (mutable cons cell)
empty list       :data:`NIL` (singleton)
boolean          ``bool``
number           ``int`` / ``float`` / ``fractions.Fraction``
string           ``str``
character        :class:`Char`
vector           :class:`SchemeVector`
unspecified      :data:`UNSPECIFIED` (result of ``set!`` etc.)
eof object       :data:`EOF_OBJECT`
procedure        Python callable or interpreter closure
===============  =======================================

The module also provides the external representations (``write`` and
``display`` styles) used by the printer primitives and by tests that compare
generated code against the paper's figures.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Iterator

__all__ = [
    "MultipleValues",
    "Symbol",
    "intern_symbol",
    "gensym",
    "Pair",
    "NIL",
    "Nil",
    "Char",
    "SchemeVector",
    "UNSPECIFIED",
    "Unspecified",
    "EOF_OBJECT",
    "scheme_list",
    "iter_pairs",
    "pylist_from_scheme",
    "is_scheme_list",
    "scheme_list_length",
    "write_datum",
    "display_datum",
]


class Symbol:
    """An interned Scheme symbol.

    Symbols with the same name are the same object, so identity comparison
    (`is` / ``eq?``) is name comparison. Construct via :func:`intern_symbol`
    (or ``Symbol(name)``, which interns transparently).
    """

    __slots__ = ("name",)
    _table: dict[str, "Symbol"] = {}

    def __new__(cls, name: str) -> "Symbol":
        existing = cls._table.get(name)
        if existing is not None:
            return existing
        sym = super().__new__(cls)
        sym.name = name
        cls._table[name] = sym
        return sym

    def __repr__(self) -> str:
        return self.name

    def __hash__(self) -> int:
        return hash(self.name)

    # Interned: default identity equality is correct. Defined explicitly so
    # the invariant survives pickling-style copying.
    def __eq__(self, other: object) -> bool:
        return self is other


def intern_symbol(name: str) -> Symbol:
    """The canonical :class:`Symbol` named ``name``."""
    return Symbol(name)


_GENSYM_COUNTER = 0


def gensym(prefix: str = "g") -> Symbol:
    """A symbol guaranteed distinct from any symbol read from source.

    The name contains a ``%`` which the reader rejects inside plain symbols,
    so collisions with user code are impossible.
    """
    global _GENSYM_COUNTER
    _GENSYM_COUNTER += 1
    return Symbol(f"{prefix}%{_GENSYM_COUNTER}")


class Nil:
    """The empty list. A singleton: use :data:`NIL`."""

    __slots__ = ()
    _instance: "Nil | None" = None

    def __new__(cls) -> "Nil":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "()"

    def __iter__(self) -> Iterator:
        return iter(())

    def __len__(self) -> int:
        return 0

    def __bool__(self) -> bool:
        # NIL is a true value in Scheme; only #f is false.
        return True


NIL = Nil()


class Pair:
    """A mutable cons cell."""

    __slots__ = ("car", "cdr")

    def __init__(self, car: object, cdr: object) -> None:
        self.car = car
        self.cdr = cdr

    def __repr__(self) -> str:
        return write_datum(self)

    def __eq__(self, other: object) -> bool:
        # Structural equality (Scheme equal?), iterative on the cdr spine to
        # tolerate long lists.
        if not isinstance(other, Pair):
            return NotImplemented
        a: object = self
        b: object = other
        while isinstance(a, Pair) and isinstance(b, Pair):
            if a.car != b.car:
                return False
            a = a.cdr
            b = b.cdr
        return a == b

    def __hash__(self):
        raise TypeError("Scheme pairs are mutable and unhashable")


class Char:
    """A Scheme character, distinct from a length-1 string."""

    __slots__ = ("value",)

    _NAMES = {
        " ": "space",
        "\t": "tab",
        "\n": "newline",
        "\r": "return",
        "\0": "nul",
        "\x7f": "delete",
        "\x1b": "esc",
        "\x08": "backspace",
        "\x0c": "page",
    }
    _BY_NAME = {name: ch for ch, name in _NAMES.items()}
    _BY_NAME["linefeed"] = "\n"
    _BY_NAME["altmode"] = "\x1b"
    _BY_NAME["rubout"] = "\x7f"

    def __init__(self, value: str) -> None:
        if len(value) != 1:
            raise ValueError(f"Char requires a single character, got {value!r}")
        self.value = value

    @classmethod
    def from_name(cls, name: str) -> "Char":
        if len(name) == 1:
            return cls(name)
        ch = cls._BY_NAME.get(name)
        if ch is None:
            raise ValueError(f"unknown character name: #\\{name}")
        return cls(ch)

    def external(self) -> str:
        name = self._NAMES.get(self.value)
        return f"#\\{name}" if name else f"#\\{self.value}"

    def __repr__(self) -> str:
        return self.external()

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Char) and self.value == other.value

    def __hash__(self) -> int:
        return hash(("Char", self.value))

    def __lt__(self, other: "Char") -> bool:
        return self.value < other.value


class SchemeVector:
    """A Scheme vector: fixed-length, mutable, O(1) indexed."""

    __slots__ = ("items",)

    def __init__(self, items: Iterable[object] = ()) -> None:
        self.items: list[object] = list(items)

    def __len__(self) -> int:
        return len(self.items)

    def __getitem__(self, index: int) -> object:
        return self.items[index]

    def __setitem__(self, index: int, value: object) -> None:
        self.items[index] = value

    def __iter__(self) -> Iterator[object]:
        return iter(self.items)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SchemeVector) and self.items == other.items

    def __hash__(self):
        raise TypeError("Scheme vectors are mutable and unhashable")

    def __repr__(self) -> str:
        return write_datum(self)


class MultipleValues:
    """Carrier for ``(values v ...)`` with zero or ≥2 values.

    Single-value ``(values x)`` returns ``x`` directly (the overwhelmingly
    common case costs nothing). Contexts that cannot accept multiple
    values simply see this object; only ``call-with-values`` unpacks it.
    """

    __slots__ = ("values",)

    def __init__(self, values: tuple) -> None:
        self.values = values

    def __repr__(self) -> str:
        return f"#<values {' '.join(write_datum(v) for v in self.values)}>"


class Unspecified:
    """The unspecified value returned by side-effecting forms."""

    __slots__ = ()
    _instance: "Unspecified | None" = None

    def __new__(cls) -> "Unspecified":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "#<void>"


UNSPECIFIED = Unspecified()


class _EofObject:
    __slots__ = ()

    def __repr__(self) -> str:
        return "#<eof>"


EOF_OBJECT = _EofObject()


# -- list helpers --------------------------------------------------------------


def scheme_list(*items: object, tail: object = NIL) -> object:
    """Build a Scheme list (optionally improper, via ``tail``)."""
    result = tail
    for item in reversed(items):
        result = Pair(item, result)
    return result


def iter_pairs(lst: object) -> Iterator[object]:
    """Yield the cars along the cdr spine of a proper list.

    Raises ``TypeError`` if the spine ends in anything but :data:`NIL`.
    """
    while isinstance(lst, Pair):
        yield lst.car
        lst = lst.cdr
    if lst is not NIL:
        raise TypeError(f"improper list (dotted tail {write_datum(lst)})")


def pylist_from_scheme(lst: object) -> list[object]:
    """The cars of a proper Scheme list as a Python list."""
    return list(iter_pairs(lst))


def is_scheme_list(obj: object) -> bool:
    """True for proper (NIL-terminated, acyclic) lists."""
    slow = obj
    fast = obj
    while isinstance(fast, Pair):
        fast = fast.cdr
        if not isinstance(fast, Pair):
            break
        fast = fast.cdr
        slow = slow.cdr  # type: ignore[union-attr]
        if fast is slow:
            return False  # cyclic
    return fast is NIL


def scheme_list_length(lst: object) -> int:
    """Length of a proper list (TypeError on improper lists)."""
    n = 0
    for _ in iter_pairs(lst):
        n += 1
    return n


# -- printers -------------------------------------------------------------------

_QUOTE_ABBREVS = {
    "quote": "'",
    "quasiquote": "`",
    "unquote": ",",
    "unquote-splicing": ",@",
    "syntax": "#'",
    "quasisyntax": "#`",
    "unsyntax": "#,",
    "unsyntax-splicing": "#,@",
}


def _string_external(s: str) -> str:
    out = ['"']
    for ch in s:
        if ch == '"':
            out.append('\\"')
        elif ch == "\\":
            out.append("\\\\")
        elif ch == "\n":
            out.append("\\n")
        elif ch == "\t":
            out.append("\\t")
        elif ch == "\r":
            out.append("\\r")
        else:
            out.append(ch)
    out.append('"')
    return "".join(out)


def _number_external(n: object) -> str:
    if isinstance(n, bool):  # bool is an int subtype; guard first
        return "#t" if n else "#f"
    if isinstance(n, Fraction):
        return f"{n.numerator}/{n.denominator}"
    if isinstance(n, float):
        return repr(n)
    return str(n)


def _datum_external(d: object, write: bool) -> str:
    if d is NIL:
        return "()"
    if d is True:
        return "#t"
    if d is False:
        return "#f"
    if d is UNSPECIFIED:
        return "#<void>"
    if d is EOF_OBJECT:
        return "#<eof>"
    if isinstance(d, Symbol):
        return d.name
    if isinstance(d, (int, float, Fraction)):
        return _number_external(d)
    if isinstance(d, str):
        return _string_external(d) if write else d
    if isinstance(d, Char):
        return d.external() if write else d.value
    if isinstance(d, SchemeVector):
        inner = " ".join(_datum_external(x, write) for x in d.items)
        return f"#({inner})"
    if isinstance(d, Pair):
        # Quote abbreviations: (quote x) prints as 'x, etc.
        if (
            isinstance(d.car, Symbol)
            and d.car.name in _QUOTE_ABBREVS
            and isinstance(d.cdr, Pair)
            and d.cdr.cdr is NIL
        ):
            return _QUOTE_ABBREVS[d.car.name] + _datum_external(d.cdr.car, write)
        parts = []
        node: object = d
        while isinstance(node, Pair):
            parts.append(_datum_external(node.car, write))
            node = node.cdr
        if node is NIL:
            return "(" + " ".join(parts) + ")"
        return "(" + " ".join(parts) + " . " + _datum_external(node, write) + ")"
    if callable(d):
        name = getattr(d, "scheme_name", getattr(d, "__name__", "procedure"))
        return f"#<procedure {name}>"
    return repr(d)


def write_datum(d: object) -> str:
    """The ``write`` external representation (strings quoted, chars named)."""
    return _datum_external(d, write=True)


def display_datum(d: object) -> str:
    """The ``display`` representation (strings and chars shown raw)."""
    return _datum_external(d, write=False)
