"""Run-time environments for the Scheme interpreter.

After expansion every variable has a unique name, so environments are plain
symbol-keyed dict chains: a global frame at the root, one frame per closure
invocation. Lookup failures indicate either a reference to a top-level
variable defined later (legal — resolved against the global frame at call
time) or a genuine unbound-variable error.
"""

from __future__ import annotations

from repro.core.errors import EvalError
from repro.scheme.datum import Symbol

__all__ = ["Environment", "GlobalEnvironment"]


class Environment:
    """A local frame chained to a parent environment."""

    __slots__ = ("bindings", "parent", "globals")

    def __init__(
        self,
        bindings: dict[Symbol, object],
        parent: "Environment | GlobalEnvironment",
    ) -> None:
        self.bindings = bindings
        self.parent = parent
        # Cache the root global frame for O(1) top-level fallback.
        self.globals = parent.globals

    def lookup(self, name: Symbol) -> object:
        env: Environment | GlobalEnvironment = self
        while isinstance(env, Environment):
            value = env.bindings.get(name, _MISSING)
            if value is not _MISSING:
                return value
            env = env.parent
        return env.lookup(name)

    def assign(self, name: Symbol, value: object) -> None:
        env: Environment | GlobalEnvironment = self
        while isinstance(env, Environment):
            if name in env.bindings:
                env.bindings[name] = value
                return
            env = env.parent
        env.assign(name, value)


class GlobalEnvironment:
    """The root frame: top-level definitions and primitives."""

    __slots__ = ("bindings",)

    def __init__(self, bindings: dict[Symbol, object] | None = None) -> None:
        self.bindings: dict[Symbol, object] = bindings if bindings is not None else {}

    @property
    def globals(self) -> "GlobalEnvironment":
        return self

    def lookup(self, name: Symbol) -> object:
        value = self.bindings.get(name, _MISSING)
        if value is _MISSING:
            raise EvalError(f"unbound variable: {name.name}")
        return value

    def assign(self, name: Symbol, value: object) -> None:
        if name not in self.bindings:
            raise EvalError(f"set! of unbound variable: {name.name}")
        self.bindings[name] = value

    def define(self, name: Symbol, value: object) -> None:
        self.bindings[name] = value

    def snapshot(self) -> dict[Symbol, object]:
        return dict(self.bindings)


class _Missing:
    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover
        return "<missing>"


_MISSING = _Missing()
