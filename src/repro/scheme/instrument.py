"""Profiling instrumentation for the Scheme interpreter.

The paper's two implementations differ in *what* their profilers count:

* **Chez Scheme** "effectively profiles every source expression" via precise
  block-level counters (Section 4.1) — our ``EXPR`` mode: every core node
  that has a profile point gets a counter bump.
* **Racket's errortrace** "profiles only function calls" (Section 4.2) — our
  ``CALL`` mode: only application nodes are counted. Under this mode,
  ``annotate-expr`` must wrap the annotated expression in a generated
  function call (see :func:`repro.scheme.expand_prims` ``annotate-expr`` and
  the paper's key Racket difference); the counters still come out the same,
  only the run-time overhead differs — a claim benchmarked in
  ``benchmarks/bench_sec44_overhead.py``.

An :class:`Instrumenter` is handed to the interpreter at compile time; for
each core node it either returns a pre-bound zero-argument counter bump or
``None`` (not profiled). When a program is *not* instrumented, no
instrumenter exists and profile points cost nothing — the paper's "when the
program is not instrumented … profile points need not introduce any
overhead".
"""

from __future__ import annotations

import enum
import threading

from repro.core.counters import BaseCounterSet
from repro.scheme.core_forms import App, CoreExpr

__all__ = ["ProfileMode", "Instrumenter"]


class ProfileMode(enum.Enum):
    """Which expressions the active profiler counts, and how."""

    #: Chez-style: every source expression with a profile point.
    EXPR = "expr"
    #: errortrace-style: only procedure applications.
    CALL = "call"
    #: Sampling: every expression, but only every ``sample_stride``-th
    #: execution bumps (by the stride, keeping counts unbiased). The design
    #: claims to work for any *point* profiling system — this is a third,
    #: cheaper one, and all the meta-programs run unchanged over it.
    SAMPLE = "sample"


class Instrumenter:
    """Decides, per core node, whether and how to count its executions."""

    def __init__(
        self,
        counters: BaseCounterSet,
        mode: ProfileMode = ProfileMode.EXPR,
        sample_stride: int = 10,
    ) -> None:
        self.counters = counters
        self.mode = mode
        if sample_stride < 1:
            raise ValueError("sample_stride must be >= 1")
        self.sample_stride = sample_stride

    def hook(self, expr: CoreExpr):
        """A pre-bound counter bump for ``expr``, or None when not profiled."""
        return self.hook_for(expr.profile_point, isinstance(expr, App))

    def hook_for(self, point, is_app: bool):
        """A pre-bound counter bump for a profile point at a known site.

        The seam the compiled backend shares with the interpreter: both
        describe a site as ``(point, is-it-an-application)`` and get back
        the identical bump (or ``None``), so per-mode filtering and the
        per-site sampling state behave the same under either backend.
        """
        if point is None:
            return None
        if self.mode is ProfileMode.CALL and not is_app:
            return None
        if self.mode is ProfileMode.SAMPLE:
            return self._sampling_bump(point)
        return self.counters.incrementer(point)

    def _sampling_bump(self, point):
        """Deterministic 1-in-stride sampling, scaled to stay unbiased.

        Deterministic (a per-point modular counter, not randomness) so
        profiles — and therefore meta-program decisions — are reproducible
        run to run, the same property make-profile-point demands. The
        modular counter is per-thread so concurrent interpreters sample
        deterministically without racing on shared closure state.
        """
        stride = self.sample_stride
        counters = self.counters
        state = threading.local()

        def bump() -> None:
            n = getattr(state, "n", 0) + 1
            if n >= stride:
                n = 0
                counters.increment(point, by=stride)
            state.n = n

        return bump
