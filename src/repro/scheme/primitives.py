"""Primitive procedures for the Scheme substrate.

Two environment builders are exported:

* :func:`make_global_env` — the run-time global environment: numbers, pairs,
  vectors, strings, characters, hashtables, higher-order list operations,
  sorting, output.
* :func:`make_expand_env` — everything above *plus* the expand-time
  meta-programming toolkit: syntax-object accessors and, crucially, the
  paper's Figure-4 PGMP operations (``profile-query``,
  ``make-profile-point``, ``annotate-expr``, ``store-profile``,
  ``load-profile``), wired to the ambient
  :func:`repro.core.api.current_profile_information`.

Higher-order primitives apply Scheme closures through
:func:`repro.scheme.interpreter.apply_procedure`, so user procedures and
primitives are interchangeable.
"""

from __future__ import annotations

import io
import math
from fractions import Fraction

from repro.core import api as core_api
from repro.core.errors import EvalError, SchemeUserError
from repro.core.profile_point import ProfilePoint
from repro.core.srcloc import SourceLocation
from repro.obs.tracer import active_tracer
from repro.scheme.datum import (
    EOF_OBJECT,
    MultipleValues,
    NIL,
    UNSPECIFIED,
    Char,
    Pair,
    SchemeVector,
    Symbol,
    display_datum,
    gensym,
    is_scheme_list,
    iter_pairs,
    pylist_from_scheme,
    scheme_list,
    write_datum,
)
from repro.scheme.env import GlobalEnvironment
from repro.scheme.interpreter import apply_procedure
from repro.scheme.syntax import (
    Syntax,
    datum_to_syntax,
    is_identifier,
    syntax_to_datum,
)

__all__ = [
    "make_global_env",
    "make_expand_env",
    "OutputPort",
    "current_output",
    "set_current_output",
]


# -- output redirection ---------------------------------------------------------


class OutputPort:
    """A captureable output sink for ``display``/``write``/``printf``."""

    def __init__(self) -> None:
        self.buffer = io.StringIO()
        self.echo: bool = False

    def write(self, text: str) -> None:
        self.buffer.write(text)
        if self.echo:
            print(text, end="")

    def getvalue(self) -> str:
        return self.buffer.getvalue()

    def clear(self) -> None:
        self.buffer = io.StringIO()


_CURRENT_OUTPUT = OutputPort()


def current_output() -> OutputPort:
    return _CURRENT_OUTPUT


def set_current_output(port: OutputPort) -> OutputPort:
    global _CURRENT_OUTPUT
    previous = _CURRENT_OUTPUT
    _CURRENT_OUTPUT = port
    return previous


# -- registry ---------------------------------------------------------------------

_RUNTIME: dict[str, object] = {}
_EXPAND_ONLY: dict[str, object] = {}


def primitive(name: str, registry: dict[str, object] = _RUNTIME):
    """Register a Python function as a Scheme primitive named ``name``."""

    def wrap(fn):
        fn.scheme_name = name
        registry[name] = fn
        return fn

    return wrap


def expand_primitive(name: str):
    return primitive(name, _EXPAND_ONLY)


def _check_number(x: object, who: str) -> object:
    if isinstance(x, bool) or not isinstance(x, (int, float, Fraction)):
        raise EvalError(f"{who}: expected a number, got {write_datum(x)}")
    return x


def _exactify(x: float | Fraction) -> object:
    """Collapse integral Fractions to ints (Scheme exactness convention)."""
    if isinstance(x, Fraction) and x.denominator == 1:
        return x.numerator
    return x


# -- syntax transparency -----------------------------------------------------------
#
# In Chez Scheme a syntax object wrapping a list *is* a list of syntax
# objects (annotations unwrap lazily), so transformers apply ordinary list
# operations — ``(sort #'(clause ...) ...)`` in the paper's Figure 7 — to
# syntax directly. We reproduce that: list primitives unwrap syntax
# wrappers along the spine, leaving the elements (which are themselves
# syntax objects) intact.


def _unwrap_seq(x: object) -> object:
    """Unwrap syntax wrappers whose datum is list structure."""
    while isinstance(x, Syntax):
        datum = x.datum
        if isinstance(datum, Pair) or datum is NIL:
            x = datum
        else:
            return x
    return x


def _to_pylist(x: object, who: str) -> list[object]:
    """A (possibly syntax-wrapped) proper list's elements as a Python list."""
    items: list[object] = []
    node = _unwrap_seq(x)
    while True:
        if node is NIL:
            return items
        if isinstance(node, Pair):
            items.append(node.car)
            node = _unwrap_seq(node.cdr)
            continue
        raise EvalError(f"{who}: expected a proper list, got {write_datum(x)}")


# -- numbers ------------------------------------------------------------------------


@primitive("+")
def _add(*args):
    total: object = 0
    for a in args:
        total = total + _check_number(a, "+")  # type: ignore[operator]
    return _exactify(total)


@primitive("-")
def _sub(first, *rest):
    _check_number(first, "-")
    if not rest:
        return _exactify(-first)
    total = first
    for a in rest:
        total = total - _check_number(a, "-")
    return _exactify(total)


@primitive("*")
def _mul(*args):
    total: object = 1
    for a in args:
        total = total * _check_number(a, "*")  # type: ignore[operator]
    return _exactify(total)


@primitive("/")
def _div(first, *rest):
    _check_number(first, "/")
    if not rest:
        rest = (first,)
        first = 1
    total = Fraction(first) if isinstance(first, int) else first
    for a in rest:
        _check_number(a, "/")
        if a == 0 and not isinstance(a, float):
            raise EvalError("/: division by zero")
        if isinstance(total, Fraction) and isinstance(a, int):
            total = total / a
        else:
            total = total / a
    return _exactify(total)


def _chain(name: str, op):
    def compare(first, *rest):
        _check_number(first, name)
        prev = first
        for a in rest:
            _check_number(a, name)
            if not op(prev, a):
                return False
            prev = a
        return True

    compare.scheme_name = name
    _RUNTIME[name] = compare
    return compare


_chain("=", lambda a, b: a == b)
_chain("<", lambda a, b: a < b)
_chain(">", lambda a, b: a > b)
_chain("<=", lambda a, b: a <= b)
_chain(">=", lambda a, b: a >= b)


@primitive("sqr")
def _sqr(x):
    return _exactify(_check_number(x, "sqr") ** 2)


@primitive("abs")
def _abs(x):
    return abs(_check_number(x, "abs"))


@primitive("min")
def _min(*args):
    if not args:
        raise EvalError("min: requires at least one argument")
    return min(_check_number(a, "min") for a in args)


@primitive("max")
def _max(*args):
    if not args:
        raise EvalError("max: requires at least one argument")
    return max(_check_number(a, "max") for a in args)


@primitive("quotient")
def _quotient(a, b):
    if b == 0:
        raise EvalError("quotient: division by zero")
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


@primitive("remainder")
def _remainder(a, b):
    if b == 0:
        raise EvalError("remainder: division by zero")
    return a - b * _quotient(a, b)


@primitive("modulo")
def _modulo(a, b):
    if b == 0:
        raise EvalError("modulo: division by zero")
    return a % b


@primitive("expt")
def _expt(a, b):
    result = a**b
    return _exactify(result) if isinstance(result, Fraction) else result


@primitive("sqrt")
def _sqrt(x):
    _check_number(x, "sqrt")
    if isinstance(x, int) and x >= 0:
        root = math.isqrt(x)
        if root * root == x:
            return root
    return math.sqrt(x)


@primitive("exact->inexact")
def _exact_to_inexact(x):
    return float(_check_number(x, "exact->inexact"))


@primitive("inexact->exact")
def _inexact_to_exact(x):
    _check_number(x, "inexact->exact")
    return _exactify(Fraction(x).limit_denominator(10**12)) if isinstance(x, float) else x


@primitive("floor")
def _floor(x):
    return math.floor(_check_number(x, "floor")) if not isinstance(x, float) else float(math.floor(x))


@primitive("ceiling")
def _ceiling(x):
    return math.ceil(_check_number(x, "ceiling")) if not isinstance(x, float) else float(math.ceil(x))


@primitive("round")
def _round(x):
    _check_number(x, "round")
    return round(x) if not isinstance(x, float) else float(round(x))


@primitive("truncate")
def _truncate(x):
    _check_number(x, "truncate")
    return math.trunc(x) if not isinstance(x, float) else float(math.trunc(x))


@primitive("gcd")
def _gcd(*args):
    return math.gcd(*[abs(int(a)) for a in args]) if args else 0


@primitive("lcm")
def _lcm(*args):
    return math.lcm(*[abs(int(a)) for a in args]) if args else 1


@primitive("add1")
def _add1(x):
    return _check_number(x, "add1") + 1


@primitive("sub1")
def _sub1(x):
    return _check_number(x, "sub1") - 1


@primitive("zero?")
def _zerop(x):
    return _check_number(x, "zero?") == 0


@primitive("positive?")
def _positivep(x):
    return _check_number(x, "positive?") > 0


@primitive("negative?")
def _negativep(x):
    return _check_number(x, "negative?") < 0


@primitive("even?")
def _evenp(x):
    return int(x) % 2 == 0


@primitive("odd?")
def _oddp(x):
    return int(x) % 2 == 1


@primitive("number?")
def _numberp(x):
    return not isinstance(x, bool) and isinstance(x, (int, float, Fraction))


@primitive("integer?")
def _integerp(x):
    if isinstance(x, bool):
        return False
    if isinstance(x, int):
        return True
    if isinstance(x, float):
        return x.is_integer()
    return isinstance(x, Fraction) and x.denominator == 1


@primitive("number->string")
def _number_to_string(x):
    return write_datum(_check_number(x, "number->string"))


@primitive("string->number")
def _string_to_number(s):
    from repro.scheme.reader import _parse_number

    result = _parse_number(s)
    return result if result is not None else False


# -- booleans and equivalence ----------------------------------------------------------


@primitive("not")
def _not(x):
    return x is False


@primitive("boolean?")
def _booleanp(x):
    return isinstance(x, bool)


@primitive("procedure?")
def _procedurep(x):
    from repro.scheme.interpreter import Closure

    return isinstance(x, Closure) or callable(x)


def _eqv(a, b):
    if isinstance(a, bool) or isinstance(b, bool):
        return a is b
    if isinstance(a, (int, float, Fraction)) and isinstance(b, (int, float, Fraction)):
        return type(a) is type(b) and a == b
    if isinstance(a, Char) and isinstance(b, Char):
        return a == b
    return a is b


@primitive("eq?")
def _eqp(a, b):
    if isinstance(a, (int, Char)) and isinstance(b, (int, Char)):
        # Small ints / chars behave like immediates.
        return _eqv(a, b)
    return a is b


@primitive("eqv?")
def _eqvp(a, b):
    return _eqv(a, b)


@primitive("equal?")
def _equalp(a, b):
    if _eqv(a, b):
        return True
    if isinstance(a, str) and isinstance(b, str):
        return a == b
    if isinstance(a, Pair) and isinstance(b, Pair):
        return a == b
    if isinstance(a, SchemeVector) and isinstance(b, SchemeVector):
        return len(a) == len(b) and all(_equalp(x, y) for x, y in zip(a, b))
    if a is NIL and b is NIL:
        return True
    if isinstance(a, (int, float, Fraction)) and isinstance(b, (int, float, Fraction)):
        if isinstance(a, bool) or isinstance(b, bool):
            return a is b
        return a == b
    return False


# -- pairs and lists ----------------------------------------------------------------------


@primitive("cons")
def _cons(a, b):
    return Pair(a, b)


def _check_pair(x, who):
    x = _unwrap_seq(x)
    if not isinstance(x, Pair):
        raise EvalError(f"{who}: expected a pair, got {write_datum(x)}")
    return x


@primitive("car")
def _car(p):
    return _check_pair(p, "car").car


@primitive("cdr")
def _cdr(p):
    return _check_pair(p, "cdr").cdr


@primitive("set-car!")
def _set_car(p, v):
    _check_pair(p, "set-car!").car = v
    return UNSPECIFIED


@primitive("set-cdr!")
def _set_cdr(p, v):
    _check_pair(p, "set-cdr!").cdr = v
    return UNSPECIFIED


def _cxr(path: str):
    def access(p):
        value = p
        for step in reversed(path):
            value = _check_pair(value, f"c{path}r").car if step == "a" else _check_pair(value, f"c{path}r").cdr
        return value

    return access


for _path in ("aa", "ad", "da", "dd", "aaa", "aad", "ada", "add", "daa", "dad", "dda", "ddd"):
    fn = _cxr(_path)
    fn.scheme_name = f"c{_path}r"
    _RUNTIME[f"c{_path}r"] = fn


@primitive("pair?")
def _pairp(x):
    return isinstance(_unwrap_seq(x), Pair)


@primitive("null?")
def _nullp(x):
    return _unwrap_seq(x) is NIL


@primitive("list?")
def _listp(x):
    x = _unwrap_seq(x)
    try:
        _to_pylist(x, "list?")
        return True
    except EvalError:
        return False


@primitive("list")
def _list(*args):
    return scheme_list(*args)


@primitive("length")
def _length(lst):
    return len(_to_pylist(lst, "length"))


@primitive("append")
def _append(*lists):
    if not lists:
        return NIL
    result = lists[-1]
    for lst in reversed(lists[:-1]):
        items = _to_pylist(lst, "append")
        result = scheme_list(*items, tail=result)
    return result


@primitive("reverse")
def _reverse(lst):
    return scheme_list(*reversed(_to_pylist(lst, "reverse")))


@primitive("list-ref")
def _list_ref(lst, n):
    items = _to_pylist(lst, "list-ref")
    if not 0 <= n < len(items):
        raise EvalError(f"list-ref: index {n} out of range")
    return items[n]


@primitive("list-tail")
def _list_tail(lst, n):
    for _ in range(n):
        lst = _check_pair(lst, "list-tail").cdr
    return lst


@primitive("last-pair")
def _last_pair(lst):
    p = _check_pair(lst, "last-pair")
    while isinstance(p.cdr, Pair):
        p = p.cdr
    return p


@primitive("list-copy")
def _list_copy(lst):
    return scheme_list(*_to_pylist(lst, "list-copy"))


@primitive("iota")
def _iota(n, start=0, step=1):
    return scheme_list(*[start + i * step for i in range(n)])


def _member_by(pred, x, lst):
    node = _unwrap_seq(lst)
    while isinstance(node, Pair):
        if pred(x, node.car):
            return node
        node = _unwrap_seq(node.cdr)
    return False


@primitive("memq")
def _memq(x, lst):
    return _member_by(_eqp, x, lst)


@primitive("memv")
def _memv(x, lst):
    return _member_by(_eqv, x, lst)


@primitive("member")
def _member(x, lst):
    return _member_by(_equalp, x, lst)


def _assoc_by(pred, x, alist):
    node = _unwrap_seq(alist)
    while isinstance(node, Pair):
        entry = _unwrap_seq(node.car)
        if isinstance(entry, Pair) and pred(x, entry.car):
            return entry
        node = _unwrap_seq(node.cdr)
    return False


@primitive("assq")
def _assq(x, alist):
    return _assoc_by(_eqp, x, alist)


@primitive("assv")
def _assv(x, alist):
    return _assoc_by(_eqv, x, alist)


@primitive("assoc")
def _assoc(x, alist):
    return _assoc_by(_equalp, x, alist)


# -- higher-order list operations ------------------------------------------------------------


@primitive("map")
def _map(proc, *lists):
    columns = [_to_pylist(lst, "map") for lst in lists]
    if len(set(map(len, columns))) > 1:
        raise EvalError("map: lists differ in length")
    return scheme_list(*[apply_procedure(proc, list(row)) for row in zip(*columns)])


@primitive("for-each")
def _for_each(proc, *lists):
    columns = [_to_pylist(lst, "for-each") for lst in lists]
    if len(set(map(len, columns))) > 1:
        raise EvalError("for-each: lists differ in length")
    for row in zip(*columns):
        apply_procedure(proc, list(row))
    return UNSPECIFIED


@primitive("filter")
def _filter(pred, lst):
    return scheme_list(
        *[x for x in _to_pylist(lst, "filter") if apply_procedure(pred, [x]) is not False]
    )


@primitive("fold-left")
def _fold_left(proc, init, *lists):
    columns = [_to_pylist(lst, "fold-left") for lst in lists]
    acc = init
    for row in zip(*columns):
        acc = apply_procedure(proc, [acc, *row])
    return acc


@primitive("fold-right")
def _fold_right(proc, init, *lists):
    columns = [_to_pylist(lst, "fold-right") for lst in lists]
    acc = init
    for row in reversed(list(zip(*columns))):
        acc = apply_procedure(proc, [*row, acc])
    return acc


@primitive("sort")
def _sort(lst, less, key=None):
    """(sort lst less [key]) — stable sort by the ``less`` ordering.

    The optional ``key`` procedure mirrors Racket's ``#:key`` argument,
    which the paper's Figure 7 uses to sort clauses by profile weight.
    """
    import functools

    items = _to_pylist(lst, "sort")
    if key is not None:
        decorated = [(apply_procedure(key, [x]), x) for x in items]
        decorated.sort(
            key=functools.cmp_to_key(
                lambda a, b: -1 if apply_procedure(less, [a[0], b[0]]) is not False else (
                    1 if apply_procedure(less, [b[0], a[0]]) is not False else 0
                )
            )
        )
        return scheme_list(*[x for _, x in decorated])
    items.sort(
        key=functools.cmp_to_key(
            lambda a, b: -1 if apply_procedure(less, [a, b]) is not False else (
                1 if apply_procedure(less, [b, a]) is not False else 0
            )
        )
    )
    return scheme_list(*items)


@primitive("find")
def _find(pred, lst):
    for x in _to_pylist(lst, "find"):
        if apply_procedure(pred, [x]) is not False:
            return x
    return False


@primitive("remove")
def _remove(pred, lst):
    return scheme_list(
        *[x for x in _to_pylist(lst, "remove") if apply_procedure(pred, [x]) is False]
    )


@primitive("partition")
def _partition(pred, lst):
    yes: list[object] = []
    no: list[object] = []
    for x in _to_pylist(lst, "partition"):
        (yes if apply_procedure(pred, [x]) is not False else no).append(x)
    return Pair(scheme_list(*yes), scheme_list(*no))


@primitive("for-all")
def _for_all(pred, lst):
    return all(
        apply_procedure(pred, [x]) is not False for x in _to_pylist(lst, "for-all")
    )


@primitive("exists")
def _exists(pred, lst):
    for x in _to_pylist(lst, "exists"):
        result = apply_procedure(pred, [x])
        if result is not False:
            return result
    return False


@primitive("memp")
def _memp(pred, lst):
    node = _unwrap_seq(lst)
    while isinstance(node, Pair):
        if apply_procedure(pred, [node.car]) is not False:
            return node
        node = _unwrap_seq(node.cdr)
    return False


@primitive("assp")
def _assp(pred, alist):
    node = _unwrap_seq(alist)
    while isinstance(node, Pair):
        entry = _unwrap_seq(node.car)
        if isinstance(entry, Pair) and apply_procedure(pred, [entry.car]) is not False:
            return entry
        node = _unwrap_seq(node.cdr)
    return False


@primitive("list-index")
def _list_index(pred, lst):
    for i, x in enumerate(_to_pylist(lst, "list-index")):
        if apply_procedure(pred, [x]) is not False:
            return i
    return False


@primitive("filter-map")
def _filter_map(proc, lst):
    out: list[object] = []
    for x in _to_pylist(lst, "filter-map"):
        value = apply_procedure(proc, [x])
        if value is not False:
            out.append(value)
    return scheme_list(*out)


@primitive("take")
def _take(lst, n):
    items = _to_pylist(lst, "take")
    if n > len(items):
        raise EvalError(f"take: index {n} out of range")
    return scheme_list(*items[:n])


@primitive("drop")
def _drop(lst, n):
    items = _to_pylist(lst, "drop")
    if n > len(items):
        raise EvalError(f"drop: index {n} out of range")
    return scheme_list(*items[n:])


@primitive("apply")
def _apply(proc, *args):
    if not args:
        return apply_procedure(proc, [])
    spread = list(args[:-1]) + _to_pylist(args[-1], "apply")
    return apply_procedure(proc, spread)


@primitive("curry")
def _curry(proc, *fixed):
    """Left-section a procedure (Racket's ``curry``, used in Figure 6)."""

    def curried(*more):
        return apply_procedure(proc, list(fixed) + list(more))

    curried.scheme_name = "curried"
    return curried


# -- symbols ------------------------------------------------------------------------------------


@primitive("symbol?")
def _symbolp(x):
    return isinstance(x, Symbol)


@primitive("symbol->string")
def _symbol_to_string(s):
    if not isinstance(s, Symbol):
        raise EvalError(f"symbol->string: expected a symbol, got {write_datum(s)}")
    return s.name


@primitive("string->symbol")
def _string_to_symbol(s):
    return Symbol(s)


@primitive("gensym")
def _gensym(prefix="g"):
    return gensym(prefix if isinstance(prefix, str) else str(prefix))


# -- characters ------------------------------------------------------------------------------------


@primitive("char?")
def _charp(x):
    return isinstance(x, Char)


@primitive("char->integer")
def _char_to_integer(c):
    return ord(c.value)


@primitive("integer->char")
def _integer_to_char(n):
    return Char(chr(n))


@primitive("char=?")
def _char_eq(a, *rest):
    return all(a == b for b in rest)


@primitive("char<?")
def _char_lt(a, b):
    return a.value < b.value


@primitive("char-alphabetic?")
def _char_alpha(c):
    return c.value.isalpha()


@primitive("char-numeric?")
def _char_numeric(c):
    return c.value.isdigit()


@primitive("char-whitespace?")
def _char_whitespace(c):
    return c.value.isspace()


@primitive("char-upcase")
def _char_upcase(c):
    return Char(c.value.upper())


@primitive("char-downcase")
def _char_downcase(c):
    return Char(c.value.lower())


# -- strings ------------------------------------------------------------------------------------


@primitive("string?")
def _stringp(x):
    return isinstance(x, str)


@primitive("string-length")
def _string_length(s):
    return len(s)


@primitive("string-ref")
def _string_ref(s, i):
    if not 0 <= i < len(s):
        raise EvalError(f"string-ref: index {i} out of range")
    return Char(s[i])


@primitive("substring")
def _substring(s, start, end=None):
    return s[start : end if end is not None else len(s)]


@primitive("string-append")
def _string_append(*parts):
    return "".join(parts)


@primitive("string=?")
def _string_eq(a, *rest):
    return all(a == b for b in rest)


@primitive("string<?")
def _string_lt(a, b):
    return a < b


@primitive("string-upcase")
def _string_upcase(s):
    return s.upper()


@primitive("string-downcase")
def _string_downcase(s):
    return s.lower()


@primitive("string->list")
def _string_to_list(s):
    return scheme_list(*[Char(c) for c in s])


@primitive("list->string")
def _list_to_string(lst):
    return "".join(c.value for c in _to_pylist(lst, "list->string"))


@primitive("string-contains?")
def _string_contains(haystack, needle):
    return needle in haystack


@primitive("string-split")
def _string_split(s, sep=" "):
    return scheme_list(*s.split(sep))


@primitive("string-join")
def _string_join(lst, sep=" "):
    return sep.join(_to_pylist(lst, "string-join"))


# -- vectors ------------------------------------------------------------------------------------


@primitive("vector?")
def _vectorp(x):
    return isinstance(x, SchemeVector)


@primitive("make-vector")
def _make_vector(n, fill=0):
    return SchemeVector([fill] * n)


@primitive("vector")
def _vector(*args):
    return SchemeVector(args)


@primitive("vector-length")
def _vector_length(v):
    return len(v)


@primitive("vector-ref")
def _vector_ref(v, i):
    if not isinstance(v, SchemeVector):
        raise EvalError(f"vector-ref: expected a vector, got {write_datum(v)}")
    if not 0 <= i < len(v):
        raise EvalError(f"vector-ref: index {i} out of range for length {len(v)}")
    return v[i]


@primitive("vector-set!")
def _vector_set(v, i, value):
    if not 0 <= i < len(v):
        raise EvalError(f"vector-set!: index {i} out of range for length {len(v)}")
    v[i] = value
    return UNSPECIFIED


@primitive("vector->list")
def _vector_to_list(v):
    return scheme_list(*v.items)


@primitive("list->vector")
def _list_to_vector(lst):
    return SchemeVector(_to_pylist(lst, "list->vector"))


@primitive("vector-fill!")
def _vector_fill(v, value):
    for i in range(len(v)):
        v[i] = value
    return UNSPECIFIED


@primitive("vector-map")
def _vector_map(proc, v):
    return SchemeVector([apply_procedure(proc, [x]) for x in v])


@primitive("vector-for-each")
def _vector_for_each(proc, v):
    for x in v:
        apply_procedure(proc, [x])
    return UNSPECIFIED


@primitive("vector-copy")
def _vector_copy(v):
    return SchemeVector(list(v.items))


@primitive("vector-append")
def _vector_append(*vs):
    out: list[object] = []
    for v in vs:
        out.extend(v.items)
    return SchemeVector(out)


# -- hashtables (Chez naming) ---------------------------------------------------------------------


class EqHashtable:
    """A Chez-style eq hashtable over Scheme values."""

    def __init__(self) -> None:
        self._table: dict[object, object] = {}

    @staticmethod
    def _key(key: object) -> object:
        if isinstance(key, (Symbol, str, int, float, Fraction, bool, Char)):
            return key
        return id(key)

    def set(self, key: object, value: object) -> None:
        self._table[self._key(key)] = value

    def ref(self, key: object, default: object) -> object:
        return self._table.get(self._key(key), default)

    def contains(self, key: object) -> bool:
        return self._key(key) in self._table

    def delete(self, key: object) -> None:
        self._table.pop(self._key(key), None)

    def size(self) -> int:
        return len(self._table)

    def keys(self) -> list[object]:
        return list(self._table)

    def __repr__(self) -> str:
        return f"#<eq-hashtable ({len(self._table)})>"


@primitive("make-eq-hashtable")
def _make_eq_hashtable():
    return EqHashtable()


@primitive("hashtable?")
def _hashtablep(x):
    return isinstance(x, EqHashtable)


@primitive("hashtable-set!")
def _hashtable_set(ht, key, value):
    ht.set(key, value)
    return UNSPECIFIED


@primitive("hashtable-ref")
def _hashtable_ref(ht, key, default=False):
    return ht.ref(key, default)


@primitive("hashtable-contains?")
def _hashtable_contains(ht, key):
    return ht.contains(key)


@primitive("hashtable-delete!")
def _hashtable_delete(ht, key):
    ht.delete(key)
    return UNSPECIFIED


@primitive("hashtable-size")
def _hashtable_size(ht):
    return ht.size()


@primitive("hashtable-keys")
def _hashtable_keys(ht):
    return scheme_list(*ht.keys())


# -- control and errors -----------------------------------------------------------------------------


@primitive("values")
def _values(*args):
    if len(args) == 1:
        return args[0]
    return MultipleValues(tuple(args))


@primitive("call-with-values")
def _call_with_values(producer, consumer):
    produced = apply_procedure(producer, [])
    if isinstance(produced, MultipleValues):
        return apply_procedure(consumer, list(produced.values))
    return apply_procedure(consumer, [produced])


@primitive("make-case-lambda")
def _make_case_lambda(*arity_proc_pairs):
    """Runtime dispatcher for ``case-lambda`` (see the expander).

    Arguments come in (arity, procedure) pairs; a non-negative arity is an
    exact argument count, and ``-(n+1)`` means "n or more" (a rest clause).
    """
    clauses = list(zip(arity_proc_pairs[0::2], arity_proc_pairs[1::2]))

    def dispatch(*args):
        n = len(args)
        for arity, proc in clauses:
            if arity >= 0:
                if n == arity:
                    return apply_procedure(proc, list(args))
            elif n >= -arity - 1:
                return apply_procedure(proc, list(args))
        raise EvalError(f"case-lambda: no clause accepts {n} arguments")

    dispatch.scheme_name = "case-lambda"
    return dispatch


@primitive("void")
def _void(*_args):
    return UNSPECIFIED


@primitive("error")
def _error(who, message="", *irritants):
    raise SchemeUserError(
        who.name if isinstance(who, Symbol) else who, str(message), tuple(irritants)
    )


@primitive("assert")
def _assert(value):
    if value is False:
        raise SchemeUserError("assert", "assertion failed")
    return UNSPECIFIED


# -- output -------------------------------------------------------------------------------------------


@primitive("display")
def _display(x, *_port):
    _CURRENT_OUTPUT.write(display_datum(x))
    return UNSPECIFIED


@primitive("write")
def _write(x, *_port):
    _CURRENT_OUTPUT.write(write_datum(x))
    return UNSPECIFIED


@primitive("newline")
def _newline(*_port):
    _CURRENT_OUTPUT.write("\n")
    return UNSPECIFIED


@primitive("printf")
def _printf(fmt, *args):
    """A useful subset of Chez's format directives: ~a ~s ~d ~% ~n ~~."""
    out: list[str] = []
    arg_iter = iter(args)
    i = 0
    while i < len(fmt):
        ch = fmt[i]
        if ch == "~" and i + 1 < len(fmt):
            directive = fmt[i + 1]
            if directive in ("a", "A"):
                out.append(display_datum(next(arg_iter)))
            elif directive in ("s", "S"):
                out.append(write_datum(next(arg_iter)))
            elif directive in ("d", "D"):
                out.append(str(next(arg_iter)))
            elif directive in ("%", "n"):
                out.append("\n")
            elif directive == "~":
                out.append("~")
            else:
                raise EvalError(f"printf: unknown directive ~{directive}")
            i += 2
            continue
        out.append(ch)
        i += 1
    _CURRENT_OUTPUT.write("".join(out))
    return UNSPECIFIED


# -- expand-time: syntax objects and the Figure-4 PGMP API -----------------------------------------------


@expand_primitive("syntax->datum")
def _syntax_to_datum_prim(stx):
    return syntax_to_datum(stx)


@expand_primitive("datum->syntax")
def _datum_to_syntax_prim(context, datum):
    ctx = context if isinstance(context, Syntax) else None
    return datum_to_syntax(datum, context=ctx)


@expand_primitive("syntax?")
def _syntaxp(x):
    return isinstance(x, Syntax)


@expand_primitive("identifier?")
def _identifierp(x):
    return is_identifier(x)


@expand_primitive("free-identifier=?")
def _free_identifier_eq(a, b):
    # Name-based approximation, adequate for the case studies.
    return (
        is_identifier(a)
        and is_identifier(b)
        and a.symbol_name == b.symbol_name
    )


@expand_primitive("syntax-e")
def _syntax_e(stx):
    if not isinstance(stx, Syntax):
        raise EvalError("syntax-e: expected a syntax object")
    return stx.datum


@expand_primitive("syntax->list")
def _syntax_to_list(stx):
    from repro.scheme.syntax import syntax_pylist

    try:
        return scheme_list(*syntax_pylist(stx))
    except TypeError:
        return False


@expand_primitive("syntax-source")
def _syntax_source(stx):
    if not isinstance(stx, Syntax):
        raise EvalError("syntax-source: expected a syntax object")
    return stx.srcloc


@expand_primitive("generate-temporaries")
def _generate_temporaries(lst):
    from repro.scheme.syntax import syntax_pylist

    items = _to_pylist(lst, "generate-temporaries")
    return scheme_list(
        *[datum_to_syntax(gensym("tmp")) for _ in items]
    )


@expand_primitive("profile-query")
def _profile_query(expr):
    """``(profile-query e)`` — the profile weight of ``e``'s profile point."""
    return core_api.profile_query(expr)


@expand_primitive("profile-query-count")
def _profile_query_known(expr):
    """Whether any profile data exists for ``e``'s point (weight may be 0)."""
    point = core_api.point_of_expr(expr)
    if point is None:
        return False
    return core_api.current_profile_information().known(point)


@expand_primitive("profile-data-available?")
def _profile_data_available():
    """Whether the ambient database holds any profile data at all."""
    return core_api.current_profile_information().has_data()


@expand_primitive("expression-profile-point")
def _expression_profile_point(expr):
    """The profile point of a syntax object (explicit or implicit), or #f.

    Lets meta-programs *transfer* a source expression's point onto the
    code they generate for it (pair with ``annotate-expr``).
    """
    point = core_api.point_of_expr(expr)
    return point if point is not None else False


@expand_primitive("make-profile-point")
def _make_profile_point(base=None):
    if isinstance(base, Syntax):
        base = base.srcloc
    if base is not None and not isinstance(base, (SourceLocation, ProfilePoint)):
        raise EvalError("make-profile-point: bad base")
    return core_api.make_profile_point(base)


@expand_primitive("annotate-expr")
def _annotate_expr(expr, point):
    if not isinstance(expr, Syntax):
        raise EvalError("annotate-expr: expected a syntax object")
    if not isinstance(point, ProfilePoint):
        raise EvalError("annotate-expr: expected a profile point")
    return core_api.annotate_expr(expr, point)


def _decision_labels(value) -> list[str]:
    """Render a trace-decision alternative (datum or list of datums) as
    human-readable labels."""
    if isinstance(value, Syntax):
        value = syntax_to_datum(value)
    if value is NIL or is_scheme_list(value):
        items = pylist_from_scheme(value) if value is not NIL else []
        return [
            write_datum(
                syntax_to_datum(item) if isinstance(item, Syntax) else item
            )
            for item in items
        ]
    return [write_datum(value)]


@expand_primitive("trace-decision")
def _trace_decision(construct, where, chosen, rejected=NIL, note=None):
    """``(trace-decision 'construct stx chosen rejected [note])`` — record a
    profile-guided decision on the ambient tracer.

    A no-op (constructing nothing) when tracing is disabled, so case
    studies call it unconditionally at expand time. ``chosen`` and
    ``rejected`` are datums or lists of datums naming the selected and
    discarded alternatives; the inputs consulted are claimed automatically
    from the ``profile-query`` calls the transformer made since its last
    decision.
    """
    tracer = active_tracer()
    if tracer is None:
        return UNSPECIFIED
    location = where.srcloc if isinstance(where, Syntax) else None
    if isinstance(construct, Syntax):
        construct = syntax_to_datum(construct)
    name = construct.name if isinstance(construct, Symbol) else str(construct)
    note_text = ""
    if note is not None:
        if isinstance(note, Syntax):
            note = syntax_to_datum(note)
        note_text = note if isinstance(note, str) else display_datum(note)
    tracer.decision(
        name,
        "scheme",
        chosen=_decision_labels(chosen),
        rejected=_decision_labels(rejected),
        location=location,
        note=note_text,
    )
    return UNSPECIFIED


@expand_primitive("store-profile")
def _store_profile(filename):
    core_api.store_profile(filename)
    return UNSPECIFIED


@expand_primitive("load-profile")
def _load_profile(filename):
    core_api.load_profile(filename)
    return UNSPECIFIED


# -- environment builders ------------------------------------------------------------------------------------


#: Non-procedure global constants.
_CONSTANTS: dict[str, object] = {"pi": math.pi}


def make_global_env() -> GlobalEnvironment:
    """A fresh run-time global environment with all runtime primitives."""
    env = GlobalEnvironment()
    for name, fn in _RUNTIME.items():
        env.define(Symbol(name), fn)
    for name, value in _CONSTANTS.items():
        env.define(Symbol(name), value)
    return env


def make_expand_env() -> GlobalEnvironment:
    """A fresh expand-time environment: runtime primitives + the
    meta-programming toolkit (syntax accessors and the Figure-4 API)."""
    env = make_global_env()
    for name, fn in _EXPAND_ONLY.items():
        env.define(Symbol(name), fn)
    return env
