"""The profile → optimize → re-run workflow for the Scheme substrate.

A :class:`SchemeSystem` bundles everything one "compiler instance" needs:
an expander (with its binding table and expand-time environment), a run-time
environment, and an ambient profile database. Its methods implement the
paper's workflow:

1. :meth:`profile_run` — compile with instrumentation, run on representative
   input, normalize the counters into a data set of profile weights and
   record it (Section 3.2's Figure 3 merge applies across repeated calls);
2. :meth:`store_profile` / :meth:`load_profile` — the Figure-4 persistence;
3. :meth:`compile` / :meth:`run` — recompile: meta-programs re-expand, now
   seeing the recorded weights through ``profile-query``, and the optimized
   program runs without instrumentation (zero profiling overhead).

``load_library`` installs case-study macro libraries (written in Scheme,
exactly as in the paper's figures) so user programs can use them.
"""

from __future__ import annotations

import contextlib
import os
from dataclasses import dataclass, field

from repro.core.api import register_substrate, using_profile_information
from repro.core.counters import BaseCounterSet, CounterSet
from repro.core.database import ProfileDatabase, source_fingerprint
from repro.core.errors import ProfileError, ProfileFormatError
from repro.core.policy import (
    DegradationLog,
    ProfilePolicy,
    StepBudget,
    degrade,
    using_profile_policy,
)
from repro.core.profile_point import ProfilePoint
from repro.obs.logs import get_logger
from repro.obs.metrics import get_global_metrics
from repro.obs.tracer import maybe_span
from repro.profiling.confidence import annotate_profile_load_span
from repro.profiling.reconstruct import confidence_for_counts
from repro.scheme.compile_py import (
    CODEGEN_VERSION,
    ArtifactCache,
    CompiledArtifact,
    compile_program,
    flavor_for,
)
from repro.scheme.core_forms import Program, unparse_string
from repro.scheme.datum import UNSPECIFIED
from repro.scheme.env import GlobalEnvironment
from repro.scheme.expander import Expander
from repro.scheme.instrument import Instrumenter, ProfileMode
from repro.scheme.interpreter import Interpreter
from repro.scheme.primitives import (
    OutputPort,
    make_expand_env,
    make_global_env,
    set_current_output,
)
from repro.scheme.reader import read_string
from repro.scheme.syntax import Syntax

__all__ = [
    "SchemeSystem",
    "RunResult",
    "SchemeSubstrate",
    "fallback_reason_slug",
]

logger = get_logger(__name__)

_BACKENDS = ("interp", "compile")


def _coerce_backend(name: str) -> str:
    if name not in _BACKENDS:
        raise ValueError(
            f"unknown backend {name!r}; expected one of {', '.join(_BACKENDS)}"
        )
    return name


def fallback_reason_slug(reason: str) -> str:
    """A stable, low-cardinality label value for one fallback reason.

    ``backend_fallbacks_total`` breaks down by these slugs; the full
    human-readable reason stays in the debug log and in ``pgmp verify``'s
    PGMP506 diagnostics (one slug covers e.g. every unsupported constant
    type, so label cardinality stays bounded).
    """
    if reason.startswith("nested define"):
        return "nested-define"
    if reason.startswith("expand-time form"):
        return "expand-time-form"
    if reason.startswith("cannot translate constant"):
        return "untranslatable-constant"
    if reason.startswith("core form"):
        return "unsupported-core-form"
    return "other"


class SchemeSubstrate:
    """Plugs Scheme syntax objects into the generic Figure-4 API."""

    def handles(self, expr: object) -> bool:
        return isinstance(expr, Syntax)

    def point_of(self, expr: object) -> ProfilePoint | None:
        assert isinstance(expr, Syntax)
        return expr.profile_point

    def with_point(self, expr: object, point: ProfilePoint) -> object:
        assert isinstance(expr, Syntax)
        return expr.with_point(point)


register_substrate(SchemeSubstrate())


@dataclass
class RunResult:
    """Everything a (possibly instrumented) run produced."""

    value: object
    output: str
    counters: BaseCounterSet | None = None
    program: Program | None = None

    @property
    def expanded(self) -> str:
        """The expanded core program, pretty-printed (for figure tests)."""
        assert self.program is not None
        return unparse_string(self.program)


class SchemeSystem:
    """A Scheme compiler + runtime with profile-guided meta-programming."""

    def __init__(
        self,
        profile_db: ProfileDatabase | None = None,
        mode: ProfileMode = ProfileMode.EXPR,
        policy: ProfilePolicy | str = ProfilePolicy.STRICT,
        degradations: DegradationLog | None = None,
        backend: str | None = None,
        artifact_cache: ArtifactCache | None = None,
    ) -> None:
        self.profile_db = profile_db if profile_db is not None else ProfileDatabase()
        self.mode = mode
        #: how profile-lifecycle failures behave (strict raises; warn/ignore
        #: fall back to unoptimized behaviour with a recorded reason)
        self.policy = ProfilePolicy.coerce(policy)
        #: every degradation this system took (shared with the caller's log
        #: when one is passed in)
        self.degradations = (
            degradations if degradations is not None else DegradationLog()
        )
        self.expand_env: GlobalEnvironment = make_expand_env()
        self.expander = Expander(self.expand_env)
        self.runtime_env: GlobalEnvironment = make_global_env()
        self._library_sources: list[tuple[str, str]] = []
        #: expand-time output (compile-time warnings) of the last compile().
        self.last_compile_output: str = ""
        #: how programs execute: ``"interp"`` (the closure-compiling
        #: interpreter) or ``"compile"`` (the Python backend of
        #: :mod:`repro.scheme.compile_py`, with interpreter fallback for
        #: untranslatable programs). Overridable per call on :meth:`run`.
        self.backend = _coerce_backend(
            backend
            if backend is not None
            else os.environ.get("PGMP_BACKEND", "interp")
        )
        #: artifact store for :meth:`compile_cached`; in-memory unless the
        #: caller provides a directory-backed cache.
        self.artifact_cache = (
            artifact_cache if artifact_cache is not None else ArtifactCache()
        )

    def _policy_scope(self):
        return using_profile_policy(self.policy, self.degradations)

    # -- building blocks ---------------------------------------------------------

    def read(self, source: str, filename: str = "<string>") -> list[Syntax]:
        return read_string(source, filename)

    def compile(self, source: str, filename: str = "<string>") -> Program:
        """Read and expand ``source``; meta-programs see the ambient profile
        database through ``profile-query``.

        Output produced *at expand time* (e.g. the Perflint-style warnings
        of Section 6.3) is captured in :attr:`last_compile_output`.

        Under a non-strict :attr:`policy`, a profile-data failure during
        expansion (corrupt data surfacing at merge time, a strict query
        miss) falls back to re-expanding against an *empty* database — the
        unoptimized expansion the meta-programs would have produced before
        any profiling — with the reason recorded in :attr:`degradations`.
        """
        port = OutputPort()
        previous = set_current_output(port)
        try:
            with self._policy_scope(), maybe_span(
                "program", filename, substrate="scheme"
            ):
                try:
                    with using_profile_information(self.profile_db):
                        program = self.expander.expand_program(
                            self.read(source, filename)
                        )
                except ProfileError as exc:
                    if self.policy is ProfilePolicy.STRICT:
                        raise
                    degrade(
                        "expand",
                        f"profile data unusable during expansion: {exc}",
                        "re-expanding without profile data (unoptimized)",
                        error=exc,
                    )
                    with using_profile_information(ProfileDatabase()):
                        program = self.expander.expand_program(
                            self.read(source, filename)
                        )
        finally:
            set_current_output(previous)
        self.last_compile_output = port.getvalue()
        get_global_metrics().inc("expansions_total")
        logger.debug("expanded %s (%d forms)", filename, len(program.forms))
        return program

    def run(
        self,
        program: Program,
        instrument: ProfileMode | None = None,
        echo: bool = False,
        counters: BaseCounterSet | None = None,
        backend: str | None = None,
        budget: StepBudget | None = None,
        sample_stride: int | None = None,
    ) -> RunResult:
        """Evaluate a compiled program, optionally instrumented.

        ``counters`` lets callers supply the counter sink — e.g. one
        :class:`~repro.core.counters.ShardedCounterSet` shared by several
        interpreter threads executing the same instrumented program.

        ``backend`` overrides the system backend for this run; under
        ``"compile"`` the program runs as a compiled artifact (memoized on
        the Program, per flavor) with identical values, output, counters,
        and budget charges, falling back to the interpreter — counted in
        ``backend_fallbacks_total`` — when it cannot be translated.

        ``sample_stride`` sets the per-point sampling gate's stride for
        ``ProfileMode.SAMPLE`` runs (ignored under other modes); sampled
        runs are traced with ``sample`` spans instead of ``instrument``.
        """
        instrumenter: Instrumenter | None = None
        if instrument is not None:
            if counters is None:
                counters = CounterSet(name="run")
            instrumenter = Instrumenter(
                counters,
                instrument,
                sample_stride=sample_stride if sample_stride is not None else 10,
            )
        else:
            counters = None
        port = OutputPort()
        port.echo = echo
        previous = set_current_output(port)
        if instrument is None:
            span = contextlib.nullcontext()
        elif instrument is ProfileMode.SAMPLE:
            span = maybe_span(
                "sample",
                "sampled-run",
                mode=instrument.value,
                stride=instrumenter.sample_stride if instrumenter else 0,
            )
        else:
            span = maybe_span("instrument", "instrumented-run", mode=instrument.value)
        try:
            with self._policy_scope(), using_profile_information(
                self.profile_db
            ), span:
                value = self._execute(
                    program,
                    instrumenter,
                    budget,
                    _coerce_backend(backend) if backend is not None else self.backend,
                )
        finally:
            set_current_output(previous)
        return RunResult(value=value, output=port.getvalue(), counters=counters, program=program)

    def _execute(
        self,
        program: Program,
        instrumenter: Instrumenter | None,
        budget: StepBudget | None,
        backend: str,
    ) -> object:
        if backend == "compile":
            artifact = self._artifact_for(
                program, instrumenter is not None, budget is not None
            )
            if artifact.runnable:
                return artifact.execute(self.runtime_env, instrumenter, budget)
            metrics = get_global_metrics()
            metrics.inc("backend_fallbacks_total")
            metrics.inc_labeled(
                "backend_fallbacks_total",
                {"reason": fallback_reason_slug(artifact.unsupported_reason)},
            )
            logger.debug(
                "compiled backend fell back to the interpreter: %s",
                artifact.unsupported_reason,
            )
        return Interpreter(self.runtime_env, instrumenter, budget).run_program(
            program
        )

    def _artifact_for(
        self, program: Program, instrumented: bool, budgeted: bool
    ) -> CompiledArtifact:
        """The per-Program, per-flavor artifact memo (no cross-run keying —
        a Program object's forms never change once expanded)."""
        flavor = flavor_for(instrumented, budgeted)
        artifact = program.artifacts.get(flavor)
        if artifact is None:
            artifact = compile_program(program, "<program>", flavor)
            if artifact.runnable:
                get_global_metrics().inc("artifact_compiles_total")
            program.artifacts[flavor] = artifact
        return artifact

    # -- the profile-keyed artifact cache -----------------------------------------

    def artifact_key(
        self, source: str, flavor: str = "plain"
    ) -> tuple[str, str, str, int]:
        """What a cached artifact's validity depends on, and nothing else:

        * the fingerprint of every input to expansion (loaded libraries,
          in order, plus the program source);
        * the merged-profile fingerprint, which moves with the database's
          generation counter — any record/clear/hot-swap that changes
          effective weights changes the key, because meta-programs may
          expand differently under the new profile;
        * the artifact flavor and codegen version.
        """
        texts = [text for text, _ in self._library_sources]
        texts.append(source)
        return (
            source_fingerprint("\x00".join(texts)),
            self.profile_db.merged_fingerprint(),
            flavor,
            CODEGEN_VERSION,
        )

    def compile_cached(
        self,
        source: str,
        filename: str = "<string>",
        flavor: str = "plain",
        cache: ArtifactCache | None = None,
    ) -> CompiledArtifact:
        """Expand + translate ``source``, reusing a cached artifact when the
        ``(source fingerprint, profile generation)`` world is unchanged.

        A hit performs **zero** re-expansions (``expansions_total`` does
        not move); a miss compiles and populates the cache. Both outcomes
        are traced (``artifact_cache`` spans) and counted
        (``artifact_cache_{hits,misses}_total``).
        """
        cache = cache if cache is not None else self.artifact_cache
        key = self.artifact_key(source, flavor)
        metrics = get_global_metrics()
        artifact = cache.get(key)
        if artifact is not None:
            metrics.inc("artifact_cache_hits_total")
            with maybe_span(
                "artifact_cache",
                filename,
                outcome="hit",
                flavor=flavor,
                source_fp=key[0],
                profile_fp=key[1],
            ):
                pass
            return artifact
        metrics.inc("artifact_cache_misses_total")
        with maybe_span(
            "artifact_cache",
            filename,
            outcome="miss",
            flavor=flavor,
            source_fp=key[0],
            profile_fp=key[1],
        ):
            program = self.compile(source, filename)
            artifact = compile_program(
                program,
                filename,
                flavor,
                expansion_text=unparse_string(program),
                compile_output=self.last_compile_output,
                key=key,
            )
            if artifact.runnable:
                metrics.inc("artifact_compiles_total")
            cache.put(artifact)
        return artifact

    # -- user-facing workflow ------------------------------------------------------

    def load_library(self, source: str, filename: str = "<library>") -> None:
        """Install a macro/procedure library: expand it (macros persist in
        the binding table) and evaluate its definitions into both the
        run-time and expand-time environments."""
        self._library_sources.append((source, filename))
        program = self.compile(source, filename)
        # Library procedures are on the hot path of every later run, so
        # they go through the configured backend too: under "compile" a
        # library's defines become real Python functions instead of
        # interpreted closures.
        with self._policy_scope(), using_profile_information(self.profile_db):
            self._execute(program, None, None, self.backend)
        # Library procedures are frequently also needed at expand time
        # (e.g. helpers used by transformers); mirror their definitions.
        from repro.scheme.core_forms import Define

        for form in program.forms:
            if isinstance(form, Define):
                self.expand_env.define(
                    form.unique, self.runtime_env.lookup(form.unique)
                )

    def run_source(
        self,
        source: str,
        filename: str = "<string>",
        instrument: ProfileMode | None = None,
        echo: bool = False,
        counters: BaseCounterSet | None = None,
        sample_stride: int | None = None,
    ) -> RunResult:
        return self.run(
            self.compile(source, filename),
            instrument,
            echo,
            counters,
            sample_stride=sample_stride,
        )

    def profile_run(
        self,
        source: str,
        filename: str = "<string>",
        mode: ProfileMode | None = None,
        importance: float = 1.0,
        counters: BaseCounterSet | None = None,
        sample_stride: int | None = None,
    ) -> RunResult:
        """One instrumented run on representative input: compile with
        instrumentation, run, normalize counters to weights, and record the
        data set in the ambient database.

        The data set is fingerprinted against ``source``, so a later
        ``load_profile(..., sources=...)`` can tell when the profile was
        collected against code that has since changed. Under
        ``ProfileMode.SAMPLE`` the recorded data set carries a
        :class:`~repro.profiling.confidence.DatasetConfidence` record
        (the counts are already stride-scaled, hence unbiased), and the
        run is counted in ``samples_total``/``sampled_datasets_total``.
        """
        effective_mode = mode or self.mode
        result = self.run_source(
            source,
            filename,
            instrument=effective_mode,
            counters=counters,
            sample_stride=sample_stride,
        )
        assert result.counters is not None
        confidence = None
        if effective_mode is ProfileMode.SAMPLE:
            stride = sample_stride if sample_stride is not None else 10
            confidence = confidence_for_counts(result.counters, stride)
            metrics = get_global_metrics()
            metrics.inc("samples_total", confidence.samples)
            metrics.inc("sampled_datasets_total")
        self.profile_db.record_counters(
            result.counters,
            importance,
            fingerprints={filename: source_fingerprint(source)},
            confidence=confidence,
        )
        return result

    def store_profile(self, path: str | os.PathLike[str]) -> None:
        """``(store-profile f)`` for this system's database."""
        self.profile_db.store(path)

    def load_profile(
        self,
        path: str | os.PathLike[str],
        sources: dict[str, str] | None = None,
    ) -> None:
        """``(load-profile f)``: replace this system's database from a file.

        ``sources`` maps filenames to their current source text for
        staleness detection. Under a strict :attr:`policy` any malformed or
        stale data set raises; under ``warn``/``ignore`` bad data sets are
        quarantined (or, if the file is corrupt beyond salvage, the system
        continues with an empty database) and the reason is recorded in
        :attr:`degradations`.
        """
        with maybe_span("profile_load", str(path)) as span:
            if self.policy is ProfilePolicy.STRICT:
                self.profile_db = ProfileDatabase.load(path, sources=sources)
                annotate_profile_load_span(span, self.profile_db)
                return
            try:
                db = ProfileDatabase.load(path, on_error="skip", sources=sources)
            except (ProfileFormatError, OSError) as exc:
                degrade(
                    "load-profile",
                    f"{path}: {exc}",
                    "continuing with an empty profile database (unoptimized)",
                    policy=self.policy,
                    log=self.degradations,
                )
                self.profile_db = ProfileDatabase()
                return
            for entry in db.quarantine:
                degrade(
                    "load-profile",
                    f"{path}: {entry}",
                    "quarantined the data set; loaded the rest",
                    policy=self.policy,
                    log=self.degradations,
                )
            self.profile_db = db
            annotate_profile_load_span(span, db)
        logger.info("loaded profile %s", path)

    def hot_swap_profile(self, db: ProfileDatabase) -> ProfileDatabase:
        """Atomically replace the ambient database; returns the old one.

        The online-recompilation entry point
        (:mod:`repro.service.controller`): a single reference assignment,
        so compiles racing with the swap see either the old or the new
        database in full — never a mixture. In-flight expansions keep the
        database they started with (they read it through
        ``using_profile_information`` scopes).
        """
        previous = self.profile_db
        self.profile_db = db
        return previous

    def analyze(
        self,
        source: str,
        filename: str = "<string>",
        sources: dict[str, str] | None = None,
    ):
        """Opt-in static analysis of ``source`` (the ``pgmp lint`` passes).

        Runs the effects/exclusivity and coverage passes over the read
        syntax, the profile-point hygiene and determinism passes over the
        expansion (against this system's loaded libraries and ambient
        database), and the staleness pass over :attr:`profile_db`. Returns
        an :class:`repro.analysis.AnalysisReport`; nothing is executed and
        no state of this system is modified.
        """
        from repro.analysis.scheme_passes import analyze_scheme_source

        return analyze_scheme_source(
            source, filename, system=self, db=self.profile_db, sources=sources
        )

    def fresh_runtime(self) -> None:
        """Discard run-time state (top-level definitions) between runs,
        then re-install loaded libraries."""
        self.runtime_env = make_global_env()
        libraries = list(self._library_sources)
        self._library_sources.clear()
        for source, filename in libraries:
            self.load_library(source, filename)
