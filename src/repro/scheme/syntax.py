"""Syntax objects: source expressions with locations, scopes, profile points.

A :class:`Syntax` wraps a datum whose compound structure (pairs, vectors)
contains further :class:`Syntax` nodes, mirroring Chez Scheme and Racket
syntax objects. Every node carries:

* a :class:`~repro.core.srcloc.SourceLocation` — the *source object* the
  reader attached (Section 4.1: "The Chez Scheme reader automatically
  creates and attaches source objects to each syntax object it reads");
* a set of hygiene scopes (see :mod:`repro.scheme.hygiene`);
* an optional explicit :class:`~repro.core.profile_point.ProfilePoint`,
  set by ``annotate-expr`` and overriding the implicit location-derived
  point.

The profile point of a node is therefore ``explicit point if set, else the
implicit point of its source location`` — giving the paper's fine-grained
"each node in the AST … associated with a unique profile point" for free,
while letting meta-programs re-associate generated code.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.profile_point import ProfilePoint
from repro.core.srcloc import UNKNOWN_LOCATION, SourceLocation
from repro.scheme.datum import (
    NIL,
    Char,
    Pair,
    SchemeVector,
    Symbol,
    write_datum,
)

__all__ = [
    "Syntax",
    "syntax_to_datum",
    "datum_to_syntax",
    "syntax_list",
    "syntax_pylist",
    "is_identifier",
    "strip_all",
]

ScopeSet = frozenset

EMPTY_SCOPES: frozenset[int] = frozenset()


class Syntax:
    """One node of a source expression."""

    __slots__ = ("datum", "srcloc", "scopes", "explicit_point")

    def __init__(
        self,
        datum: object,
        srcloc: SourceLocation = UNKNOWN_LOCATION,
        scopes: frozenset[int] = EMPTY_SCOPES,
        explicit_point: ProfilePoint | None = None,
    ) -> None:
        self.datum = datum
        self.srcloc = srcloc
        self.scopes = scopes
        self.explicit_point = explicit_point

    # -- profile-point protocol (consumed by repro.core.api) -------------------

    @property
    def profile_point(self) -> ProfilePoint | None:
        """The profile point this expression bumps when profiled.

        ``annotate-expr`` sets an explicit point; otherwise any node read
        from a real file gets the implicit point of its source location.
        Nodes with no usable location (e.g. raw ``datum->syntax`` output)
        have no point and are not profiled.
        """
        if self.explicit_point is not None:
            return self.explicit_point
        if self.srcloc is UNKNOWN_LOCATION or self.srcloc.filename == "<unknown>":
            return None
        return ProfilePoint.for_location(self.srcloc)

    def with_point(self, point: ProfilePoint) -> "Syntax":
        """A copy associated with ``point`` (replacing any prior point)."""
        return Syntax(self.datum, self.srcloc, self.scopes, explicit_point=point)

    # -- scope manipulation (hygiene) -------------------------------------------

    def add_scope(self, scope: int) -> "Syntax":
        """Recursively add ``scope`` to this node and all children."""
        return self._map_scopes(lambda s: s | {scope})

    def remove_scope(self, scope: int) -> "Syntax":
        return self._map_scopes(lambda s: s - {scope})

    def flip_scope(self, scope: int) -> "Syntax":
        """Recursively toggle ``scope`` (the sets-of-scopes 'flip')."""
        return self._map_scopes(lambda s: s ^ {scope})

    def _map_scopes(self, f) -> "Syntax":
        new_scopes = f(self.scopes)
        datum = self.datum
        if isinstance(datum, Pair):
            new_datum = _map_pair_scopes(datum, f)
        elif isinstance(datum, SchemeVector):
            new_datum = SchemeVector(
                [x._map_scopes(f) if isinstance(x, Syntax) else x for x in datum]
            )
        else:
            new_datum = datum
        return Syntax(new_datum, self.srcloc, new_scopes, self.explicit_point)

    # -- structure accessors ------------------------------------------------------

    def is_pair(self) -> bool:
        return isinstance(self.datum, Pair)

    def is_null(self) -> bool:
        return self.datum is NIL

    def is_symbol(self) -> bool:
        return isinstance(self.datum, Symbol)

    @property
    def symbol_name(self) -> str:
        assert isinstance(self.datum, Symbol)
        return self.datum.name

    def head_symbol(self) -> Symbol | None:
        """The leading symbol of a compound form, if any."""
        if isinstance(self.datum, Pair):
            car = self.datum.car
            if isinstance(car, Syntax) and isinstance(car.datum, Symbol):
                return car.datum
        return None

    def __repr__(self) -> str:
        return f"#<syntax {write_datum(syntax_to_datum(self))} @{self.srcloc}>"


def _map_pair_scopes(pair: Pair, f) -> Pair:
    # Iterative along the cdr spine to handle long lists without recursion.
    items: list[object] = []
    node: object = pair
    while isinstance(node, Pair):
        car = node.car
        items.append(car._map_scopes(f) if isinstance(car, Syntax) else car)
        node = node.cdr
    if isinstance(node, Syntax):
        tail: object = node._map_scopes(f)
    else:
        tail = node  # NIL
    for item in reversed(items):
        tail = Pair(item, tail)
    return tail  # type: ignore[return-value]


def syntax_to_datum(stx: object) -> object:
    """Recursively strip syntax wrappers, yielding a plain datum."""
    if isinstance(stx, Syntax):
        return syntax_to_datum(stx.datum)
    if isinstance(stx, Pair):
        items: list[object] = []
        node: object = stx
        while isinstance(node, Pair):
            items.append(syntax_to_datum(node.car))
            node = node.cdr
        tail = syntax_to_datum(node)
        for item in reversed(items):
            tail = Pair(item, tail)
        return tail
    if isinstance(stx, SchemeVector):
        return SchemeVector([syntax_to_datum(x) for x in stx])
    return stx


def datum_to_syntax(
    datum: object,
    context: Syntax | None = None,
    srcloc: SourceLocation | None = None,
) -> Syntax:
    """Wrap a plain datum as syntax, copying scopes from ``context``.

    Mirrors Scheme's ``datum->syntax``: the context identifier determines the
    hygiene scopes of the new syntax (so the result resolves as if it
    appeared where the context did). ``srcloc`` defaults to the context's.
    """
    scopes = context.scopes if context is not None else EMPTY_SCOPES
    loc = srcloc if srcloc is not None else (
        context.srcloc if context is not None else UNKNOWN_LOCATION
    )

    def wrap(d: object) -> Syntax:
        if isinstance(d, Syntax):
            return d  # already syntax; keep its identity (scopes, location)
        if isinstance(d, Pair):
            items: list[object] = []
            node: object = d
            while isinstance(node, Pair):
                items.append(wrap(node.car))
                node = node.cdr
            if node is NIL:
                tail: object = NIL
            elif isinstance(node, Syntax):
                tail = node
            else:
                tail = wrap(node)
            for item in reversed(items):
                tail = Pair(item, tail)
            return Syntax(tail, loc, scopes)
        if isinstance(d, SchemeVector):
            return Syntax(SchemeVector([wrap(x) for x in d]), loc, scopes)
        return Syntax(d, loc, scopes)

    return wrap(datum)


def syntax_list(stx: Syntax) -> Iterator[Syntax]:
    """Iterate the syntax elements of a proper syntax list.

    The spine may mix bare pairs and syntax-wrapped pairs (as produced by
    templates); both are handled. Raises ``TypeError`` for improper lists.
    """
    node: object = stx
    while True:
        if isinstance(node, Syntax):
            node = node.datum
            continue
        if isinstance(node, Pair):
            car = node.car
            yield car if isinstance(car, Syntax) else datum_to_syntax(car)
            node = node.cdr
            continue
        if node is NIL:
            return
        raise TypeError(f"improper syntax list (tail {node!r})")


def syntax_pylist(stx: Syntax) -> list[Syntax]:
    return list(syntax_list(stx))


def is_identifier(stx: object) -> bool:
    return isinstance(stx, Syntax) and isinstance(stx.datum, Symbol)


def strip_all(value: object) -> object:
    """Strip syntax wrappers from arbitrary nested values (for printing)."""
    if isinstance(value, (Syntax, Pair, SchemeVector)):
        return syntax_to_datum(value)
    return value
