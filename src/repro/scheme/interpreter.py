"""The Scheme evaluator: closure compilation of core forms, with profiling.

The interpreter compiles the typed core AST of
:mod:`repro.scheme.core_forms` into trees of Python closures ("closure
compilation" — each node becomes a ``step(env) -> value`` function), then
runs them. This keeps per-node dispatch out of the hot loop and gives the
profiler a natural seam: when instrumentation is on, a node's step is
wrapped with a pre-bound counter bump, the moral equivalent of the single
memory increment Chez Scheme's block-level counters cost.

Tail calls are implemented with a trampoline: a step compiled in tail
position may return a :class:`TailCall` sentinel, unwound by the nearest
:func:`apply_procedure` loop, so Scheme loops written as tail recursion run
in constant Python stack space.

The same interpreter executes *expand-time* code (macro transformers,
``syntax-case`` matching, template instantiation) and *run-time* code — the
substrate is meta-circular in the same way Chez and Racket are.
"""

from __future__ import annotations

import sys

from repro.core.errors import EvalError, SchemeRecursionError
from repro.core.policy import StepBudget
from repro.scheme import patterns, template
from repro.scheme.core_forms import (
    App,
    Begin,
    Const,
    CoreExpr,
    Define,
    If,
    Lambda,
    Program,
    Ref,
    SetBang,
    SyntaxCaseExpr,
    TemplateExpr,
)
from repro.scheme.datum import UNSPECIFIED, Symbol, write_datum
from repro.scheme.env import Environment, GlobalEnvironment
from repro.scheme.instrument import Instrumenter
from repro.scheme.syntax import Syntax, datum_to_syntax, syntax_to_datum

__all__ = [
    "Closure",
    "TailCall",
    "Interpreter",
    "apply_procedure",
]

# Tail calls are iterative (the trampoline below), but each *non-tail*
# Scheme frame costs several Python frames, so deep non-tail recursion needs
# more headroom than CPython's default ~1000.
if sys.getrecursionlimit() < 100_000:
    sys.setrecursionlimit(100_000)


class TailCall:
    """Sentinel returned by tail-position applications."""

    __slots__ = ("proc", "args")

    def __init__(self, proc: object, args: list[object]) -> None:
        self.proc = proc
        self.args = args


class Closure:
    """A user-level Scheme procedure."""

    __slots__ = ("params", "rest", "body", "env", "name")

    def __init__(
        self,
        params: list[Symbol],
        rest: Symbol | None,
        body: list,
        env,
        name: str,
    ) -> None:
        self.params = params
        self.rest = rest
        self.body = body
        self.env = env
        self.name = name

    def bind(self, args: list[object]) -> Environment:
        nparams = len(self.params)
        if self.rest is None:
            if len(args) != nparams:
                raise EvalError(
                    f"{self.name}: expected {nparams} arguments, got {len(args)}"
                )
            frame = dict(zip(self.params, args))
        else:
            if len(args) < nparams:
                raise EvalError(
                    f"{self.name}: expected at least {nparams} arguments, "
                    f"got {len(args)}"
                )
            frame = dict(zip(self.params, args[:nparams]))
            from repro.scheme.datum import scheme_list

            frame[self.rest] = scheme_list(*args[nparams:])
        return Environment(frame, self.env)

    def __repr__(self) -> str:
        return f"#<procedure {self.name}>"


def apply_procedure(proc: object, args: list[object]) -> object:
    """Apply a Scheme or Python procedure, unwinding tail calls."""
    while True:
        if isinstance(proc, Closure):
            env = proc.bind(args)
            body = proc.body
            for step in body[:-1]:
                step(env)
            result = body[-1](env)
            if type(result) is TailCall:
                proc = result.proc
                args = result.args
                continue
            return result
        if callable(proc):
            result = proc(*args)
            if type(result) is TailCall:
                proc = result.proc
                args = result.args
                continue
            return result
        raise EvalError(f"attempt to apply non-procedure: {write_datum(proc)}")


class Interpreter:
    """Compiles and runs core programs against a global environment."""

    def __init__(
        self,
        global_env: GlobalEnvironment,
        instrumenter: Instrumenter | None = None,
        budget: StepBudget | None = None,
    ) -> None:
        self.global_env = global_env
        self.instrumenter = instrumenter
        #: optional fuel: every evaluated node charges one step, so a
        #: runaway run raises StepBudgetExceeded instead of hanging —
        #: the per-pass timeout of the resumable three-pass workflow.
        self.budget = budget

    # -- public entry points -----------------------------------------------------

    def run_program(self, program: Program) -> object:
        """Compile and evaluate each top-level form; value of the last."""
        result: object = UNSPECIFIED
        for form in program.forms:
            result = self.run_top_form(form)
        return result

    def run_top_form(self, form: CoreExpr) -> object:
        try:
            if isinstance(form, Define):
                step = self.compile(form.expr, tail=False)
                value = self._trampoline(step(self.global_env))
                if isinstance(value, Closure) and value.name == "lambda":
                    value.name = form.source_name or form.unique.name
                self.global_env.define(form.unique, value)
                return UNSPECIFIED
            step = self.compile(form, tail=False)
            return self._trampoline(step(self.global_env))
        except RecursionError:
            # Backstop for stack exhaustion outside any application frame
            # (e.g. compiling a pathologically deep expression). Inner
            # do_app frames convert first and carry their srcloc.
            raise SchemeRecursionError.at(None) from None

    def eval_expr(self, expr: CoreExpr, env=None) -> object:
        step = self.compile(expr, tail=False)
        return self._trampoline(step(env if env is not None else self.global_env))

    @staticmethod
    def _trampoline(result: object) -> object:
        while type(result) is TailCall:
            result = apply_procedure(result.proc, result.args)
        return result

    # -- compilation ----------------------------------------------------------------

    def compile(self, expr: CoreExpr, tail: bool):
        """Compile ``expr`` to a step function; ``tail`` marks tail position."""
        step = self._compile_node(expr, tail)
        if self.instrumenter is not None:
            bump = self.instrumenter.hook(expr)
            if bump is not None:
                inner = step

                def instrumented(env, _bump=bump, _inner=inner):
                    _bump()
                    return _inner(env)

                step = instrumented
        if self.budget is not None:
            fueled = step

            def budgeted(env, _charge=self.budget.charge, _inner=fueled):
                _charge()
                return _inner(env)

            step = budgeted
        return step

    def _compile_node(self, expr: CoreExpr, tail: bool):
        if isinstance(expr, Const):
            value = expr.value
            return lambda env: value

        if isinstance(expr, Ref):
            name = expr.unique
            return lambda env: env.lookup(name)

        if isinstance(expr, SetBang):
            name = expr.unique
            value_step = self.compile(expr.expr, tail=False)

            def do_set(env):
                env.assign(name, self._trampoline(value_step(env)))
                return UNSPECIFIED

            return do_set

        if isinstance(expr, If):
            test_step = self.compile(expr.test, tail=False)
            then_step = self.compile(expr.then, tail=tail)
            else_step = self.compile(expr.otherwise, tail=tail)

            def do_if(env):
                if self._trampoline(test_step(env)) is not False:
                    return then_step(env)
                return else_step(env)

            return do_if

        if isinstance(expr, Lambda):
            body_steps = [self.compile(b, tail=False) for b in expr.body[:-1]]
            body_steps.append(self.compile(expr.body[-1], tail=True))
            params = expr.params
            rest = expr.rest
            name = expr.name

            def make_closure(env):
                return Closure(params, rest, body_steps, env, name)

            return make_closure

        if isinstance(expr, Begin):
            if not expr.exprs:
                return lambda env: UNSPECIFIED
            init_steps = [self.compile(e, tail=False) for e in expr.exprs[:-1]]
            last_step = self.compile(expr.exprs[-1], tail=tail)

            def do_begin(env):
                for step in init_steps:
                    self._trampoline(step(env))
                return last_step(env)

            return do_begin

        if isinstance(expr, App):
            fn_step = self.compile(expr.fn, tail=False)
            arg_steps = [self.compile(a, tail=False) for a in expr.args]
            trampoline = self._trampoline

            if tail:

                def do_tail_app(env):
                    proc = trampoline(fn_step(env))
                    args = [trampoline(s(env)) for s in arg_steps]
                    return TailCall(proc, args)

                return do_tail_app

            srcloc = expr.stx.srcloc if expr.stx is not None else None

            def do_app(env):
                proc = trampoline(fn_step(env))
                args = [trampoline(s(env)) for s in arg_steps]
                try:
                    return apply_procedure(proc, args)
                except EvalError as exc:
                    # Attach the innermost source location once, so run-time
                    # failures point at the offending call site.
                    if srcloc is not None and not getattr(exc, "located", False):
                        exc.located = True  # type: ignore[attr-defined]
                        exc.args = (f"{exc.args[0]} (at {srcloc})",) + exc.args[1:]
                    raise
                except RecursionError:
                    # Deep non-tail recursion: report a structured Scheme
                    # error at the innermost call site, not a raw Python
                    # RecursionError (mirrors StepBudgetExceeded).
                    raise SchemeRecursionError.at(srcloc) from None

            return do_app

        if isinstance(expr, Define):
            raise EvalError("define is only legal at top level or in bodies")

        if isinstance(expr, SyntaxCaseExpr):
            return self._compile_syntax_case(expr, tail)

        if isinstance(expr, TemplateExpr):
            return self._compile_template(expr)

        raise EvalError(f"cannot compile core form {type(expr).__name__}")

    # -- syntax-case / templates at (expand-time) runtime -----------------------------

    def _compile_syntax_case(self, expr: SyntaxCaseExpr, tail: bool):
        subject_step = self.compile(expr.subject, tail=False)
        literals = expr.literals
        compiled_clauses = []
        for clause in expr.clauses:
            fender_step = (
                self.compile(clause.fender, tail=False)
                if clause.fender is not None
                else None
            )
            body_step = self.compile(clause.body, tail=tail)
            compiled_clauses.append((clause.pattern, clause.pvars, fender_step, body_step))
        trampoline = self._trampoline

        def do_syntax_case(env):
            subject = trampoline(subject_step(env))
            if not isinstance(subject, Syntax):
                subject = datum_to_syntax(subject)
            for pattern, pvars, fender_step, body_step in compiled_clauses:
                match = patterns.match_pattern(pattern, subject, literals)
                if match is None:
                    continue
                frame = {
                    unique: (depth, match[name])
                    for name, (unique, depth) in pvars.items()
                }
                clause_env = Environment(frame, env)
                if fender_step is not None:
                    if trampoline(fender_step(clause_env)) is False:
                        continue
                return body_step(clause_env)
            raise EvalError(
                f"syntax-case: no clause matches "
                f"{write_datum(syntax_to_datum(subject))}"
            )

        return do_syntax_case

    def _compile_template(self, expr: TemplateExpr):
        tmpl = expr.template
        pvars = expr.pvars
        hole_steps = {
            name: (self.compile(hexpr, tail=False), splicing)
            for name, (hexpr, splicing) in expr.holes.items()
        }
        trampoline = self._trampoline

        def do_template(env):
            tenv: dict[str, tuple[int, object]] = {}
            for name, (unique, _depth) in pvars.items():
                depth, value = env.lookup(unique)
                tenv[name] = (depth, value)
            for name, (step, splicing) in hole_steps.items():
                value = trampoline(step(env))
                if splicing:
                    tenv[name] = (0, template.Splice(_splice_items(value)))
                else:
                    tenv[name] = (0, value)
            return template.instantiate_template(tmpl, tenv)

        return do_template


def _splice_items(value: object) -> list:
    """Coerce a ``#,@`` value to a list of elements to splice."""
    from repro.scheme.datum import NIL, Pair
    from repro.scheme.syntax import Syntax as _Syntax

    if isinstance(value, list):
        return value
    items: list[object] = []
    node = value
    while True:
        if isinstance(node, _Syntax):
            node = node.datum
            continue
        if isinstance(node, Pair):
            items.append(node.car)
            node = node.cdr
            continue
        if node is NIL:
            return items
        raise EvalError(
            f"unsyntax-splicing value is not a list: {write_datum(value)}"
        )
