r"""S-expression reader producing syntax objects with source locations.

This is the substrate's analogue of the Chez Scheme / Racket readers: every
syntax object it produces carries a precise :class:`SourceLocation`
(filename + character span + line/column), which in turn determines the
expression's implicit profile point (Section 4.1 of the paper).

Supported surface syntax:

* symbols, integers, rationals (``1/2``), floats, ``#t``/``#f``/``#true``/``#false``
* strings with the usual escapes; characters ``#\\a``, ``#\\space``, ``#\\tab`` …
* proper and dotted lists with ``()``, ``[]`` interchangeable
* vectors ``#(...)``
* quotation sugar: ``'`` ``\`` `` ``,`` ``,@`` and the syntax layer
  ``#'`` ``#\``` ``#,`` ``#,@`` (quote, quasiquote, unquote,
  unquote-splicing / syntax, quasisyntax, unsyntax, unsyntax-splicing)
* comments: ``;`` line comments, ``#| ... |#`` nested block comments, and
  ``#;`` datum comments
"""

from __future__ import annotations

from fractions import Fraction

from repro.core.errors import ReaderError
from repro.core.srcloc import SourceLocation
from repro.scheme.datum import NIL, Char, Pair, SchemeVector, Symbol
from repro.scheme.syntax import Syntax

__all__ = ["Reader", "read_string", "read_file", "read_one"]

_DELIMITERS = set("()[]\";'`,")
_WHITESPACE = set(" \t\n\r\f\v")

_ABBREVS = {
    "'": "quote",
    "`": "quasiquote",
    ",": "unquote",
    ",@": "unquote-splicing",
    "#'": "syntax",
    "#`": "quasisyntax",
    "#,": "unsyntax",
    "#,@": "unsyntax-splicing",
}

_STRING_ESCAPES = {
    "n": "\n",
    "t": "\t",
    "r": "\r",
    "a": "\a",
    "b": "\b",
    "f": "\f",
    "v": "\v",
    "0": "\0",
    '"': '"',
    "\\": "\\",
}


class Reader:
    """A stateful reader over one source text."""

    def __init__(self, text: str, filename: str = "<string>") -> None:
        self.text = text
        self.filename = filename
        self.pos = 0
        self.line = 1
        self.column = 0

    # -- character-level helpers ------------------------------------------------

    def _peek(self, ahead: int = 0) -> str:
        i = self.pos + ahead
        return self.text[i] if i < len(self.text) else ""

    def _advance(self) -> str:
        ch = self.text[self.pos]
        self.pos += 1
        if ch == "\n":
            self.line += 1
            self.column = 0
        else:
            self.column += 1
        return ch

    def _error(self, message: str) -> ReaderError:
        return ReaderError(message, self.filename, self.line, self.column)

    def _mark(self) -> tuple[int, int, int]:
        return (self.pos, self.line, self.column)

    def _location(self, mark: tuple[int, int, int]) -> SourceLocation:
        start, line, column = mark
        return SourceLocation(
            filename=self.filename,
            start=start,
            end=self.pos,
            line=line,
            column=column,
        )

    # -- skipping ----------------------------------------------------------------

    def _skip_atmosphere(self) -> None:
        """Skip whitespace and all three comment forms."""
        while self.pos < len(self.text):
            ch = self._peek()
            if ch in _WHITESPACE:
                self._advance()
            elif ch == ";":
                while self.pos < len(self.text) and self._peek() != "\n":
                    self._advance()
            elif ch == "#" and self._peek(1) == "|":
                self._skip_block_comment()
            elif ch == "#" and self._peek(1) == ";":
                self._advance()
                self._advance()
                self._skip_atmosphere()
                if self._at_eof():
                    raise self._error("#; datum comment at end of input")
                self.read()  # discard one datum
            else:
                return

    def _skip_block_comment(self) -> None:
        self._advance()  # '#'
        self._advance()  # '|'
        depth = 1
        while depth > 0:
            if self.pos >= len(self.text):
                raise self._error("unterminated block comment")
            if self._peek() == "#" and self._peek(1) == "|":
                self._advance()
                self._advance()
                depth += 1
            elif self._peek() == "|" and self._peek(1) == "#":
                self._advance()
                self._advance()
                depth -= 1
            else:
                self._advance()

    def _at_eof(self) -> bool:
        return self.pos >= len(self.text)

    # -- reading ------------------------------------------------------------------

    def read_all(self) -> list[Syntax]:
        """Read every datum in the text."""
        forms: list[Syntax] = []
        while True:
            self._skip_atmosphere()
            if self._at_eof():
                return forms
            forms.append(self.read())

    def read(self) -> Syntax:
        """Read exactly one datum (atmosphere must already be skipped or will
        be skipped here)."""
        self._skip_atmosphere()
        if self._at_eof():
            raise self._error("unexpected end of input")
        mark = self._mark()
        ch = self._peek()

        if ch in "([":
            return self._read_list(mark, ")" if ch == "(" else "]")
        if ch in ")]":
            raise self._error(f"unexpected {ch!r}")
        if ch == '"':
            return self._read_string(mark)
        if ch == "'":
            self._advance()
            return self._read_abbrev(mark, "quote")
        if ch == "`":
            self._advance()
            return self._read_abbrev(mark, "quasiquote")
        if ch == ",":
            self._advance()
            if self._peek() == "@":
                self._advance()
                return self._read_abbrev(mark, "unquote-splicing")
            return self._read_abbrev(mark, "unquote")
        if ch == "#":
            return self._read_hash(mark)
        return self._read_atom(mark)

    def _read_abbrev(self, mark: tuple[int, int, int], which: str) -> Syntax:
        inner = self.read()
        loc = self._location(mark)
        head = Syntax(Symbol(which), loc)
        return Syntax(Pair(head, Pair(inner, NIL)), loc)

    def _read_list(self, mark: tuple[int, int, int], closer: str) -> Syntax:
        self._advance()  # opening bracket
        items: list[Syntax] = []
        tail: object = NIL
        while True:
            self._skip_atmosphere()
            if self._at_eof():
                raise self._error(f"unterminated list (expected {closer!r})")
            ch = self._peek()
            if ch in ")]":
                if ch != closer:
                    raise self._error(
                        f"mismatched bracket: expected {closer!r}, got {ch!r}"
                    )
                self._advance()
                break
            if ch == "." and self._is_delimiter(self._peek(1)):
                if not items:
                    raise self._error("dotted pair with no car")
                self._advance()
                tail = self.read()
                self._skip_atmosphere()
                if self._at_eof() or self._peek() not in ")]":
                    raise self._error("expected closing bracket after dotted tail")
                if self._peek() != closer:
                    raise self._error(
                        f"mismatched bracket: expected {closer!r}, got {self._peek()!r}"
                    )
                self._advance()
                break
            items.append(self.read())
        datum: object = tail
        for item in reversed(items):
            datum = Pair(item, datum)
        return Syntax(datum, self._location(mark))

    def _is_delimiter(self, ch: str) -> bool:
        return ch == "" or ch in _WHITESPACE or ch in _DELIMITERS

    def _read_string(self, mark: tuple[int, int, int]) -> Syntax:
        self._advance()  # opening quote
        out: list[str] = []
        while True:
            if self._at_eof():
                raise self._error("unterminated string literal")
            ch = self._advance()
            if ch == '"':
                break
            if ch == "\\":
                if self._at_eof():
                    raise self._error("unterminated string escape")
                esc = self._advance()
                if esc == "x":
                    hex_digits = []
                    while not self._at_eof() and self._peek() != ";":
                        hex_digits.append(self._advance())
                    if self._at_eof():
                        raise self._error("unterminated \\x escape")
                    self._advance()  # ';'
                    try:
                        out.append(chr(int("".join(hex_digits), 16)))
                    except ValueError:
                        raise self._error("malformed \\x escape") from None
                elif esc in _STRING_ESCAPES:
                    out.append(_STRING_ESCAPES[esc])
                elif esc == "\n":
                    # Line continuation: swallow leading whitespace.
                    while not self._at_eof() and self._peek() in " \t":
                        self._advance()
                else:
                    raise self._error(f"unknown string escape: \\{esc}")
            else:
                out.append(ch)
        return Syntax("".join(out), self._location(mark))

    def _read_hash(self, mark: tuple[int, int, int]) -> Syntax:
        nxt = self._peek(1)
        if nxt == "(":
            self._advance()  # '#'
            lst = self._read_list(mark, ")")
            items = []
            node: object = lst.datum
            while isinstance(node, Pair):
                items.append(node.car)
                node = node.cdr
            if node is not NIL:
                raise self._error("dotted tail in vector literal")
            return Syntax(SchemeVector(items), self._location(mark))
        if nxt == "\\":
            self._advance()
            self._advance()
            if self._at_eof():
                raise self._error("unterminated character literal")
            first = self._advance()
            name = [first]
            if first.isalpha():
                while not self._at_eof() and not self._is_delimiter(self._peek()):
                    name.append(self._advance())
            try:
                char = Char.from_name("".join(name))
            except ValueError as exc:
                raise self._error(str(exc)) from None
            return Syntax(char, self._location(mark))
        if nxt == "'":
            self._advance()
            self._advance()
            return self._read_abbrev(mark, "syntax")
        if nxt == "`":
            self._advance()
            self._advance()
            return self._read_abbrev(mark, "quasisyntax")
        if nxt == ",":
            self._advance()
            self._advance()
            if self._peek() == "@":
                self._advance()
                return self._read_abbrev(mark, "unsyntax-splicing")
            return self._read_abbrev(mark, "unsyntax")
        # boolean / named literals share atom syntax
        return self._read_atom(mark)

    def _read_atom(self, mark: tuple[int, int, int]) -> Syntax:
        chars: list[str] = []
        while not self._at_eof() and not self._is_delimiter(self._peek()):
            chars.append(self._advance())
        token = "".join(chars)
        if not token:
            raise self._error(f"unexpected character {self._peek()!r}")
        loc = self._location(mark)
        return Syntax(self._parse_token(token), loc)

    def _parse_token(self, token: str) -> object:
        if token in ("#t", "#true", "#T"):
            return True
        if token in ("#f", "#false", "#F"):
            return False
        if token.startswith("#"):
            raise self._error(f"unknown # syntax: {token!r}")
        num = _parse_number(token)
        if num is not None:
            return num
        if "%" in token:
            # '%' is reserved for gensyms and generated profile points.
            raise self._error(f"'%' is not allowed in symbols: {token!r}")
        return Symbol(token)


def _parse_number(token: str) -> int | float | Fraction | None:
    """Parse a numeric token; None when the token is not a number."""
    if not token:
        return None
    body = token[1:] if token[0] in "+-" else token
    if not body or not (body[0].isdigit() or (body[0] == "." and len(body) > 1)):
        return None
    try:
        return int(token)
    except ValueError:
        pass
    if "/" in token:
        num_s, _, den_s = token.partition("/")
        try:
            return Fraction(int(num_s), int(den_s))
        except (ValueError, ZeroDivisionError):
            return None
    try:
        return float(token)
    except ValueError:
        return None


def read_string(text: str, filename: str = "<string>") -> list[Syntax]:
    """Read every datum in ``text``."""
    return Reader(text, filename).read_all()


def read_one(text: str, filename: str = "<string>") -> Syntax:
    """Read exactly one datum; trailing data is an error."""
    reader = Reader(text, filename)
    form = reader.read()
    reader._skip_atmosphere()
    if not reader._at_eof():
        raise ReaderError(
            "trailing data after datum", filename, reader.line, reader.column
        )
    return form


def read_file(path: str) -> list[Syntax]:
    """Read every datum in the file at ``path``."""
    with open(path, "r", encoding="utf-8") as handle:
        return read_string(handle.read(), filename=path)
