"""Core-form → Python source translation.

The compiled backend's contract is *observational equality* with the
closure-compiling interpreter: identical values, identical output,
identical error messages, identical profile counters and step-budget
charges, in the same order. The translation therefore mirrors the
interpreter's evaluation strategy node for node and only changes *how*
each step runs:

* closures become nested Python ``def``s (variables resolve through real
  Python scopes instead of dict-chain environments);
* a top-level function whose body creates no residual closures runs its
  self-tail-calls as a ``while True`` loop with parameter rebinding;
* directly-applied lambdas (the expansion of ``let``) are beta-inlined
  into plain local bindings;
* two-argument arithmetic/comparison primitives get a guarded inline
  fast path (``a + b`` when both are ``int`` *and* the global still holds
  the original primitive — any redefinition falls back to the generic
  apply);
* non-self tail calls still return the interpreter's :class:`TailCall`
  sentinel, so mutual tail recursion runs in constant stack under either
  backend and compiled/interpreted procedures can call each other freely.

Fuel and instrumentation are preserved exactly: when the requested flavor
includes them, every node evaluation emits a budget charge ``C()`` and —
for nodes carrying a profile point — a hook call ``H[i]()`` in the
interpreter's wrapper order (charge, then bump, then the node's effect).
Hook sites are recorded as an ordered ``(point, is_app)`` list so the
artifact can rebuild per-site bumps for any instrumenter at run time.

``syntax-case`` and template forms (expand-time constructs that rarely
survive into run-time programs) are not translated; codegen raises
:class:`UnsupportedFormError` and the caller falls back to the
interpreter.
"""

from __future__ import annotations

import re
from fractions import Fraction

from repro.core.errors import SchemeError
from repro.core.profile_point import ProfilePoint
from repro.scheme.core_forms import (
    App,
    Begin,
    Const,
    CoreExpr,
    Define,
    If,
    Lambda,
    Program,
    Ref,
    SetBang,
    SyntaxCaseExpr,
    TemplateExpr,
)
from repro.scheme.datum import (
    EOF_OBJECT,
    NIL,
    UNSPECIFIED,
    Char,
    Pair,
    SchemeVector,
    Symbol,
)

__all__ = [
    "CODEGEN_VERSION",
    "UnsupportedFormError",
    "generate_source",
    "generate_unit",
]

#: Part of every artifact-cache key: bump on any change to the generated
#: code's shape or semantics so stale cached artifacts never load.
CODEGEN_VERSION = 1


class UnsupportedFormError(SchemeError):
    """The program uses a core form the Python backend does not translate.

    Not a user-visible error: callers catch it and fall back to the
    interpreter (counted in ``backend_fallbacks_total``).
    """


#: Primitives with a guarded inline fast path: scheme name ->
#: (RT identity attribute, arity, guard template, fast-result template).
#: The guard is evaluated only after the looked-up value proves to be the
#: untouched primitive (``is RT.P_x``); when it fails — wrong dynamic
#: types, or a value the fast path cannot decide (e.g. ``eq?`` on
#: non-identical immediates) — the call takes the generic path, so the
#: observable result is exactly the primitive's.
_INLINE_OPS = {
    "+": ("P_add", 2, "type({a}) is int and type({b}) is int", "{a} + {b}"),
    "-": ("P_sub", 2, "type({a}) is int and type({b}) is int", "{a} - {b}"),
    "*": ("P_mul", 2, "type({a}) is int and type({b}) is int", "{a} * {b}"),
    "<": ("P_lt", 2, "type({a}) is int and type({b}) is int", "{a} < {b}"),
    "<=": ("P_le", 2, "type({a}) is int and type({b}) is int", "{a} <= {b}"),
    ">": ("P_gt", 2, "type({a}) is int and type({b}) is int", "{a} > {b}"),
    ">=": ("P_ge", 2, "type({a}) is int and type({b}) is int", "{a} >= {b}"),
    "=": ("P_eq", 2, "type({a}) is int and type({b}) is int", "{a} == {b}"),
    # list structure: plain Pairs only (Syntax wrappers take the slow path)
    "car": ("P_car", 1, "type({a}) is RT.Pair", "({a}).car"),
    "cdr": ("P_cdr", 1, "type({a}) is RT.Pair", "({a}).cdr"),
    "cons": ("P_cons", 2, None, "RT.Pair({a}, {b})"),
    "null?": ("P_nullp", 1, "{a} is RT.NIL", "True"),
    "pair?": ("P_pairp", 1, "type({a}) is RT.Pair", "True"),
    # identity implies eq? for every datum (incl. immediates); the
    # converse doesn't hold, so non-identical values go the slow way
    "eq?": ("P_eqp", 2, "{a} is {b}", "True"),
    "not": ("P_not", 1, None, "{a} is False"),
}


def _inlinable_beta(e: App) -> bool:
    """A directly-applied fixed-arity lambda — the shape ``let`` expands to."""
    fn = e.fn
    return (
        isinstance(fn, Lambda)
        and fn.rest is None
        and len(fn.params) == len(e.args)
    )


def _has_residual_lambda(exprs: list[CoreExpr]) -> bool:
    """Whether compiling ``exprs`` materializes any closure.

    Beta-inlined applications don't count (their lambda never becomes a
    Python function). A function with no residual closures cannot leak
    its locals, so its self-tail-calls may rebind parameters in place —
    the soundness condition for the ``while`` conversion (Python closures
    capture variables, not values).
    """
    stack: list[CoreExpr] = list(exprs)
    while stack:
        e = stack.pop()
        if isinstance(e, Lambda):
            return True
        if isinstance(e, App):
            if _inlinable_beta(e):
                stack.extend(e.fn.body)  # type: ignore[union-attr]
            else:
                stack.append(e.fn)
            stack.extend(e.args)
        elif isinstance(e, If):
            stack.extend((e.test, e.then, e.otherwise))
        elif isinstance(e, Begin):
            stack.extend(e.exprs)
        elif isinstance(e, SetBang):
            stack.append(e.expr)
        elif isinstance(e, (Const, Ref)):
            pass
        else:
            # Unsupported forms abort codegen later; stay conservative.
            return True
    return False


def _mangle(name: str) -> str:
    # Drop gensym suffixes ("x%17" -> "x"): uniqueness comes from the
    # emission counter, and the expander's process-global gensym numbers
    # would make otherwise-identical programs generate different bytes.
    cleaned = re.sub(r"[^A-Za-z0-9_]", "_", name.split("%", 1)[0])
    return cleaned or "x"


class _Fn:
    """Per-function emission context."""

    __slots__ = ("cellify", "self_unique", "params", "rest", "nparams")

    def __init__(self, cellify: bool) -> None:
        self.cellify = cellify
        #: set only while emitting a while-convertible named function
        self.self_unique: Symbol | None = None
        self.params: list[str] = []
        self.rest: str | None = None
        self.nparams = 0


class _Codegen:
    def __init__(self, program: Program, instrumented: bool, budgeted: bool):
        self.program = program
        self.instrumented = instrumented
        self.budgeted = budgeted
        self.body: list[str] = []
        self.indent = 1
        self._counter = 0
        #: unique symbol -> ("plain" | "cell", python name) for locals
        self.scope: dict[Symbol, tuple[str, str]] = {}
        #: qualifying top-level function unique -> python def name
        self.fn_names: dict[Symbol, str] = {}
        self.current_form = -1
        #: ordered (profile point, is_app) per emitted hook call
        self.hook_sites: list[tuple[ProfilePoint, bool]] = []
        #: how many C() charges were emitted (0 unless budgeted) — recorded
        #: so translation validation can check charge sites without
        #: re-running codegen
        self.charge_count = 0
        self._symbols: dict[Symbol, str] = {}
        self._locs: dict[str, str] = {}
        self._kconsts: list[tuple[str, str]] = []
        self._scan()

    # -- prepass ---------------------------------------------------------------

    def _scan(self) -> None:
        self.mutated: set[Symbol] = set()
        self.def_count: dict[Symbol, int] = {}
        self.def_index: dict[Symbol, int] = {}
        def_is_lambda: dict[Symbol, bool] = {}
        stack: list[CoreExpr] = []
        for i, form in enumerate(self.program.forms):
            if isinstance(form, Define):
                u = form.unique
                self.def_count[u] = self.def_count.get(u, 0) + 1
                if u not in self.def_index:
                    self.def_index[u] = i
                    def_is_lambda[u] = isinstance(form.expr, Lambda)
                stack.append(form.expr)
            else:
                stack.append(form)
        while stack:
            e = stack.pop()
            if isinstance(e, SetBang):
                self.mutated.add(e.unique)
                stack.append(e.expr)
            elif isinstance(e, App):
                stack.append(e.fn)
                stack.extend(e.args)
            elif isinstance(e, If):
                stack.extend((e.test, e.then, e.otherwise))
            elif isinstance(e, Begin):
                stack.extend(e.exprs)
            elif isinstance(e, Lambda):
                stack.extend(e.body)
            elif isinstance(e, Define):
                stack.append(e.expr)
        #: top-level functions safe to call/reference directly: defined
        #: exactly once, never assigned, bound to a literal lambda.
        self.qualified = {
            u
            for u, count in self.def_count.items()
            if count == 1 and u not in self.mutated and def_is_lambda[u]
        }

    # -- low-level emission ----------------------------------------------------

    def w(self, line: str) -> None:
        self.body.append("    " * self.indent + line)

    def tmp(self) -> str:
        self._counter += 1
        return f"t{self._counter}"

    def fresh(self, base: str) -> str:
        self._counter += 1
        return f"{base}_{self._counter}"

    def _symbol(self, sym: Symbol) -> str:
        name = self._symbols.get(sym)
        if name is None:
            name = f"S{len(self._symbols)}"
            self._symbols[sym] = name
        return name

    def _loc(self, e: CoreExpr) -> str:
        srcloc = e.stx.srcloc if e.stx is not None else None
        if srcloc is None:
            return "None"
        text = str(srcloc)
        name = self._locs.get(text)
        if name is None:
            name = f"L{len(self._locs)}"
            self._locs[text] = name
        return name

    def node_prologue(self, e: CoreExpr) -> None:
        """Budget charge and profile bump, in the interpreter's order."""
        if self.budgeted:
            self.charge_count += 1
            self.w("C()")
        if self.instrumented:
            point = e.profile_point
            if point is not None:
                self.hook_sites.append((point, isinstance(e, App)))
                self.w(f"H[{len(self.hook_sites) - 1}]()")

    # -- constants -------------------------------------------------------------

    def _const_expr(self, value: object) -> str:
        if value is True:
            return "True"
        if value is False:
            return "False"
        if value is NIL:
            return "RT.NIL"
        if value is UNSPECIFIED:
            return "RT.UNSPECIFIED"
        if value is EOF_OBJECT:
            return "RT.EOF"
        if isinstance(value, Symbol):
            return self._symbol(value)
        if isinstance(value, (int, float, str)):
            return repr(value)
        if isinstance(value, Char):
            return f"RT.char({value.value!r})"
        if isinstance(value, Fraction):
            return f"RT.fraction({value.numerator}, {value.denominator})"
        if isinstance(value, Pair):
            items = []
            node: object = value
            while isinstance(node, Pair):
                items.append(self._const_expr(node.car))
                node = node.cdr
            tail = self._const_expr(node)
            return f"RT.slist({', '.join(items)}, tail={tail})"
        if isinstance(value, SchemeVector):
            inner = ", ".join(self._const_expr(x) for x in value.items)
            return f"RT.vector({inner})"
        raise UnsupportedFormError(
            f"cannot translate constant of type {type(value).__name__}"
        )

    def _const_atom(self, e: Const) -> str:
        value = e.value
        if isinstance(value, (Pair, SchemeVector, Char, Fraction)):
            # Hoisted: built once per execution, so repeated evaluation of
            # this node yields the same (mutable) object, exactly like the
            # interpreter's shared Const value.
            name = f"K{len(self._kconsts)}"
            self._kconsts.append((name, self._const_expr(value)))
            return name
        return self._const_expr(value)

    # -- locals ----------------------------------------------------------------

    def _bind_param(self, sym: Symbol, cellify: bool) -> tuple[str, bool]:
        name = self.fresh(f"v_{_mangle(sym.name)}")
        cell = cellify and sym in self.mutated
        self.scope[sym] = ("cell" if cell else "plain", name)
        return name, cell

    # -- expressions -----------------------------------------------------------

    def expr(self, e: CoreExpr, fn: _Fn) -> str:
        """Emit statements evaluating ``e``; return a stable atom for it."""
        if isinstance(e, Const):
            self.node_prologue(e)
            return self._const_atom(e)
        if isinstance(e, Ref):
            self.node_prologue(e)
            return self._ref_atom(e)
        if isinstance(e, SetBang):
            return self._set(e, fn)
        if isinstance(e, If):
            return self._if(e, fn, tail=False)  # type: ignore[return-value]
        if isinstance(e, Begin):
            return self._begin(e, fn, tail=False)  # type: ignore[return-value]
        if isinstance(e, Lambda):
            self.node_prologue(e)
            return self._emit_function(e, self_unique=None)
        if isinstance(e, App):
            return self._app(e, fn)
        if isinstance(e, Define):
            raise UnsupportedFormError("nested define")
        if isinstance(e, (SyntaxCaseExpr, TemplateExpr)):
            raise UnsupportedFormError(
                f"expand-time form {type(e).__name__} at run time"
            )
        raise UnsupportedFormError(f"core form {type(e).__name__}")

    def expr_tail(self, e: CoreExpr, fn: _Fn) -> None:
        """Emit ``e`` in tail position; always ends in return/continue."""
        if isinstance(e, If):
            self._if(e, fn, tail=True)
            return
        if isinstance(e, Begin) and e.exprs:
            self._begin(e, fn, tail=True)
            return
        if isinstance(e, App):
            self._app_tail(e, fn)
            return
        self.w(f"return {self.expr(e, fn)}")

    def _ref_atom(self, e: Ref) -> str:
        u = e.unique
        ent = self.scope.get(u)
        if ent is not None:
            kind, name = ent
            if kind == "plain":
                return name
            t = self.tmp()
            self.w(f"{t} = {name}[0]")
            return t
        if u in self.qualified and self.def_index[u] <= self.current_form:
            return self.fn_names[u]
        t = self.tmp()
        self.w(f"{t} = GB.lookup({self._symbol(u)})")
        return t

    def _set(self, e: SetBang, fn: _Fn) -> str:
        self.node_prologue(e)
        v = self.expr(e.expr, fn)
        ent = self.scope.get(e.unique)
        if ent is not None:
            kind, name = ent
            self.w(f"{name}[0] = {v}" if kind == "cell" else f"{name} = {v}")
        else:
            self.w(f"GB.assign({self._symbol(e.unique)}, {v})")
        return "RT.UNSPECIFIED"

    def _if(self, e: If, fn: _Fn, tail: bool) -> str | None:
        self.node_prologue(e)
        test = self.expr(e.test, fn)
        if tail:
            self.w(f"if {test} is not False:")
            self.indent += 1
            self.expr_tail(e.then, fn)
            self.indent -= 1
            self.w("else:")
            self.indent += 1
            self.expr_tail(e.otherwise, fn)
            self.indent -= 1
            return None
        t = self.tmp()
        self.w(f"if {test} is not False:")
        self.indent += 1
        self.w(f"{t} = {self.expr(e.then, fn)}")
        self.indent -= 1
        self.w("else:")
        self.indent += 1
        self.w(f"{t} = {self.expr(e.otherwise, fn)}")
        self.indent -= 1
        return t

    def _begin(self, e: Begin, fn: _Fn, tail: bool) -> str | None:
        self.node_prologue(e)
        if not e.exprs:
            if tail:
                self.w("return RT.UNSPECIFIED")
                return None
            return "RT.UNSPECIFIED"
        for init in e.exprs[:-1]:
            self.expr(init, fn)
        if tail:
            self.expr_tail(e.exprs[-1], fn)
            return None
        return self.expr(e.exprs[-1], fn)

    # -- applications ----------------------------------------------------------

    def _app(self, e: App, fn: _Fn) -> str:
        self.node_prologue(e)
        if _inlinable_beta(e):
            return self._inline_beta(e, fn, tail=False)  # type: ignore[return-value]
        loc = self._loc(e)
        if isinstance(e.fn, Ref):
            u = e.fn.unique
            if u not in self.scope:
                if u in self.qualified and self.def_index[u] <= self.current_form:
                    self.node_prologue(e.fn)
                    return self._direct_call(self.fn_names[u], e, fn, loc)
                prim = self._inline_op(u, e)
                if prim is not None:
                    return self._inline_prim_call(u, prim, e, fn, loc)
        fatom = self.expr(e.fn, fn)
        args = [self.expr(a, fn) for a in e.args]
        t = self.tmp()
        call_args = ", ".join([loc, fatom, *args])
        self.w(f"{t} = RT.app_at({call_args})")
        return t

    def _direct_call(self, fname: str, e: App, fn: _Fn, loc: str) -> str:
        args = [self.expr(a, fn) for a in e.args]
        t = self.tmp()
        self.w("try:")
        self.w(f"    {t} = {fname}({', '.join(args)})")
        self.w(f"    if type({t}) is RT.TailCall: {t} = RT.settle({t})")
        self.w(f"except RT.EvalError as _e: raise RT.locate(_e, {loc})")
        self.w(f"except RecursionError: RT.rec_err({loc})")
        return t

    def _inline_op(self, u: Symbol, e: App) -> tuple | None:
        spec = _INLINE_OPS.get(u.name)
        if (
            spec is not None
            and len(e.args) == spec[1]
            and u not in self.def_count
            and u not in self.mutated
        ):
            return spec
        return None

    def _inline_prim_call(
        self, u: Symbol, prim: tuple, e: App, fn: _Fn, loc: str
    ) -> str:
        prim_name, _arity, guard, fast = prim
        self.node_prologue(e.fn)
        sym = self._symbol(u)
        tf = self.tmp()
        # The interpreter looks the operator up before evaluating the
        # arguments; preserve that (and its unbound-variable error).
        self.w(f"{tf} = _B.get({sym})")
        self.w(f"if {tf} is None: {tf} = GB.lookup({sym})")
        atoms = [self.expr(arg, fn) for arg in e.args]
        slots = {"a": atoms[0], "b": atoms[-1]}
        t = self.tmp()
        cond = f"{tf} is RT.{prim_name}"
        if guard is not None:
            cond += f" and {guard.format(**slots)}"
        self.w(f"if {cond}:")
        self.w(f"    {t} = {fast.format(**slots)}")
        self.w("else:")
        self.w(f"    {t} = RT.app_at({loc}, {tf}, {', '.join(atoms)})")
        return t

    def _inline_beta(self, e: App, fn: _Fn, tail: bool) -> str | None:
        L = e.fn
        assert isinstance(L, Lambda)
        self.node_prologue(L)
        args = [self.expr(a, fn) for a in e.args]
        for p, a in zip(L.params, args):
            name, cell = self._bind_param(p, fn.cellify)
            self.w(f"{name} = [{a}]" if cell else f"{name} = {a}")
        for b in L.body[:-1]:
            self.expr(b, fn)
        if tail:
            self.expr_tail(L.body[-1], fn)
            return None
        return self.expr(L.body[-1], fn)

    def _app_tail(self, e: App, fn: _Fn) -> None:
        self.node_prologue(e)
        if _inlinable_beta(e):
            self._inline_beta(e, fn, tail=True)
            return
        if self._self_tail_call(e, fn):
            return
        if isinstance(e.fn, Ref):
            u = e.fn.unique
            if u not in self.scope:
                prim = self._inline_op(u, e)
                if prim is not None:
                    # A primitive call completes immediately either way;
                    # computing it here keeps the fast path in tail position.
                    t = self._inline_prim_call(u, prim, e, fn, self._loc(e))
                    self.w(f"return {t}")
                    return
                if u in self.qualified and self.def_index[u] <= self.current_form:
                    self.node_prologue(e.fn)
                    args = [self.expr(a, fn) for a in e.args]
                    self.w(
                        f"return RT.TailCall({self.fn_names[u]}, "
                        f"[{', '.join(args)}])"
                    )
                    return
        fatom = self.expr(e.fn, fn)
        args = [self.expr(a, fn) for a in e.args]
        self.w(f"return RT.TailCall({fatom}, [{', '.join(args)}])")

    def _self_tail_call(self, e: App, fn: _Fn) -> bool:
        """Emit a self-tail-call as parameter rebinding + ``continue``."""
        if fn.self_unique is None or not isinstance(e.fn, Ref):
            return False
        if e.fn.unique is not fn.self_unique:
            return False
        if fn.rest is None:
            if len(e.args) != fn.nparams:
                return False  # arity error at run time via the generic path
        elif len(e.args) < fn.nparams:
            return False
        self.node_prologue(e.fn)
        args = [self.expr(a, fn) for a in e.args]
        targets = list(fn.params)
        values = args[: fn.nparams]
        if fn.rest is not None:
            targets.append(fn.rest)
            values.append(f"RT.slist({', '.join(args[fn.nparams:])})")
        if targets:
            # Tuple assignment: every new value is computed from the old
            # parameters before any rebinding happens.
            self.w(f"{', '.join(targets)} = {', '.join(values)}")
        self.w("continue")
        return True

    # -- functions -------------------------------------------------------------

    def _emit_function(self, L: Lambda, self_unique: Symbol | None) -> str:
        fname = self.fresh(f"f_{_mangle(L.name)}")
        if self_unique is not None:
            self.fn_names[self_unique] = fname
        cellify = _has_residual_lambda(L.body)
        in_while = self_unique is not None and not cellify
        child = _Fn(cellify=cellify)
        child.nparams = len(L.params)
        self.w(f"def {fname}(*_a):")
        self.indent += 1
        n = len(L.params)
        if L.rest is None:
            self.w(f"if len(_a) != {n}: RT.bad_arity({fname}, {n}, _a)")
        else:
            self.w(
                f"if len(_a) < {n}: RT.bad_arity_at_least({fname}, {n}, _a)"
            )
        for i, p in enumerate(L.params):
            name, cell = self._bind_param(p, cellify)
            child.params.append(name)
            self.w(f"{name} = [_a[{i}]]" if cell else f"{name} = _a[{i}]")
        if L.rest is not None:
            name, cell = self._bind_param(L.rest, cellify)
            child.rest = name
            rest_expr = f"RT.slist(*_a[{n}:])"
            self.w(f"{name} = [{rest_expr}]" if cell else f"{name} = {rest_expr}")
        if in_while:
            child.self_unique = self_unique
            self.w("while True:")
            self.indent += 1
        for b in L.body[:-1]:
            self.expr(b, child)
        self.expr_tail(L.body[-1], child)
        self.indent -= 2 if in_while else 1
        self.w(f"{fname}.scheme_name = {L.name!r}")
        return fname

    # -- top level -------------------------------------------------------------

    def generate(self) -> tuple[str, list[tuple[ProfilePoint, bool]]]:
        main = _Fn(cellify=True)
        emitted_result = False
        for i, form in enumerate(self.program.forms):
            self.current_form = i
            if isinstance(form, Define):
                u = form.unique
                if u in self.qualified and self.def_index[u] == i:
                    assert isinstance(form.expr, Lambda)
                    self.node_prologue(form.expr)
                    fname = self._emit_function(form.expr, self_unique=u)
                    self.w(f"_B[{self._symbol(u)}] = {fname}")
                else:
                    v = self.expr(form.expr, main)
                    name = form.source_name or u.name
                    self.w(
                        f"_B[{self._symbol(u)}] = "
                        f"RT.define_rename({v}, {name!r})"
                    )
            else:
                self.w(f"_result = {self.expr(form, main)}")
                emitted_result = True
        if not emitted_result:
            self.w("_result = RT.UNSPECIFIED")
        self.w("return _result")
        prologue = ["_B = GB.bindings"]
        prologue.extend(
            f"{name} = RT.sym({sym.name!r})" for sym, name in self._symbols.items()
        )
        prologue.extend(f"{name} = {text!r}" for text, name in self._locs.items())
        prologue.extend(f"{name} = {expr}" for name, expr in self._kconsts)
        lines = [
            "# Generated by repro.scheme.compile_py "
            f"(codegen v{CODEGEN_VERSION}) -- do not edit.",
            "from repro.scheme.compile_py import runtime as RT",
            "",
            "",
            "def _pgmp_main(GB, H, C):",
            *("    " + line for line in prologue),
            *self.body,
            "",
        ]
        return "\n".join(lines), self.hook_sites


def generate_source(
    program: Program, instrumented: bool = False, budgeted: bool = False
) -> tuple[str, list[tuple[ProfilePoint, bool]]]:
    """Translate an expanded program to Python source.

    Returns ``(source, hook_sites)``. Deterministic for a given program
    and flavor (names come from a sequential counter over a fixed
    traversal), so artifacts are reproducible byte for byte. Raises
    :class:`UnsupportedFormError` for programs the backend cannot run.
    """
    return _Codegen(program, instrumented, budgeted).generate()


def generate_unit(
    program: Program, instrumented: bool = False, budgeted: bool = False
) -> tuple[str, list[tuple[ProfilePoint, bool]], int]:
    """Like :func:`generate_source`, plus the emitted charge count.

    ``charge_count`` is codegen's own record of how many ``C()`` charges
    the source contains; translation validation (PGMP502) cross-checks it
    against both the source and the interpreter-order traversal.
    """
    codegen = _Codegen(program, instrumented, budgeted)
    source, hook_sites = codegen.generate()
    return source, hook_sites, codegen.charge_count
