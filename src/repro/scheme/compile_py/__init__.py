"""The compiled backend: expanded core forms → Python source → artifacts.

Submodules:

* :mod:`~repro.scheme.compile_py.codegen` — the core-form → Python
  translation (semantics-preserving, including profile hooks and fuel);
* :mod:`~repro.scheme.compile_py.runtime` — the small ``RT`` module
  generated code runs against;
* :mod:`~repro.scheme.compile_py.artifact` — compiled artifacts and their
  on-disk form;
* :mod:`~repro.scheme.compile_py.cache` — the ``(source fingerprint,
  profile generation)``-keyed artifact cache.

Backend selection lives in :class:`repro.scheme.pipeline.SchemeSystem`
(``backend="interp" | "compile"``) and the ``--backend`` CLI flag.
"""

from repro.scheme.compile_py.artifact import (
    ArtifactKey,
    CompiledArtifact,
    compile_program,
    flavor_for,
)
from repro.scheme.compile_py.cache import ArtifactCache, artifact_filename
from repro.scheme.compile_py.codegen import (
    CODEGEN_VERSION,
    UnsupportedFormError,
    generate_source,
    generate_unit,
)

__all__ = [
    "ArtifactCache",
    "ArtifactKey",
    "CODEGEN_VERSION",
    "CompiledArtifact",
    "UnsupportedFormError",
    "artifact_filename",
    "compile_program",
    "flavor_for",
    "generate_source",
    "generate_unit",
]
