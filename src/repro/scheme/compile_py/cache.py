"""The profile-keyed artifact cache.

A compiled artifact is valid for exactly one ``(source, profile)`` world:
the key combines the v2 source fingerprint of everything that feeds
expansion (libraries + program text) with the *merged-profile
fingerprint* — which, via the generation-counted merge cache, changes
precisely when recorded weights change. Any data-set store, clear, or
hot-swap therefore invalidates automatically; no TTLs, no manual flushes.

Two tiers:

* **in-memory** — all flavors, carries the expanded :class:`Program`
  (the recompile controller swaps these without re-expanding);
* **on-disk** (optional) — ``plain``-flavor artifacts as self-contained,
  readable Python modules, written atomically, so a *new process* with
  the same sources and profile reuses yesterday's compile. A file that
  fails to exec or whose embedded key mismatches is simply a miss.

With ``verify="load"``, every disk-loaded artifact is additionally
translation-validated (the PGMP5xx passes of ``pgmp verify``) before it
is trusted; a failing artifact is treated as a miss and counted in
``artifact_verify_failures_total``.
"""

from __future__ import annotations

import hashlib
import os

from repro.core.database import atomic_write_text
from repro.scheme.compile_py.artifact import (
    ArtifactKey,
    CompiledArtifact,
    load_artifact_source,
    render_artifact_module,
)

__all__ = ["ArtifactCache", "artifact_filename"]


def artifact_filename(key: ArtifactKey) -> str:
    digest = hashlib.sha256("|".join(map(str, key)).encode("utf-8")).hexdigest()
    return f"pgmp_{digest[:24]}.py"


class ArtifactCache:
    """Two-tier (memory + optional directory) artifact store."""

    def __init__(
        self,
        directory: str | os.PathLike[str] | None = None,
        verify: str | None = None,
    ) -> None:
        if verify not in (None, "load"):
            raise ValueError(f"unknown verify mode {verify!r} (use 'load')")
        self.directory = os.fspath(directory) if directory is not None else None
        self.verify = verify
        self._memory: dict[ArtifactKey, CompiledArtifact] = {}

    def get(self, key: ArtifactKey) -> CompiledArtifact | None:
        hit = self._memory.get(key)
        if hit is not None:
            return hit
        if self.directory is None or key[2] != "plain":
            return None
        path = os.path.join(self.directory, artifact_filename(key))
        try:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError:
            return None
        artifact = load_artifact_source(text, path, key)
        if artifact is not None and self.verify == "load":
            if not self._verified(artifact):
                return None  # counted by the caller as an ordinary miss
        if artifact is not None:
            self._memory[key] = artifact
        return artifact

    def _verified(self, artifact: CompiledArtifact) -> bool:
        """Translation-validate a disk-loaded artifact (``verify="load"``)."""
        from repro.analysis.verify import verify_artifact
        from repro.obs.metrics import get_global_metrics

        report = verify_artifact(artifact)
        if report.errors():
            get_global_metrics().inc("artifact_verify_failures_total")
            return False
        get_global_metrics().inc("artifact_verify_passes_total")
        return True

    def put(self, artifact: CompiledArtifact) -> None:
        key = artifact.key
        if key is None:
            raise ValueError("cannot cache an unkeyed artifact")
        self._memory[key] = artifact
        if self.directory is not None and artifact.flavor == "plain":
            os.makedirs(self.directory, exist_ok=True)
            path = os.path.join(self.directory, artifact_filename(key))
            atomic_write_text(path, render_artifact_module(artifact))

    def clear(self) -> None:
        self._memory.clear()

    def __len__(self) -> int:
        return len(self._memory)
