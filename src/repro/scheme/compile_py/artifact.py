"""Compiled artifacts: generated Python source plus its executable form.

An artifact is the unit the cache stores and the pipeline swaps in for
interpretation. It always keeps the *generated source* (debuggability: a
cached artifact on disk is a readable Python module) and, when the
program is translatable, the compiled ``_pgmp_main`` entry point.

Programs the backend cannot translate still produce an artifact — with
``main is None`` and only the expansion text — so a warm cache can answer
``pgmp optimize`` without re-expanding even for interpreter-only programs.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.core.errors import SchemeRecursionError
from repro.core.policy import StepBudget
from repro.scheme.compile_py import runtime as RT
from repro.scheme.compile_py.codegen import (
    CODEGEN_VERSION,
    UnsupportedFormError,
    generate_unit,
)
from repro.scheme.core_forms import Program
from repro.scheme.env import GlobalEnvironment
from repro.scheme.instrument import Instrumenter

__all__ = [
    "ArtifactKey",
    "CompiledArtifact",
    "artifact_checksum",
    "compile_program",
    "flavor_for",
]


#: (source fingerprint, profile fingerprint, flavor, codegen version)
ArtifactKey = tuple[str, str, str, int]


def flavor_for(instrumented: bool, budgeted: bool) -> str:
    """The artifact flavor matching a run configuration.

    Instrumentation hooks and budget charges are compiled *into* the
    generated code (that's what makes them free when absent, exactly like
    the interpreter's wrapper scheme), so each combination is a distinct
    artifact.
    """
    if instrumented and budgeted:
        return "instr+budget"
    if instrumented:
        return "instr"
    if budgeted:
        return "budget"
    return "plain"


@dataclass(slots=True)
class CompiledArtifact:
    """One compiled (or expansion-only) program, ready to execute."""

    python_source: str
    filename: str
    flavor: str
    #: ordered (profile point, is_app) per generated ``H[i]()`` site
    hook_sites: list
    expansion_text: str
    compile_output: str
    key: ArtifactKey | None = None
    #: the expanded Program, when this artifact was built in-process
    #: (disk-loaded artifacts don't carry one)
    program: Program | None = None
    main: object = None
    #: why ``main`` is None, for fallback diagnostics
    unsupported_reason: str = ""
    codegen_version: int = CODEGEN_VERSION
    #: C() charges codegen emitted (0 for non-budget flavors); -1 means
    #: unknown (e.g. artifacts predating the metadata)
    charge_count: int = -1
    _fields: dict = field(default_factory=dict, repr=False)

    @property
    def runnable(self) -> bool:
        return self.main is not None

    def self_check(self) -> list[str]:
        """Integrity problems with this artifact (empty = healthy).

        The rollout guard runs this before a swap: a misrendered or
        tampered artifact must be caught at the canary, not in the
        serving path. Checks are structural — the *behavioral* check is
        the canary's differential battery.
        """
        problems: list[str] = []
        if self.flavor not in ("plain", "instr", "budget", "instr+budget"):
            problems.append(f"unknown flavor {self.flavor!r}")
        if self.codegen_version != CODEGEN_VERSION:
            problems.append(
                f"codegen version {self.codegen_version} != "
                f"current {CODEGEN_VERSION}"
            )
        if self.main is not None and not callable(self.main):
            problems.append("main entry point is not callable")
        if self.python_source:
            try:
                compile(
                    self.python_source,
                    f"<pgmp-selfcheck {self.filename}>",
                    "exec",
                )
            except SyntaxError as exc:
                problems.append(f"generated source does not parse: {exc}")
        elif self.main is not None and "instr" not in self.flavor:
            problems.append("runnable artifact carries no generated source")
        return problems

    def execute(
        self,
        global_env: GlobalEnvironment,
        instrumenter: Instrumenter | None = None,
        budget: StepBudget | None = None,
    ) -> object:
        """Run the artifact; the compiled twin of ``run_program``.

        The caller must pass a configuration matching this artifact's
        flavor: hooks and charges exist only where they were compiled in.
        """
        if self.main is None:
            raise UnsupportedFormError(
                self.unsupported_reason or "artifact is expansion-only"
            )
        expected = flavor_for(instrumenter is not None, budget is not None)
        if expected != self.flavor:
            raise ValueError(
                f"artifact flavor {self.flavor!r} cannot run a "
                f"{expected!r} configuration"
            )
        hooks = RT.hook_table(instrumenter, self.hook_sites)
        charge = budget.charge if budget is not None else None
        try:
            return self.main(global_env, hooks, charge)
        except RecursionError:
            # Backstop, mirroring Interpreter.run_top_form: call sites
            # inside the generated code convert first and carry a srcloc.
            raise SchemeRecursionError.at(None) from None


def _exec_module(source: str, filename: str) -> dict:
    namespace: dict = {}
    code = compile(source, f"<pgmp-compiled {filename}>", "exec")
    exec(code, namespace)
    return namespace


def compile_program(
    program: Program,
    filename: str,
    flavor: str = "plain",
    expansion_text: str = "",
    compile_output: str = "",
    key: ArtifactKey | None = None,
) -> CompiledArtifact:
    """Translate an expanded program into an executable artifact.

    Returns an expansion-only artifact (``main is None``) instead of
    raising when the program uses untranslatable forms, so callers decide
    between fallback and error uniformly.
    """
    instrumented = "instr" in flavor
    budgeted = "budget" in flavor
    try:
        source, hook_sites, charge_count = generate_unit(
            program, instrumented=instrumented, budgeted=budgeted
        )
    except UnsupportedFormError as exc:
        return CompiledArtifact(
            python_source="",
            filename=filename,
            flavor=flavor,
            hook_sites=[],
            expansion_text=expansion_text,
            compile_output=compile_output,
            key=key,
            program=program,
            main=None,
            unsupported_reason=str(exc),
        )
    namespace = _exec_module(source, filename)
    return CompiledArtifact(
        python_source=source,
        filename=filename,
        flavor=flavor,
        hook_sites=hook_sites,
        expansion_text=expansion_text,
        compile_output=compile_output,
        key=key,
        program=program,
        main=namespace["_pgmp_main"],
        charge_count=charge_count,
    )


#: Marker separating the generated module body from its metadata literal.
_META_MARKER = "\n__pgmp_meta__ = "


def artifact_checksum(body: str) -> str:
    """Content digest of an artifact module body (the part above the
    ``__pgmp_meta__`` literal)."""
    return hashlib.sha256(body.encode("utf-8")).hexdigest()[:16]


def load_artifact_source(
    text: str, filename: str, key: ArtifactKey
) -> CompiledArtifact | None:
    """Rebuild an artifact from a cached on-disk module.

    Returns None — a cache miss — when the module doesn't exec, carries no
    metadata, fails its checksum (bit rot or tampering between store and
    load), or was written for a different key (stale or corrupt file).
    Only ``plain``-flavor artifacts live on disk (hook sites reference
    in-memory profile points), so ``hook_sites`` is always empty here.
    """
    try:
        marker = text.rfind(_META_MARKER)
        if marker < 0:
            return None
        body = text[: marker + 1]  # include the trailing newline
        namespace = _exec_module(text, filename)
        meta = namespace["__pgmp_meta__"]
        if meta.get("checksum") != artifact_checksum(body):
            return None
        if list(meta["key"]) != list(key):
            return None
        return CompiledArtifact(
            python_source=text,
            filename=filename,
            flavor="plain",
            hook_sites=[],
            expansion_text=meta["expansion_text"],
            compile_output=meta["compile_output"],
            key=key,
            program=None,
            main=namespace.get("_pgmp_main"),
            unsupported_reason=meta.get("unsupported_reason", ""),
            charge_count=int(meta.get("charge_count", -1)),
        )
    except Exception:
        return None


def render_artifact_module(artifact: CompiledArtifact) -> str:
    """The self-contained on-disk form: generated source + metadata.

    ``__pgmp_meta__`` is a literal dict appended after the code, carrying
    everything ``pgmp optimize`` prints on a warm hit — so a hit performs
    zero re-expansions.
    """
    source = artifact.python_source
    if not source:
        source = (
            "# Expansion-only artifact (program not translatable); cached\n"
            "# so warm pipelines still skip re-expansion.\n"
            "_pgmp_main = None\n"
        )
    body = f"{source}\n"
    meta = {
        "key": list(artifact.key) if artifact.key is not None else None,
        "expansion_text": artifact.expansion_text,
        "compile_output": artifact.compile_output,
        "unsupported_reason": artifact.unsupported_reason,
        "charge_count": artifact.charge_count,
        "checksum": artifact_checksum(body),
    }
    return f"{body}__pgmp_meta__ = {meta!r}\n"
