"""Runtime support for generated Python artifacts.

Generated modules import this module as ``RT`` and nothing else. Every
helper here either *is* an interpreter object (``TailCall``,
``apply_procedure``, the datum constructors) or raises the exact error the
interpreter would raise in the same situation, so a compiled program is
observably indistinguishable from an interpreted one — same values, same
error messages, same ``write`` representations.

The ``P_*`` bindings are the registered primitive *objects* (identity,
not copies). Generated call sites guard their inline fast paths on
``looked-up-value is RT.P_x``: redefining or shadowing a primitive at the
Scheme level makes the guard fail and the call takes the generic
``apply_procedure`` path, preserving semantics.
"""

from __future__ import annotations

from fractions import Fraction

from repro.core.errors import EvalError, SchemeRecursionError
from repro.scheme.datum import (
    EOF_OBJECT,
    NIL,
    UNSPECIFIED,
    Char,
    Pair,
    SchemeVector,
    Symbol,
    scheme_list,
)
from repro.scheme.interpreter import Closure, TailCall, apply_procedure
from repro.scheme.primitives import _RUNTIME

__all__ = [
    "EOF",
    "NIL",
    "UNSPECIFIED",
    "Char",
    "EvalError",
    "Fraction",
    "Pair",
    "TailCall",
    "app",
    "app_at",
    "bad_arity",
    "bad_arity_at_least",
    "define_rename",
    "hook_table",
    "locate",
    "noop",
    "rec_err",
    "settle",
    "slist",
    "sym",
    "vector",
]

EOF = EOF_OBJECT
sym = Symbol
char = Char
fraction = Fraction
slist = scheme_list


def vector(*items: object) -> SchemeVector:
    return SchemeVector(items)


# Primitive identities for inline fast-path guards. Looked up once at
# import; make_global_env binds these same objects, so an untouched global
# is ``is``-identical to its P_* twin.
P_add = _RUNTIME["+"]
P_sub = _RUNTIME["-"]
P_mul = _RUNTIME["*"]
P_lt = _RUNTIME["<"]
P_le = _RUNTIME["<="]
P_gt = _RUNTIME[">"]
P_ge = _RUNTIME[">="]
P_eq = _RUNTIME["="]
P_car = _RUNTIME["car"]
P_cdr = _RUNTIME["cdr"]
P_cons = _RUNTIME["cons"]
P_nullp = _RUNTIME["null?"]
P_pairp = _RUNTIME["pair?"]
P_eqp = _RUNTIME["eq?"]
P_not = _RUNTIME["not"]


def app(proc: object, *args: object) -> object:
    """Apply with tail-call unwinding (the interpreter's own loop)."""
    return apply_procedure(proc, list(args))


def settle(tc: TailCall) -> object:
    """Unwind a TailCall returned by a directly-called compiled function."""
    return apply_procedure(tc.proc, tc.args)


def locate(exc: EvalError, loc: str | None) -> EvalError:
    """Attach the innermost call-site location once (do_app's convention)."""
    if loc is not None and not getattr(exc, "located", False):
        exc.located = True  # type: ignore[attr-defined]
        exc.args = (f"{exc.args[0]} (at {loc})",) + exc.args[1:]
    return exc


def app_at(loc: str | None, proc: object, *args: object) -> object:
    """Apply, converting errors exactly as the interpreter's do_app does."""
    try:
        # Fast path: a Python callable (primitive or compiled function)
        # needs neither the argument list copy nor the Closure dispatch.
        if callable(proc) and not isinstance(proc, Closure):
            result = proc(*args)
            if type(result) is TailCall:
                result = apply_procedure(result.proc, result.args)
            return result
        return apply_procedure(proc, list(args))
    except EvalError as exc:
        raise locate(exc, loc)
    except RecursionError:
        raise SchemeRecursionError.at(loc) from None


def rec_err(loc: str | None) -> None:
    raise SchemeRecursionError.at(loc) from None


def _proc_name(fn: object) -> str:
    return getattr(fn, "scheme_name", getattr(fn, "__name__", "procedure"))


def bad_arity(fn: object, expected: int, args: tuple) -> None:
    raise EvalError(
        f"{_proc_name(fn)}: expected {expected} arguments, got {len(args)}"
    )


def bad_arity_at_least(fn: object, expected: int, args: tuple) -> None:
    raise EvalError(
        f"{_proc_name(fn)}: expected at least {expected} arguments, "
        f"got {len(args)}"
    )


def define_rename(value: object, name: str) -> object:
    """The top-level define rename rule: anonymous procedures take the
    defined name (interpreter: ``run_top_form`` on Closure values)."""
    if isinstance(value, Closure):
        if value.name == "lambda":
            value.name = name
    elif callable(value) and getattr(value, "scheme_name", None) == "lambda":
        try:
            value.scheme_name = name  # type: ignore[attr-defined]
        except AttributeError:  # builtins without writable attributes
            pass
    return value


def noop() -> None:
    return None


def hook_table(instrumenter, sites) -> list:
    """One bump per recorded site, in emission order.

    ``sites`` is the codegen's ordered ``(profile point, is_app)`` list;
    each entry gets its own bump exactly as each interpreter compile()
    call would — crucially giving SAMPLE mode fresh per-site stride state.
    """
    if instrumenter is None:
        return []
    return [
        instrumenter.hook_for(point, is_app) or noop for point, is_app in sites
    ]
