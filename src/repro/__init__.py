"""repro — *Profile-Guided Meta-Programming* (Bowman, Miller, St-Amour,
Dybvig; PLDI 2015) reproduced as a Python library.

The package layout mirrors the paper:

* :mod:`repro.core` — the substrate-independent design (Section 3):
  profile points, profile weights, data-set merging, and the Figure-4 API
  (``make_profile_point``, ``annotate_expr``, ``profile_query``,
  ``store_profile``, ``load_profile``, ``current_profile_information``).
* :mod:`repro.scheme` — implementation #1 (Section 4.1): a Scheme with
  source objects, ``syntax-case`` macros, and an expression-level counter
  profiler (plus an errortrace-style call-level mode, Section 4.2).
* :mod:`repro.pyast` — implementation #2 (Sections 4.2/5): meta-programs
  over Python ASTs with a call-level profiler.
* :mod:`repro.blocks` — the block-level substrate and the Section-4.3
  three-pass protocol that keeps source- and block-level PGO consistent.
* :mod:`repro.casestudies` — the Section-6 case studies: ``case``/
  ``exclusive-cond`` branch reordering, receiver class prediction, and
  data-structure specialization.

Quick start (the paper's running example)::

    from repro.casestudies import make_if_r_system

    system = make_if_r_system()
    program = '''
    (define (classify email)
      (if-r (< email 3) 'important 'spam))
    (map classify (list 1 2 3 4 5))
    '''
    system.profile_run(program)          # pass 1: instrumented
    optimized = system.compile(program)  # pass 2: branches reordered
"""

from repro.core import (
    BaseCounterSet,
    CounterSet,
    Degradation,
    DegradationLog,
    PgmpError,
    ProfileDatabase,
    ProfileError,
    ProfileFormatError,
    ProfilePoint,
    ProfilePolicy,
    QuarantineReport,
    QuarantinedDataset,
    ShardedCounterSet,
    SourceLocation,
    StaleProfileError,
    StepBudget,
    StepBudgetExceeded,
    WeightTable,
    annotate_expr,
    compute_weights,
    current_degradation_log,
    current_profile_information,
    current_profile_policy,
    degrade,
    load_profile,
    make_profile_point,
    merge_databases,
    merge_weight_tables,
    profile_query,
    source_fingerprint,
    store_profile,
    using_profile_information,
    using_profile_policy,
)

__version__ = "1.0.0"

__all__ = [
    "BaseCounterSet",
    "CounterSet",
    "Degradation",
    "DegradationLog",
    "PgmpError",
    "ProfileDatabase",
    "ProfileError",
    "ProfileFormatError",
    "ProfilePoint",
    "ProfilePolicy",
    "QuarantineReport",
    "QuarantinedDataset",
    "ShardedCounterSet",
    "SourceLocation",
    "StaleProfileError",
    "StepBudget",
    "StepBudgetExceeded",
    "WeightTable",
    "__version__",
    "annotate_expr",
    "compute_weights",
    "current_degradation_log",
    "current_profile_information",
    "current_profile_policy",
    "degrade",
    "load_profile",
    "make_profile_point",
    "merge_databases",
    "merge_weight_tables",
    "profile_query",
    "source_fingerprint",
    "store_profile",
    "using_profile_information",
    "using_profile_policy",
]
