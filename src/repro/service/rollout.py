"""The rollout guard: canary validation, generation journal, breaker.

PR 6 made the controller hot-swap compiled artifacts on profile drift.
That turned every drift-triggered recompile into an unreviewed
deployment: a poisoned merged profile, a codegen edge case, or an
artifact that loads but misbehaves would ship straight into the serving
path with no gate and no way back. This module is the gate and the way
back — cooperating pieces composed by :class:`RolloutGuard` and
wired into :class:`~repro.service.controller.RecompileController`:

**Static verification** (pre-canary). Before any probe runs, the
candidate's compiled artifacts are translation-validated against their
core forms (the PGMP5xx passes of ``pgmp verify``): instrumentation and
budget-charge sites in interpreter order, lexical scoping, tail-loop
rebinding safety, primitive identity guards. Static, so it covers every
branch of the generated code — including ones the canary's probe inputs
never reach — and costs no candidate execution at all.

**Canary validation** (pre-swap). Before a candidate artifact goes
live it must pass a differential smoke battery: the candidate program
runs under the compiled backend *and* the interpreter on a probe set,
and the externally-written datum + captured output must agree
byte-for-byte (the same parity contract the compile backend's
differential suite enforces offline). Both runs carry a
:class:`~repro.core.policy.StepBudget` — a candidate that suddenly
burns through its fuel fails the canary — and the compiled run is held
to a wall-clock ceiling.

**Generation journal** (the way back). Every committed rollout is
journaled *before* the in-memory swap: the generation number, the
merged-profile snapshot it was compiled against (stored through the
ordinary atomic + fsynced :meth:`ProfileDatabase.store`), and the
baseline weights. Because expansion is deterministic and the artifact
cache is keyed on the merged-profile fingerprint, re-running the
recompiler against a journaled snapshot reproduces the journaled
artifact — so "roll back to generation N" is "recompile from N's
snapshot", which is a cache hit. A crash between the journal write and
the swap is safe in both directions: the journal names a generation
the next process can deterministically rebuild and resume.

**Quarantine** (don't do it again). Rolling back does not un-drift the
merged profile — the very next controller evaluation would see the
same drift and re-trigger the same bad recompile, a ping-pong loop.
The journal therefore quarantines the offending snapshot's
merged-profile fingerprint; the controller refuses to recompile
against a quarantined fingerprint until an operator clears it (or the
profile genuinely moves on, changing the fingerprint).

**Circuit breaker** (stop digging). Recompile/canary failures are
counted; past a consecutive-failure threshold the breaker *opens* and
recompilation is suspended for an exponentially-growing backoff. After
the backoff one *half-open* probe recompile is admitted: success
closes the breaker, failure re-opens it with a doubled backoff. All
transitions are traced (``rollout`` events) and metered
(``breaker_state`` gauge: closed=0, open=1, half-open=2).
"""

from __future__ import annotations

import io
import json
import os
import threading
import time
from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.core.database import ProfileDatabase, atomic_write_text
from repro.obs.logs import get_logger
from repro.obs.tracer import active_tracer, maybe_span
from repro.service.metrics import ServiceMetrics

__all__ = [
    "CanaryResult",
    "CircuitBreaker",
    "GenerationJournal",
    "GenerationRecord",
    "RolloutGuard",
    "StaticVerifyResult",
    "describe_rollout_metrics",
    "scheme_canary",
    "scheme_static_verifier",
]

logger = get_logger(__name__)

#: Version tag of the on-disk journal file.
JOURNAL_FORMAT_VERSION = 1

#: ``breaker_state`` gauge encoding.
BREAKER_STATES = {"closed": 0, "open": 1, "half-open": 2}


def describe_rollout_metrics(metrics: ServiceMetrics) -> None:
    """Register HELP text for every metric the rollout guard emits."""
    metrics.describe("rollouts_total", "Artifact rollouts committed and swapped")
    metrics.describe(
        "rollbacks_total", "Automatic or manual rollbacks to a previous generation"
    )
    metrics.describe(
        "canary_failures_total", "Candidate artifacts rejected by canary validation"
    )
    metrics.describe("canary_probes_total", "Canary probe executions")
    metrics.describe(
        "breaker_state",
        "Recompile circuit breaker state (0=closed, 1=open, 2=half-open)",
    )
    metrics.describe(
        "breaker_opens_total", "Times the recompile circuit breaker opened"
    )
    metrics.describe(
        "rollout_generation", "Generation currently live per the rollout journal"
    )
    metrics.describe("canary_latency", "Compiled-backend canary probe latency")
    metrics.describe(
        "artifact_verify_passes_total",
        "Candidate artifacts that passed static translation validation",
    )
    metrics.describe(
        "artifact_verify_failures_total",
        "Candidate artifacts rejected by static translation validation",
    )


# -- canary validation -------------------------------------------------------


@dataclass(frozen=True)
class CanaryResult:
    """Outcome of pre-swap validation of one candidate artifact."""

    passed: bool
    probes: int
    failures: tuple[str, ...] = ()
    latencies: tuple[float, ...] = ()

    def summary(self) -> str:
        if self.passed:
            return f"{self.probes} probe(s) passed"
        head = "; ".join(self.failures[:3])
        more = len(self.failures) - 3
        if more > 0:
            head += f"; +{more} more"
        return head

    def __str__(self) -> str:
        verdict = "passed" if self.passed else "FAILED"
        return f"canary {verdict}: {self.summary()}"


def scheme_canary(
    system: Any,
    probes: Sequence[tuple[str, str]] = (),
    *,
    budget: int = 1_000_000,
    latency_ceiling: float = 5.0,
) -> Callable[[Any], CanaryResult]:
    """A canary validator for Scheme candidates (expanded ``Program``\\ s).

    The differential battery: the candidate — and each extra probe
    program, given as ``(source, filename)`` pairs — runs under the
    compiled backend *and* the reference interpreter; the written datum
    and the captured output must agree byte-for-byte. Both runs are
    fueled by a fresh :class:`StepBudget` of ``budget`` steps (a
    candidate that exhausts it fails the sanity check) and the compiled
    run must finish within ``latency_ceiling`` seconds. Artifacts the
    candidate has already materialized are also :meth:`self-checked
    <repro.scheme.compile_py.artifact.CompiledArtifact.self_check>`.
    """
    from repro.core.policy import StepBudget
    from repro.scheme.datum import write_datum

    probe_sources = [(str(src), str(name)) for src, name in probes]

    def validate(candidate: Any) -> CanaryResult:
        failures: list[str] = []
        latencies: list[float] = []
        programs: list[tuple[Any, str]] = [(candidate, "<candidate>")]
        for source, name in probe_sources:
            try:
                programs.append((system.compile(source, name), name))
            except Exception as exc:
                failures.append(f"{name}: probe failed to compile: {exc}")
        for program, name in programs:
            try:
                reference = system.run(
                    program, backend="interp", budget=StepBudget(budget)
                )
            except Exception as exc:
                failures.append(
                    f"{name}: reference run failed: "
                    f"{type(exc).__name__}: {exc}"
                )
                continue
            started = time.perf_counter()
            try:
                compiled = system.run(
                    program, backend="compile", budget=StepBudget(budget)
                )
            except Exception as exc:
                failures.append(
                    f"{name}: candidate run failed: "
                    f"{type(exc).__name__}: {exc}"
                )
                continue
            elapsed = time.perf_counter() - started
            latencies.append(elapsed)
            expected = write_datum(reference.value)
            got = write_datum(compiled.value)
            if got != expected:
                failures.append(
                    f"{name}: value diverged: {got} != {expected}"
                )
            if compiled.output != reference.output:
                failures.append(
                    f"{name}: output diverged "
                    f"({len(compiled.output)} vs {len(reference.output)} bytes)"
                )
            if elapsed > latency_ceiling:
                failures.append(
                    f"{name}: compiled run took {elapsed:.3f}s "
                    f"(ceiling {latency_ceiling:.3f}s)"
                )
        artifacts = getattr(candidate, "artifacts", None)
        if isinstance(artifacts, dict):
            for flavor, artifact in sorted(artifacts.items()):
                check = getattr(artifact, "self_check", None)
                if check is None:
                    continue
                for problem in check():
                    failures.append(f"artifact[{flavor}]: {problem}")
        return CanaryResult(
            passed=not failures,
            probes=len(programs),
            failures=tuple(failures),
            latencies=tuple(latencies),
        )

    return validate


# -- static verification (pre-canary) ----------------------------------------


@dataclass(frozen=True)
class StaticVerifyResult:
    """Outcome of static translation validation of one candidate."""

    passed: bool
    artifacts: int
    findings: tuple[str, ...] = ()

    def summary(self) -> str:
        if self.passed:
            return f"{self.artifacts} artifact(s) verified"
        head = "; ".join(self.findings[:3])
        more = len(self.findings) - 3
        if more > 0:
            head += f"; +{more} more"
        return head

    def __str__(self) -> str:
        verdict = "passed" if self.passed else "FAILED"
        return f"static verify {verdict}: {self.summary()}"


def scheme_static_verifier(
    flavors: Sequence[str] | None = None,
) -> Callable[[Any], StaticVerifyResult]:
    """A static translation validator for Scheme candidates.

    Runs the PGMP5xx pass family (:mod:`repro.analysis.verify`) over
    every artifact flavor of the candidate program — no probe inputs, no
    execution of the candidate — so a miscompiled branch the canary's
    probes never reach is still caught. Only ERROR-severity findings
    fail the candidate; PGMP506 fallback infos are recorded as findings
    text but do not block (an interpreter-fallback program is slower,
    not wrong).
    """

    def verify(candidate: Any) -> StaticVerifyResult:
        from repro.analysis.verify import ALL_FLAVORS, verify_program

        chosen = tuple(flavors) if flavors is not None else ALL_FLAVORS
        report = verify_program(candidate, "<candidate>", flavors=chosen)
        errors = report.errors()
        return StaticVerifyResult(
            passed=not errors,
            artifacts=len(chosen),
            findings=tuple(str(diag) for diag in errors),
        )

    return verify


# -- generation journal ------------------------------------------------------


@dataclass
class GenerationRecord:
    """One journaled rollout: a generation plus how to rebuild it."""

    generation: int
    profile_fingerprint: str
    baseline: dict[str, float]
    status: str = "live"  # "live" | "superseded" | "rolled-back"
    #: snapshot filename relative to the journal directory ("" = in-memory)
    snapshot: str = ""

    def to_json_object(self) -> dict:
        return {
            "generation": self.generation,
            "profile_fingerprint": self.profile_fingerprint,
            "baseline": self.baseline,
            "status": self.status,
            "snapshot": self.snapshot,
        }

    @classmethod
    def from_json_object(cls, obj: dict) -> "GenerationRecord":
        return cls(
            generation=int(obj["generation"]),
            profile_fingerprint=str(obj["profile_fingerprint"]),
            baseline={
                str(k): float(v) for k, v in dict(obj["baseline"]).items()
            },
            status=str(obj.get("status", "superseded")),
            snapshot=str(obj.get("snapshot", "")),
        )


class GenerationJournal:
    """Fsynced on-disk record of the last N rollouts (see module docs).

    With ``directory=None`` the journal is in-memory only — same API,
    no crash safety — which is what unit tests and the default
    ``RolloutGuard()`` use. With a directory, ``journal.json`` and the
    per-generation profile snapshots are written through
    :func:`atomic_write_text` / :meth:`ProfileDatabase.store`, both
    atomic-rename + fsync, so a reader (or a restart) only ever sees
    complete state.
    """

    def __init__(
        self,
        directory: str | os.PathLike[str] | None = None,
        *,
        max_generations: int = 5,
    ) -> None:
        if max_generations < 2:
            raise ValueError(
                f"a journal needs >= 2 generations to roll back, "
                f"got {max_generations}"
            )
        self.directory = os.fspath(directory) if directory is not None else None
        self.max_generations = int(max_generations)
        self._lock = threading.Lock()
        self._records: list[GenerationRecord] = []
        self._quarantine: list[dict] = []
        self._snapshots: dict[int, str] = {}  # in-memory mode only
        if self.directory is not None:
            os.makedirs(self.directory, exist_ok=True)
            self._load()

    # -- persistence -------------------------------------------------------

    @property
    def journal_path(self) -> str | None:
        if self.directory is None:
            return None
        return os.path.join(self.directory, "journal.json")

    def _load(self) -> None:
        path = self.journal_path
        assert path is not None
        try:
            with open(path, "r", encoding="utf-8") as handle:
                obj = json.load(handle)
            if not isinstance(obj, dict) or obj.get("format") != "pgmp-rollout-journal":
                raise ValueError("not a pgmp rollout journal")
            if obj.get("version") != JOURNAL_FORMAT_VERSION:
                raise ValueError(
                    f"unsupported journal version {obj.get('version')!r}"
                )
            self._records = [
                GenerationRecord.from_json_object(entry)
                for entry in obj.get("generations", [])
            ]
            self._quarantine = [dict(entry) for entry in obj.get("quarantine", [])]
        except FileNotFoundError:
            return
        except Exception as exc:
            # A corrupt journal must not keep the service from starting;
            # it only costs the rollback history.
            logger.error("rollout journal %s unreadable (%s); starting empty",
                         path, exc)
            self._records = []
            self._quarantine = []

    def _persist_locked(self) -> None:
        path = self.journal_path
        if path is None:
            return
        payload = json.dumps(
            {
                "format": "pgmp-rollout-journal",
                "version": JOURNAL_FORMAT_VERSION,
                "generations": [r.to_json_object() for r in self._records],
                "quarantine": list(self._quarantine),
            },
            indent=2,
            sort_keys=True,
        )
        atomic_write_text(path, payload)

    # -- recording ---------------------------------------------------------

    def record(
        self,
        generation: int,
        db: ProfileDatabase,
        baseline: Mapping[str, float],
    ) -> GenerationRecord:
        """Journal a rollout *before* it is swapped live.

        Stores the merged-profile snapshot (the recompiler input —
        deterministic expansion makes it sufficient to rebuild the
        artifact), supersedes the previous live record, and prunes
        history beyond ``max_generations``.
        """
        fingerprint = db.merged_fingerprint()
        with self._lock:
            snapshot_name = ""
            if self.directory is not None:
                snapshot_name = f"gen-{generation:05d}.profile.json"
                db.store(os.path.join(self.directory, snapshot_name))
            else:
                buffer = io.StringIO()
                db.store(buffer)
                self._snapshots[generation] = buffer.getvalue()
            for record in self._records:
                if record.status == "live":
                    record.status = "superseded"
            record = GenerationRecord(
                generation=generation,
                profile_fingerprint=fingerprint,
                baseline=dict(baseline),
                status="live",
                snapshot=snapshot_name,
            )
            self._records.append(record)
            self._prune_locked()
            self._persist_locked()
            return record

    def _prune_locked(self) -> None:
        while len(self._records) > self.max_generations:
            oldest = self._records[0]
            if oldest.status == "live":  # pragma: no cover - defensive
                break
            del self._records[0]
            self._snapshots.pop(oldest.generation, None)
            if self.directory is not None and oldest.snapshot:
                try:
                    os.unlink(os.path.join(self.directory, oldest.snapshot))
                except OSError:
                    pass

    # -- queries -----------------------------------------------------------

    def generations(self) -> list[GenerationRecord]:
        with self._lock:
            return list(self._records)

    def live(self) -> GenerationRecord | None:
        with self._lock:
            for record in reversed(self._records):
                if record.status == "live":
                    return record
            return None

    def rollback_target(self) -> GenerationRecord | None:
        """The newest non-rolled-back generation before the live one."""
        with self._lock:
            live_index = None
            for index in range(len(self._records) - 1, -1, -1):
                if self._records[index].status == "live":
                    live_index = index
                    break
            if live_index is None:
                return None
            for index in range(live_index - 1, -1, -1):
                if self._records[index].status == "superseded":
                    return self._records[index]
            return None

    def load_snapshot(self, record: GenerationRecord) -> ProfileDatabase:
        """Rebuild the merged-profile database a generation was compiled
        against."""
        if self.directory is not None and record.snapshot:
            return ProfileDatabase.load(
                os.path.join(self.directory, record.snapshot)
            )
        text = self._snapshots.get(record.generation)
        if text is None:
            raise KeyError(
                f"no profile snapshot for generation {record.generation}"
            )
        return ProfileDatabase.load(io.StringIO(text))

    # -- rollback + quarantine ---------------------------------------------

    def roll_back(self, offending: int, target: int) -> None:
        """Move the live pointer from ``offending`` back to ``target``."""
        with self._lock:
            for record in self._records:
                if record.generation == offending:
                    record.status = "rolled-back"
                elif record.generation == target:
                    record.status = "live"
            self._persist_locked()

    def quarantine(self, fingerprint: str, generation: int, reason: str) -> None:
        with self._lock:
            if any(e.get("fingerprint") == fingerprint for e in self._quarantine):
                return
            self._quarantine.append(
                {
                    "fingerprint": fingerprint,
                    "generation": generation,
                    "reason": reason,
                }
            )
            self._persist_locked()

    def is_quarantined(self, fingerprint: str) -> bool:
        with self._lock:
            return any(
                e.get("fingerprint") == fingerprint for e in self._quarantine
            )

    def quarantine_entries(self) -> list[dict]:
        with self._lock:
            return [dict(e) for e in self._quarantine]

    def clear_quarantine(self, fingerprint: str | None = None) -> int:
        """Drop one quarantined fingerprint (or all); returns how many."""
        with self._lock:
            before = len(self._quarantine)
            if fingerprint is None:
                self._quarantine = []
            else:
                self._quarantine = [
                    e for e in self._quarantine
                    if e.get("fingerprint") != fingerprint
                ]
            dropped = before - len(self._quarantine)
            if dropped:
                self._persist_locked()
            return dropped

    def __repr__(self) -> str:
        live = self.live()
        return (
            f"<GenerationJournal live="
            f"{live.generation if live else None} "
            f"records={len(self.generations())} "
            f"quarantined={len(self.quarantine_entries())}>"
        )


# -- circuit breaker ---------------------------------------------------------


class CircuitBreaker:
    """Consecutive-failure breaker around the recompile path.

    ``closed`` (normal) → ``open`` after ``failure_threshold``
    consecutive failures, suspending recompilation for
    ``backoff_base * 2**(opens-1)`` seconds (capped at ``backoff_max``)
    → ``half-open`` after the backoff, admitting exactly one probe
    recompile → ``closed`` on probe success, re-``open`` with a doubled
    backoff on probe failure. The clock is injectable so chaos tests
    drive the backoff deterministically.
    """

    def __init__(
        self,
        *,
        failure_threshold: int = 3,
        backoff_base: float = 30.0,
        backoff_max: float = 600.0,
        clock: Callable[[], float] = time.monotonic,
        metrics: ServiceMetrics | None = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure threshold must be >= 1, got {failure_threshold}"
            )
        self.failure_threshold = int(failure_threshold)
        self.backoff_base = float(backoff_base)
        self.backoff_max = float(backoff_max)
        self.metrics = metrics
        self._clock = clock
        self._lock = threading.Lock()
        self._state = "closed"
        self._failures = 0
        self._opens = 0
        self._open_until = 0.0
        if metrics is not None:
            metrics.set_gauge("breaker_state", BREAKER_STATES["closed"])

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    @property
    def consecutive_failures(self) -> int:
        with self._lock:
            return self._failures

    def current_backoff(self) -> float:
        """The backoff the *next* open would impose."""
        with self._lock:
            return self._backoff_locked(max(1, self._opens))

    def _backoff_locked(self, opens: int) -> float:
        return min(self.backoff_max, self.backoff_base * (2.0 ** (opens - 1)))

    def allow(self) -> tuple[bool, float]:
        """May a recompile proceed? Returns ``(allowed, retry_in_seconds)``.

        While open, returns ``False`` with the remaining backoff; once
        the backoff elapses the call itself transitions to half-open and
        admits the single probe.
        """
        with self._lock:
            if self._state == "closed":
                return (True, 0.0)
            now = self._clock()
            if self._state == "open":
                if now >= self._open_until:
                    self._transition_locked("half-open")
                    return (True, 0.0)
                return (False, self._open_until - now)
            # half-open: the probe is already in flight.
            return (False, 0.0)

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._opens = 0
            if self._state != "closed":
                self._transition_locked("closed")

    def record_failure(self) -> bool:
        """Count one failure; returns whether the breaker is now open."""
        with self._lock:
            if self._state == "half-open":
                self._failures += 1
                self._open_locked()
                return True
            self._failures += 1
            if self._state == "closed" and self._failures >= self.failure_threshold:
                self._open_locked()
                return True
            return self._state == "open"

    def _open_locked(self) -> None:
        self._opens += 1
        backoff = self._backoff_locked(self._opens)
        self._open_until = self._clock() + backoff
        self._transition_locked("open", backoff=backoff)
        if self.metrics is not None:
            self.metrics.inc("breaker_opens_total")

    def _transition_locked(self, new_state: str, **attrs: object) -> None:
        old_state = self._state
        self._state = new_state
        if self.metrics is not None:
            self.metrics.set_gauge("breaker_state", BREAKER_STATES[new_state])
        tracer = active_tracer()
        if tracer is not None:
            tracer.event(
                "rollout",
                f"breaker {old_state}->{new_state}",
                failures=self._failures,
                **attrs,
            )
        logger.info(
            "recompile circuit breaker %s -> %s (%d consecutive failure(s))",
            old_state, new_state, self._failures,
        )

    def __repr__(self) -> str:
        return (
            f"<CircuitBreaker {self.state} "
            f"failures={self.consecutive_failures}/{self.failure_threshold}>"
        )


# -- the guard ---------------------------------------------------------------


@dataclass
class _WatchState:
    generation: int
    until: float
    errors: int = 0
    latency_breaches: int = 0
    observations: int = 0
    samples: list[float] = field(default_factory=list)


class RolloutGuard:
    """Compose canary + journal + breaker into one swap-path gate.

    The controller drives it in this order:

    1. ``breaker.allow()`` / :meth:`is_quarantined` — may we recompile?
    2. recompile (a raise is a breaker failure);
    3. :meth:`verify` — static translation validation of the candidate's
       artifacts (cheap, no execution), *before* any probe runs;
    4. :meth:`validate` — the canary battery over the candidate;
    5. :meth:`commit` — journal the generation *before* the swap;
    6. swap, then :meth:`begin_watch` — post-swap observations stream in
       through :meth:`observe`, which answers with a rollback trigger
       reason when the error budget or latency SLO is blown within the
       watch window.
    """

    def __init__(
        self,
        *,
        validator: Callable[[Any], CanaryResult] | None = None,
        static_verifier: Callable[[Any], StaticVerifyResult] | None = None,
        journal: GenerationJournal | None = None,
        breaker: CircuitBreaker | None = None,
        rollback_window: float = 30.0,
        error_budget: int = 3,
        latency_slo: float | None = None,
        latency_breach_limit: int = 3,
        metrics: ServiceMetrics | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        #: public so fault injection can swap a deterministic failure in
        self.validator = validator
        #: static gate ahead of the canary; public for the same reason
        self.static_verifier = static_verifier
        self.journal = journal if journal is not None else GenerationJournal()
        self.breaker = (
            breaker if breaker is not None else CircuitBreaker(metrics=metrics)
        )
        self.rollback_window = float(rollback_window)
        self.error_budget = int(error_budget)
        self.latency_slo = latency_slo
        self.latency_breach_limit = int(latency_breach_limit)
        self.metrics = metrics
        self._clock = clock
        self._lock = threading.Lock()
        self._watch: _WatchState | None = None
        if metrics is not None:
            describe_rollout_metrics(metrics)

    # -- pre-swap ----------------------------------------------------------

    def is_quarantined(self, fingerprint: str) -> bool:
        return self.journal.is_quarantined(fingerprint)

    def verify(self, candidate: Any) -> StaticVerifyResult:
        """Statically verify the candidate's artifacts; never executes them.

        Runs *before* :meth:`validate`: a candidate whose generated code
        provably breaks a translation invariant is rejected without
        spending a single canary probe on it.
        """
        if self.static_verifier is None:
            return StaticVerifyResult(passed=True, artifacts=0)
        with maybe_span("verify", "candidate-static-verification"):
            result = self.static_verifier(candidate)
        if self.metrics is not None:
            if result.passed:
                self.metrics.inc("artifact_verify_passes_total", result.artifacts)
            else:
                self.metrics.inc("artifact_verify_failures_total")
        if not result.passed:
            logger.warning(
                "static verification rejected candidate: %s", result.summary()
            )
        return result

    def validate(self, candidate: Any) -> CanaryResult:
        """Run the canary battery; counts failures, never swaps."""
        if self.validator is None:
            return CanaryResult(passed=True, probes=0)
        with maybe_span("canary", "candidate-validation"):
            result = self.validator(candidate)
        if self.metrics is not None:
            self.metrics.inc("canary_probes_total", result.probes)
            for latency in result.latencies:
                self.metrics.observe_latency("canary_latency", latency)
            if not result.passed:
                self.metrics.inc("canary_failures_total")
        if not result.passed:
            logger.warning("canary rejected candidate: %s", result.summary())
        return result

    def commit(
        self,
        generation: int,
        db: ProfileDatabase,
        baseline: Mapping[str, float],
    ) -> GenerationRecord:
        """Journal ``generation`` (fsynced) ahead of the in-memory swap."""
        record = self.journal.record(generation, db, baseline)
        if self.metrics is not None:
            self.metrics.set_gauge("rollout_generation", generation)
        return record

    # -- post-swap watch ---------------------------------------------------

    def begin_watch(self, generation: int) -> None:
        """Start the post-swap watch window for ``generation``."""
        with self._lock:
            self._watch = _WatchState(
                generation=generation,
                until=self._clock() + self.rollback_window,
            )
        if self.metrics is not None:
            self.metrics.inc("rollouts_total")

    def end_watch(self) -> None:
        with self._lock:
            self._watch = None

    @property
    def watching(self) -> bool:
        with self._lock:
            watch = self._watch
            return watch is not None and self._clock() <= watch.until

    def observe(self, ok: bool, latency: float | None = None) -> str | None:
        """Feed one serving-path health observation to the watch window.

        Returns a rollback trigger reason when the watched generation
        blew its error budget or latency SLO, ``None`` otherwise.
        Observations outside a watch window are ignored — steady-state
        noise must not trigger rollbacks of long-settled artifacts.
        """
        with self._lock:
            watch = self._watch
            if watch is None:
                return None
            if self._clock() > watch.until:
                # The window closed with the budget intact: the rollout
                # is confirmed good.
                self._watch = None
                return None
            watch.observations += 1
            if not ok:
                watch.errors += 1
                if watch.errors >= self.error_budget:
                    return (
                        f"error budget blown in watch window: "
                        f"{watch.errors} error(s) in "
                        f"{watch.observations} observation(s) "
                        f"(budget {self.error_budget})"
                    )
            if latency is not None:
                watch.samples.append(latency)
                if self.latency_slo is not None and latency > self.latency_slo:
                    watch.latency_breaches += 1
                    if watch.latency_breaches >= self.latency_breach_limit:
                        return (
                            f"latency SLO blown in watch window: "
                            f"{watch.latency_breaches} consecutive "
                            f"sample(s) over {self.latency_slo:.3f}s"
                        )
                else:
                    watch.latency_breaches = 0
            return None

    # -- status ------------------------------------------------------------

    def status(self) -> dict:
        live = self.journal.live()
        return {
            "generation": live.generation if live is not None else 0,
            "breaker": self.breaker.state,
            "breaker_failures": self.breaker.consecutive_failures,
            "watching": self.watching,
            "journaled": len(self.journal.generations()),
            "rolled_back": sum(
                1
                for record in self.journal.generations()
                if record.status == "rolled-back"
            ),
            "quarantined": len(self.journal.quarantine_entries()),
        }

    def __repr__(self) -> str:
        status = self.status()
        return (
            f"<RolloutGuard gen={status['generation']} "
            f"breaker={status['breaker']} watching={status['watching']}>"
        )
