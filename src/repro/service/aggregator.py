"""The aggregation server: many shippers in, one merged profile out.

A :class:`ProfileAggregator` accepts framed connections from any number
of :class:`~repro.service.shipper.ProfileShipper`s (one handler thread
per connection, matching the repo's threading-based concurrency story)
and maintains:

* one **live counter set per (dataset, fingerprint) key** — deltas apply
  additively, so N workers shipping the same dataset merge into exactly
  the totals a single worker would have counted;
* a **delta ledger** making application idempotent across retries,
  reconnects, and spill replays;
* a **quarantine** for deltas whose source fingerprints disagree with the
  source the aggregator serves (reusing
  :class:`~repro.core.database.QuarantineReport` — stale profile data is
  the same failure whether it arrives in a file or a frame);
* periodic **checkpoints**: the merged profile goes through the existing
  atomic :meth:`ProfileDatabase.store` (so ``pgmp report``/``optimize``
  and the batch workflow read it like any stored profile), and a private
  state file (raw counts + ledger) lets a restarted aggregator resume
  exactly — replayed deltas are recognized as duplicates;
* an optional :class:`~repro.service.controller.RecompileController`
  evaluated after each checkpoint, closing the continuous loop:
  ingest → merge → drift → re-expand → swap;
* :class:`~repro.service.metrics.ServiceMetrics` and an optional plain
  ``http.server`` endpoint exposing ``/metrics`` and ``/healthz``.
"""

from __future__ import annotations

import hashlib
import http.server
import json
import socket
import socketserver
import threading
import time
from collections.abc import Mapping
from dataclasses import dataclass, field

from repro.core.counters import CounterSet
from repro.core.database import (
    ProfileDatabase,
    QuarantineReport,
    atomic_write_text,
    source_fingerprint,
)
from repro.core.errors import DeltaFormatError, ServiceError
from repro.core.policy import DegradationLog, ProfilePolicy, degrade
from repro.core.profile_point import ProfilePoint
from repro.obs.logs import get_logger
from repro.profiling.confidence import DatasetConfidence, merge_confidences
from repro.profiling.reconstruct import confidence_for_counts
from repro.service.controller import RecompilationDecision, RecompileController
from repro.service.delta import (
    WIRE_VERSION,
    DeltaBatch,
    DeltaLedger,
    ProfileDelta,
    negotiated_features,
    read_frame_ex,
    write_frame,
)
from repro.service.metrics import ServiceMetrics
from repro.service.transport import ServiceAddress, parse_address

logger = get_logger(__name__)

__all__ = ["ProfileAggregator", "StopResult", "STATE_FORMAT_VERSION"]

#: Version tag of the aggregator's private state file.
STATE_FORMAT_VERSION = 1


@dataclass
class StopResult:
    """What :meth:`ProfileAggregator.stop` managed to shut down.

    A thread that does not join within the timeout is *abandoned*, not
    ignored: it is named here and logged as an error, and the CLI turns
    a dirty stop into a non-zero exit code — a handler wedged on a dead
    peer must not look like a clean shutdown.
    """

    stuck_threads: list[str] = field(default_factory=list)
    checkpoint_ok: bool = True

    @property
    def clean(self) -> bool:
        """No thread was abandoned. The final checkpoint's outcome is
        reported separately (``checkpoint_ok``) because checkpoint
        failures already degrade per policy during normal operation."""
        return not self.stuck_threads

    def __str__(self) -> str:
        if self.clean:
            return "stopped cleanly"
        parts = []
        if self.stuck_threads:
            parts.append(
                "stuck thread(s): " + ", ".join(self.stuck_threads)
            )
        if not self.checkpoint_ok:
            parts.append("final checkpoint failed")
        return "; ".join(parts)


class _DatasetSlot:
    """One live dataset: a threadsafe counter set plus its provenance."""

    __slots__ = ("counters", "fingerprints", "confidence")

    def __init__(self, name: str, fingerprints: Mapping[str, str]) -> None:
        self.counters = CounterSet(name=name, threadsafe=True)
        self.fingerprints = dict(fingerprints)
        #: merged sampling confidence across every shipper that fed this
        #: slot; ``None`` while only exact deltas have arrived
        self.confidence: DatasetConfidence | None = None


def _dataset_key(dataset: str, fingerprints: Mapping[str, str]) -> str:
    """Stable key for a (dataset name, source fingerprints) pair.

    Deltas from workers running *different* source versions must not be
    summed into one counter set — they describe different code. Keying by
    name + a digest of the fingerprint mapping keeps them separate.
    """
    if not fingerprints:
        return dataset
    blob = json.dumps(sorted(fingerprints.items()), separators=(",", ":"))
    return f"{dataset}@{hashlib.sha256(blob.encode('utf-8')).hexdigest()[:12]}"


class _FrameServerMixin:
    aggregator: "ProfileAggregator"
    daemon_threads = True
    allow_reuse_address = True


class _TcpServer(_FrameServerMixin, socketserver.ThreadingTCPServer):
    pass


if hasattr(socket, "AF_UNIX"):

    class _UnixServer(_FrameServerMixin, socketserver.ThreadingUnixStreamServer):
        pass


class _Handler(socketserver.BaseRequestHandler):
    """One shipper connection: a loop of request frame → response frame."""

    def handle(self) -> None:
        aggregator = self.server.aggregator  # type: ignore[attr-defined]
        aggregator.metrics.inc("connections_total")
        if aggregator.read_timeout is not None:
            # A stalled or vanished client must not pin this handler
            # thread forever: reads give up after the timeout and the
            # connection drops (the shipper's spill log replays).
            self.request.settimeout(aggregator.read_timeout)
        stream = self.request.makefile("rwb")
        compress_out = False  # flips on after a v2 hello negotiates zlib
        try:
            while True:
                try:
                    frame, frame_bytes, frame_raw = read_frame_ex(stream)
                except TimeoutError:
                    aggregator.metrics.inc("handler_read_timeouts_total")
                    logger.warning(
                        "dropping connection: no frame within %.1fs",
                        aggregator.read_timeout,
                    )
                    return
                except DeltaFormatError:
                    # A torn or corrupt stream: nothing sensible can follow.
                    aggregator.metrics.inc("protocol_errors_total")
                    return
                if frame is None:
                    return
                if isinstance(frame, dict) and frame.get("type") == "hello":
                    compress_out = "zlib" in negotiated_features(frame)
                response = aggregator.handle_frame(
                    frame, wire_bytes=frame_bytes, raw=frame_raw
                )
                if response is None:
                    return  # shutdown frame: close this connection too
                write_frame(stream, response, compress=compress_out)
                stream.flush()
        except (OSError, ValueError):
            return  # client vanished mid-frame; its spill will replay
        finally:
            try:
                stream.close()
            except OSError:
                pass


class ProfileAggregator:
    """Merge profile deltas from a fleet of workers (see module docs)."""

    def __init__(
        self,
        listen: str | ServiceAddress,
        *,
        checkpoint_path: str | None = None,
        state_path: str | None = None,
        checkpoint_interval: float = 10.0,
        sources: Mapping[str, str] | None = None,
        expected_fingerprints: Mapping[str, str] | None = None,
        controller: RecompileController | None = None,
        policy: ProfilePolicy | str = ProfilePolicy.WARN,
        degradations: DegradationLog | None = None,
        metrics: ServiceMetrics | None = None,
        metrics_port: int | None = None,
        read_timeout: float | None = 30.0,
        name: str = "profile-information",
        assume_sample_scale: float | None = None,
    ) -> None:
        self.listen = parse_address(listen)
        self.checkpoint_path = checkpoint_path
        self.state_path = state_path
        self.checkpoint_interval = float(checkpoint_interval)
        self.controller = controller
        #: per-connection read timeout for handler threads (None = never)
        self.read_timeout = float(read_timeout) if read_timeout else None
        self.policy = ProfilePolicy.coerce(policy)
        self.degradations = (
            degradations if degradations is not None else DegradationLog()
        )
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self.metrics_port = metrics_port
        self.name = name
        #: treat confidence-less deltas as sampled at this scaling factor
        #: (``pgmp serve --profile-mode sampled``): v1 shippers in a
        #: sampled fleet cannot tag their deltas, so the operator declares
        #: the fleet-wide scale here. ``None`` keeps them exact.
        self.assume_sample_scale = (
            None if assume_sample_scale is None else float(assume_sample_scale)
        )
        if self.assume_sample_scale is not None and self.assume_sample_scale < 1.0:
            raise ServiceError(
                f"assume_sample_scale must be >= 1, "
                f"got {self.assume_sample_scale}"
            )
        #: current source fingerprints deltas are checked against; a delta
        #: fingerprinting one of these files differently is quarantined.
        self.expected_fingerprints: dict[str, str] = dict(
            expected_fingerprints or {}
        )
        if sources:
            for filename, text in sources.items():
                self.expected_fingerprints[filename] = source_fingerprint(text)

        self._lock = threading.Lock()
        self._datasets: dict[str, _DatasetSlot] = {}
        self._ledger = DeltaLedger()
        self.quarantine = QuarantineReport()
        self._quarantine_index = 0

        self._server: socketserver.BaseServer | None = None
        self._server_thread: threading.Thread | None = None
        self._housekeeper: threading.Thread | None = None
        self._metrics_server: http.server.ThreadingHTTPServer | None = None
        self._metrics_thread: threading.Thread | None = None
        self._stop = threading.Event()
        #: set when a shutdown frame arrives (the CLI waits on this)
        self.shutdown_requested = threading.Event()

        self._describe_metrics()
        if self.state_path:
            self._load_state()

    # -- metrics boilerplate ----------------------------------------------

    def _describe_metrics(self) -> None:
        m = self.metrics
        m.describe("deltas_applied_total", "Profile deltas applied")
        m.describe("deltas_duplicate_total", "Deltas ignored as already applied")
        m.describe(
            "deltas_quarantined_total", "Deltas quarantined (stale fingerprints)"
        )
        m.describe("deltas_rejected_total", "Deltas rejected as malformed")
        m.describe("bytes_ingested_total", "Payload bytes carried by applied deltas")
        m.describe("counts_ingested_total", "Counter increments applied")
        m.describe("checkpoints_total", "Successful checkpoints written")
        m.describe("checkpoint_failures_total", "Checkpoints that failed to write")
        m.describe("recompilations_total", "Controller recompile-and-swaps")
        m.describe(
            "recompile_generation",
            "Generation number of the deployed artifact",
        )
        m.describe(
            "recompile_decisions_changed",
            "Meta-program decision sites that changed in the last swap",
        )
        m.describe("connections_total", "Shipper connections accepted")
        m.describe("protocol_errors_total", "Connections dropped on torn frames")
        m.describe(
            "handler_read_timeouts_total",
            "Connections dropped because a client sent no frame in time",
        )
        m.describe("datasets", "Live (dataset, fingerprint) counter sets")
        m.describe("ingest_latency", "Per-delta apply latency")
        m.describe("batch_latency", "Per-batch apply latency (v2 batch frames)")
        m.describe("recompile_pause", "Recompile-and-swap pause")
        m.describe(
            "fleet_deltas_total",
            "Deltas applied at the root, broken down by originating shard",
        )
        m.describe(
            "fleet_counts_total",
            "Counter increments applied at the root, by originating shard",
        )
        m.describe(
            "sampled_deltas_total",
            "Deltas applied that carried (or were assigned) sampling "
            "confidence",
        )

    # -- frame dispatch ----------------------------------------------------

    def handle_frame(
        self,
        frame: object,
        wire_bytes: int | None = None,
        raw: bytes | None = None,
    ) -> dict | None:
        """Process one request frame; returns the response frame.

        Returns ``None`` for a shutdown frame (the handler then closes the
        connection). Never raises on malformed input — bad frames are
        counted and answered with a rejection, because a profile service
        must not be crashable by one confused worker.

        ``wire_bytes`` is the frame's on-the-wire size when the caller
        read it off a socket; without it, byte accounting falls back to
        re-serializing the frame. ``raw`` is the frame's decompressed
        JSON payload — unused here, but durable subclasses persist it
        verbatim instead of re-serializing ``frame``.
        """
        if not isinstance(frame, dict):
            self.metrics.inc("deltas_rejected_total")
            return {"type": "ack", "status": "rejected", "error": "not an object"}
        kind = frame.get("type")
        if kind == "delta":
            return self._handle_delta(frame, wire_bytes=wire_bytes)
        if kind == "batch":
            return self._handle_batch(frame, wire_bytes=wire_bytes)
        if kind == "hello":
            return {
                "type": "hello",
                "v": WIRE_VERSION,
                "features": sorted(negotiated_features(frame)),
            }
        if kind == "stats":
            return self._stats_frame()
        if kind == "metrics":
            return {"type": "metrics", "text": self.metrics.render()}
        if kind == "ping":
            return {"type": "pong"}
        if kind == "rollback":
            return self._handle_rollback(frame)
        if kind == "observe":
            return self._handle_observe(frame)
        if kind == "shutdown":
            self.shutdown_requested.set()
            return None
        self.metrics.inc("deltas_rejected_total")
        return {
            "type": "ack",
            "status": "rejected",
            "error": f"unknown frame type {kind!r}",
        }

    def _handle_delta(self, frame: dict, wire_bytes: int | None = None) -> dict:
        try:
            delta = ProfileDelta.from_json_object(frame)
        except DeltaFormatError as exc:
            self.metrics.inc("deltas_rejected_total")
            degrade(
                "aggregate",
                f"malformed delta frame: {exc}",
                "frame rejected",
                policy=self.policy,
                log=self.degradations,
            )
            return {"type": "ack", "status": "rejected", "error": str(exc)}
        shard = frame.get("shard")
        ack = self._apply_delta(
            delta, shard=shard if isinstance(shard, str) else None
        )
        if ack.get("status") == "applied":
            self.metrics.inc(
                "bytes_ingested_total", self._frame_bytes(frame, wire_bytes)
            )
        return ack

    def _handle_batch(self, frame: dict, wire_bytes: int | None = None) -> dict:
        """A v2 batch: apply each delta, answer one ack for the lot.

        Batching is pure framing — the per-delta semantics (ledger dedup,
        quarantine, rejection) are exactly the lone-frame ones, so a
        batch is never partially retried into double counts. What IS
        batched is the bookkeeping: counter increments merge into one
        application per dataset and the metrics update once per batch,
        which is where the fleet's ingest throughput comes from. The ack
        carries a per-delta ``acks`` list only when some delta did *not*
        apply; ``applied == len(deltas)`` with no list means all clear.
        """
        started = time.perf_counter()
        try:
            batch = DeltaBatch.from_json_object(frame)
        except DeltaFormatError as exc:
            self.metrics.inc("deltas_rejected_total")
            degrade(
                "aggregate",
                f"malformed batch frame: {exc}",
                "frame rejected",
                policy=self.policy,
                log=self.degradations,
            )
            return {"type": "ack", "status": "rejected", "error": str(exc)}
        acks: list[dict] = []
        applied = 0
        counts_total = 0
        # dataset key -> (slot, merged {point key: by}); one lock+apply
        # per dataset per batch instead of per delta. Merging is keyed by
        # the *string* key — str hashes are cached by the interpreter,
        # while hashing a ProfilePoint walks the whole dataclass chain —
        # and each unique key is parsed (and validated) exactly once.
        merged: dict[str, tuple[_DatasetSlot, dict[str, int]]] = {}
        parsed: dict[str, ProfilePoint] = {}
        stale_cache: dict[tuple, list[str]] = {}
        for delta in batch.deltas:
            fps_key = tuple(sorted(delta.fingerprints.items()))
            stale = stale_cache.get(fps_key)
            if stale is None:
                stale = stale_cache[fps_key] = self._stale_files(
                    delta.fingerprints
                )
            if stale:
                acks.append(self._quarantine_delta(delta, stale))
                continue
            key = _dataset_key(delta.dataset, delta.fingerprints)
            with self._lock:
                if not self._ledger.mark(delta.shipper, delta.seq):
                    self.metrics.inc("deltas_duplicate_total")
                    acks.append(
                        {"type": "ack", "seq": delta.seq, "status": "duplicate"}
                    )
                    continue
                slot = self._datasets.get(key)
                if slot is None:
                    slot = self._datasets[key] = _DatasetSlot(
                        delta.dataset, delta.fingerprints
                    )
                    self.metrics.set_gauge("datasets", len(self._datasets))
            try:
                for point_key in delta.counts:
                    if point_key not in parsed:
                        parsed[point_key] = ProfilePoint.from_key(point_key)
            except Exception as exc:
                # Same contract as the lone-delta path: the seq stays
                # marked so the sender's retry cannot loop forever.
                self.metrics.inc("deltas_rejected_total")
                degrade(
                    "aggregate",
                    f"delta seq={delta.seq} from {delta.shipper!r} carried "
                    f"unparseable counts: {exc}",
                    "delta rejected",
                    policy=self.policy,
                    log=self.degradations,
                )
                acks.append(
                    {
                        "type": "ack",
                        "seq": delta.seq,
                        "status": "rejected",
                        "error": str(exc),
                    }
                )
                continue
            entry = merged.get(key)
            if entry is None:
                entry = merged[key] = (slot, {})
            bucket = entry[1]
            for point_key, by in delta.counts.items():
                bucket[point_key] = bucket.get(point_key, 0) + by
                counts_total += by
            applied += 1
            acks.append({"type": "ack", "seq": delta.seq, "status": "applied"})
            self._merge_slot_confidence(slot, self._delta_confidence(delta))
        for slot, increments in merged.values():
            slot.counters.apply_increments(
                {parsed[k]: by for k, by in increments.items()}
            )
        if applied:
            self.metrics.inc("deltas_applied_total", applied)
            self.metrics.inc("counts_ingested_total", counts_total)
            if batch.shard is not None:
                self.metrics.inc_labeled(
                    "fleet_deltas_total", {"shard": batch.shard}, applied
                )
                self.metrics.inc_labeled(
                    "fleet_counts_total", {"shard": batch.shard}, counts_total
                )
            self.metrics.inc(
                "bytes_ingested_total", self._frame_bytes(frame, wire_bytes)
            )
        elapsed = time.perf_counter() - started
        self.metrics.observe_latency("batch_latency", elapsed)
        if batch.deltas:
            # The amortized per-delta apply cost, so ingest_latency stays
            # comparable between lone-frame and batched shippers.
            self.metrics.observe_latency(
                "ingest_latency", elapsed / len(batch.deltas)
            )
        response: dict = {
            "type": "ack",
            "status": "batch",
            "applied": applied,
        }
        if applied != len(batch.deltas):
            response["acks"] = [
                {k: v for k, v in ack.items() if k != "type"} for ack in acks
            ]
        return response

    @staticmethod
    def _frame_bytes(frame: dict, wire_bytes: int | None) -> int:
        if wire_bytes is not None:
            return wire_bytes
        return len(json.dumps(frame, separators=(",", ":")))

    def _quarantine_delta(self, delta: ProfileDelta, stale: list[str]) -> dict:
        with self._lock:
            self._quarantine_index += 1
            index = self._quarantine_index
        reason = (
            f"delta seq={delta.seq} from {delta.shipper!r} was collected "
            f"against different source for {', '.join(stale)}"
        )
        self.quarantine.add(index, delta.dataset, "stale", reason)
        self.metrics.inc("deltas_quarantined_total")
        degrade(
            "aggregate",
            reason,
            "delta quarantined; healthy shippers keep merging",
            policy=self.policy,
            log=self.degradations,
        )
        return {"type": "ack", "seq": delta.seq, "status": "stale"}

    def _apply_delta(
        self, delta: ProfileDelta, shard: str | None = None
    ) -> dict:
        started = time.perf_counter()
        stale = self._stale_files(delta.fingerprints)
        if stale:
            return self._quarantine_delta(delta, stale)

        key = _dataset_key(delta.dataset, delta.fingerprints)
        with self._lock:
            if not self._ledger.mark(delta.shipper, delta.seq):
                self.metrics.inc("deltas_duplicate_total")
                return {"type": "ack", "seq": delta.seq, "status": "duplicate"}
            slot = self._datasets.get(key)
            if slot is None:
                slot = self._datasets[key] = _DatasetSlot(
                    delta.dataset, delta.fingerprints
                )
                self.metrics.set_gauge("datasets", len(self._datasets))
        try:
            slot.counters.apply_key_increments(delta.counts)
        except Exception as exc:
            # Point keys that fail to parse are malformed wire data; the
            # ledger already marked the seq, which is correct — retrying
            # the same bad delta must not loop forever.
            self.metrics.inc("deltas_rejected_total")
            degrade(
                "aggregate",
                f"delta seq={delta.seq} from {delta.shipper!r} carried "
                f"unparseable counts: {exc}",
                "delta rejected",
                policy=self.policy,
                log=self.degradations,
            )
            return {"type": "ack", "seq": delta.seq, "status": "rejected",
                    "error": str(exc)}
        self._merge_slot_confidence(slot, self._delta_confidence(delta))
        self.metrics.inc("deltas_applied_total")
        self.metrics.inc("counts_ingested_total", delta.total())
        if shard is not None:
            # The shard → root uplink tags its frames; the root exposes a
            # per-shard ingest breakdown without any extra bookkeeping.
            self.metrics.inc_labeled("fleet_deltas_total", {"shard": shard})
            self.metrics.inc_labeled(
                "fleet_counts_total", {"shard": shard}, delta.total()
            )
        self.metrics.observe_latency(
            "ingest_latency", time.perf_counter() - started
        )
        return {"type": "ack", "seq": delta.seq, "status": "applied"}

    def _handle_rollback(self, frame: dict) -> dict:
        """``pgmp rollback`` over the wire: force a manual rollback."""
        if self.controller is None:
            return {
                "type": "rollback",
                "status": "unavailable",
                "error": "no recompile controller configured",
            }
        reason = str(frame.get("reason", "manual rollback (wire request)"))
        try:
            decision = self.controller.rollback(reason=reason)
        except Exception as exc:
            degrade(
                "rollback",
                f"rollback raised: {exc}",
                "keeping the currently-deployed artifact",
                policy=self.policy,
                log=self.degradations,
            )
            return {"type": "rollback", "status": "failed", "error": str(exc)}
        return {
            "type": "rollback",
            "status": "ok" if decision.recompiled else "unavailable",
            "generation": decision.generation,
            "reason": decision.reason,
        }

    def _handle_observe(self, frame: dict) -> dict:
        """A serving-path health sample for the rollout watch window."""
        if self.controller is None:
            return {
                "type": "ack",
                "status": "ignored",
                "error": "no recompile controller configured",
            }
        ok = frame.get("ok")
        if not isinstance(ok, bool):
            self.metrics.inc("deltas_rejected_total")
            return {
                "type": "ack",
                "status": "rejected",
                "error": "observe frame needs a boolean 'ok'",
            }
        latency = frame.get("latency")
        if latency is not None and not isinstance(latency, (int, float)):
            self.metrics.inc("deltas_rejected_total")
            return {
                "type": "ack",
                "status": "rejected",
                "error": "observe frame 'latency' must be a number",
            }
        decision = self.controller.observe_health(
            ok, float(latency) if latency is not None else None
        )
        response: dict = {"type": "ack", "status": "observed",
                          "rolled_back": decision is not None}
        if decision is not None:
            response["generation"] = decision.generation
            response["reason"] = decision.reason
        return response

    def _delta_confidence(self, delta: ProfileDelta) -> DatasetConfidence | None:
        """The confidence an applied delta contributes to its slot.

        A tagged delta speaks for itself; an untagged one is exact unless
        the operator declared a fleet-wide :attr:`assume_sample_scale`.
        """
        if delta.confidence is not None:
            return delta.confidence if delta.confidence.is_sampled else None
        if self.assume_sample_scale is not None and self.assume_sample_scale > 1.0:
            return confidence_for_counts(delta.counts, self.assume_sample_scale)
        return None

    def _merge_slot_confidence(
        self, slot: _DatasetSlot, confidence: DatasetConfidence | None
    ) -> None:
        if confidence is None:
            return
        with self._lock:
            slot.confidence = merge_confidences([slot.confidence, confidence])
        self.metrics.inc("sampled_deltas_total")

    def _stale_files(self, fingerprints: Mapping[str, str]) -> list[str]:
        return sorted(
            filename
            for filename, digest in fingerprints.items()
            if filename in self.expected_fingerprints
            and self.expected_fingerprints[filename] != digest
        )

    def _stats_frame(self) -> dict:
        with self._lock:
            datasets = {}
            for key, slot in self._datasets.items():
                entry = {
                    "name": slot.counters.name,
                    "total": slot.counters.total(),
                    "points": len(slot.counters),
                    "fingerprints": dict(slot.fingerprints),
                }
                if slot.confidence is not None and slot.confidence.is_sampled:
                    entry["confidence"] = slot.confidence.to_json_object()
                datasets[key] = entry
            shippers = {
                shipper: self._ledger.applied_count(shipper)
                for shipper in self._ledger.shippers()
            }
        stats: dict = {
            "type": "stats",
            "datasets": datasets,
            "shippers": shippers,
            "quarantined": len(self.quarantine),
            "metrics": self.metrics.snapshot(),
        }
        if self.controller is not None:
            rollout = self.controller.rollout_status()
            if rollout is not None:
                stats["rollout"] = rollout
        return stats

    # -- merged views ------------------------------------------------------

    def total_counts(self) -> int:
        """Sum of every applied increment (the zero-loss check)."""
        with self._lock:
            slots = list(self._datasets.values())
        return sum(slot.counters.total() for slot in slots)

    def merged_database(self) -> ProfileDatabase:
        """The merged profile as a standard :class:`ProfileDatabase`.

        One data set per live (dataset, fingerprint) counter set — the
        same weighted Figure-3 merge the batch workflow computes.
        """
        with self._lock:
            slots = list(self._datasets.values())
        return ProfileDatabase.from_counter_sets(
            [slot.counters for slot in slots],
            name=self.name,
            fingerprints=[slot.fingerprints for slot in slots],
            confidences=[slot.confidence for slot in slots],
        )

    # -- checkpointing -----------------------------------------------------

    def checkpoint(self) -> bool:
        """Atomically persist the merged profile (and private state).

        Returns whether both writes succeeded; failures degrade per
        policy (an unwritable disk must not take the ingest path down).
        """
        ok = True
        if self.checkpoint_path:
            try:
                self.merged_database().store(self.checkpoint_path)
            except OSError as exc:
                ok = False
                self.metrics.inc("checkpoint_failures_total")
                degrade(
                    "checkpoint",
                    f"{self.checkpoint_path}: {exc}",
                    "profile checkpoint skipped; counts remain in memory",
                    policy=self.policy,
                    log=self.degradations,
                )
        if self.state_path:
            try:
                atomic_write_text(self.state_path, self._state_payload())
            except OSError as exc:
                ok = False
                self.metrics.inc("checkpoint_failures_total")
                degrade(
                    "checkpoint",
                    f"{self.state_path}: {exc}",
                    "state checkpoint skipped; a restart would lose counts",
                    policy=self.policy,
                    log=self.degradations,
                )
        if ok and (self.checkpoint_path or self.state_path):
            self.metrics.inc("checkpoints_total")
        return ok

    def _state_payload(self) -> str:
        with self._lock:
            datasets = []
            for key, slot in self._datasets.items():
                entry: dict = {
                    "key": key,
                    "name": slot.counters.name,
                    "fingerprints": dict(slot.fingerprints),
                    "counts": slot.counters.as_key_mapping(),
                }
                if slot.confidence is not None and slot.confidence.is_sampled:
                    entry["confidence"] = slot.confidence.to_json_object()
                datasets.append(entry)
            ledger = self._ledger.to_json_object()
        payload = {
            "format": "pgmp-service-state",
            "version": STATE_FORMAT_VERSION,
            "name": self.name,
            "datasets": datasets,
            "ledger": ledger,
        }
        payload.update(self._state_extra())
        return json.dumps(payload, indent=2, sort_keys=True)

    def _state_extra(self) -> dict:
        """Extra keys a subclass persists in the state file.

        The fleet's shard aggregator stores its uplink cursor here so a
        restarted shard resumes the shard → root stream without loss or
        double-count. The base aggregator has nothing to add.
        """
        return {}

    def _restore_extra(self, obj: dict) -> None:
        """Counterpart of :meth:`_state_extra` on restore (may raise —
        the caller degrades to a cold start on any failure)."""

    def _load_state(self) -> None:
        """Resume counts + ledger from a state checkpoint, if present.

        Corrupt or torn state degrades to a cold start (per policy) — the
        aggregator serves either way; with the v2 checkpoint written
        atomically, a *well-formed-but-old* state is the worst non-fault
        case, and shipper spill replay + the ledger close the gap.
        """
        try:
            with open(self.state_path, "r", encoding="utf-8") as handle:  # type: ignore[arg-type]
                obj = json.load(handle)
            if not isinstance(obj, dict) or obj.get("format") != "pgmp-service-state":
                raise DeltaFormatError(
                    f"not a pgmp service state file "
                    f"(format={obj.get('format') if isinstance(obj, dict) else None!r})"
                )
            if obj.get("version") != STATE_FORMAT_VERSION:
                raise DeltaFormatError(
                    f"unsupported state version {obj.get('version')!r}"
                )
            datasets = obj.get("datasets")
            if not isinstance(datasets, list):
                raise DeltaFormatError("state file missing 'datasets' list")
            restored: dict[str, _DatasetSlot] = {}
            for entry in datasets:
                if not isinstance(entry, dict):
                    raise DeltaFormatError("malformed state dataset entry")
                slot = _DatasetSlot(
                    str(entry.get("name", "dataset")),
                    entry.get("fingerprints", {}),
                )
                slot.counters.apply_key_increments(entry.get("counts", {}))
                raw_conf = entry.get("confidence")
                if raw_conf is not None:
                    slot.confidence = DatasetConfidence.from_json_object(
                        raw_conf
                    )
                restored[str(entry["key"])] = slot
            ledger = DeltaLedger.from_json_object(obj.get("ledger", {}))
            self._restore_extra(obj)
        except FileNotFoundError:
            return
        except Exception as exc:
            degrade(
                "restore",
                f"{self.state_path}: {exc}",
                "starting with empty counters (cold start)",
                policy=self.policy,
                log=self.degradations,
            )
            return
        with self._lock:
            self._datasets = restored
            self._ledger = ledger
            self.metrics.set_gauge("datasets", len(restored))

    # -- lifecycle ---------------------------------------------------------

    @property
    def address(self) -> ServiceAddress:
        """The bound address (with the real port once started)."""
        if self._server is not None and self.listen.family == "tcp":
            host, port = self._server.server_address[:2]  # type: ignore[misc]
            return ServiceAddress(family="tcp", host=str(host), port=int(port))
        return self.listen

    def start(self) -> "ProfileAggregator":
        """Bind, start the accept loop + housekeeping (+ metrics HTTP)."""
        if self._server is not None:
            return self
        if self.listen.family == "unix":
            if not hasattr(socket, "AF_UNIX"):  # pragma: no cover
                raise ServiceError(
                    "unix-domain sockets unavailable on this platform"
                )
            server: socketserver.BaseServer = _UnixServer(
                self.listen.path, _Handler
            )
        else:
            server = _TcpServer((self.listen.host, self.listen.port), _Handler)
        server.aggregator = self  # type: ignore[attr-defined]
        self._server = server
        self._stop.clear()
        self._server_thread = threading.Thread(
            target=server.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="pgmp-aggregator-accept",
            daemon=True,
        )
        self._server_thread.start()
        self._housekeeper = threading.Thread(
            target=self._housekeeping, name="pgmp-aggregator-housekeeping",
            daemon=True,
        )
        self._housekeeper.start()
        if self.metrics_port is not None:
            self._start_metrics_server(self.metrics_port)
        logger.info("aggregator %s listening on %s", self.name, self.address)
        return self

    def _housekeeping(self) -> None:
        while not self._stop.wait(self.checkpoint_interval):
            self.checkpoint()
            self.run_controller()

    def run_controller(self) -> RecompilationDecision | None:
        """One controller evaluation over the current merged profile."""
        if self.controller is None:
            return None
        try:
            return self.controller.maybe_recompile(self.merged_database())
        except Exception as exc:
            degrade(
                "recompile",
                f"controller raised: {exc}",
                "keeping the previously-deployed artifact",
                policy=self.policy,
                log=self.degradations,
            )
            return None

    def stop(
        self, join_timeout: float = 10.0, *, checkpoint: bool = True
    ) -> StopResult:
        """Stop serving, final checkpoint, release the port/socket.

        Returns a :class:`StopResult`; a thread still alive after
        ``join_timeout`` is reported there (and logged as an error)
        instead of being silently abandoned. ``checkpoint=False`` skips
        the final checkpoint — the chaos suite uses it to model a crash
        that never got to flush state.
        """
        result = StopResult()
        self._stop.set()
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        self._server_thread = self._join_or_report(
            self._server_thread, join_timeout, result
        )
        self._housekeeper = self._join_or_report(
            self._housekeeper, join_timeout, result
        )
        if self._metrics_server is not None:
            self._metrics_server.shutdown()
            self._metrics_server.server_close()
            self._metrics_server = None
        self._metrics_thread = self._join_or_report(
            self._metrics_thread, join_timeout, result
        )
        result.checkpoint_ok = self.checkpoint() if checkpoint else True
        logger.info("aggregator %s stopped (%s)", self.name, result)
        return result

    def _join_or_report(
        self,
        thread: threading.Thread | None,
        join_timeout: float,
        result: StopResult,
    ) -> threading.Thread | None:
        if thread is None:
            return None
        thread.join(timeout=join_timeout)
        if thread.is_alive():
            result.stuck_threads.append(thread.name)
            logger.error(
                "thread %r did not stop within %.1fs; abandoning it "
                "(daemon thread, dies with the process)",
                thread.name, join_timeout,
            )
        return None

    def __enter__(self) -> "ProfileAggregator":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- metrics HTTP endpoint ---------------------------------------------

    def _healthz_body(self) -> str:
        """The ``/healthz`` response body (the fleet root appends the
        per-shard liveness summary by overriding this)."""
        rollout = (
            self.controller.rollout_status()
            if self.controller is not None
            else None
        )
        if rollout is not None:
            return (
                f"ok generation={rollout['generation']} "
                f"breaker={rollout['breaker']}\n"
            )
        return "ok\n"

    def _start_metrics_server(self, port: int) -> None:
        aggregator = self

        class MetricsHandler(http.server.BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - http.server API
                if self.path == "/metrics":
                    body = aggregator.metrics.render().encode("utf-8")
                    self.send_response(200)
                    self.send_header(
                        "Content-Type", "text/plain; version=0.0.4"
                    )
                elif self.path == "/healthz":
                    body = aggregator._healthz_body().encode("utf-8")
                    self.send_response(200)
                    self.send_header("Content-Type", "text/plain")
                else:
                    body = b"not found\n"
                    self.send_response(404)
                    self.send_header("Content-Type", "text/plain")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args: object) -> None:
                pass  # metrics scrapes must not spam the server's stderr

        server = http.server.ThreadingHTTPServer(("127.0.0.1", port), MetricsHandler)
        server.daemon_threads = True
        self._metrics_server = server
        self._metrics_thread = threading.Thread(
            target=server.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="pgmp-aggregator-metrics",
            daemon=True,
        )
        self._metrics_thread.start()

    @property
    def metrics_address(self) -> tuple[str, int] | None:
        if self._metrics_server is None:
            return None
        host, port = self._metrics_server.server_address[:2]
        return str(host), int(port)

    def __repr__(self) -> str:
        return (
            f"<ProfileAggregator {self.address} "
            f"datasets={len(self._datasets)} "
            f"applied={int(self.metrics.counter('deltas_applied_total'))}>"
        )
