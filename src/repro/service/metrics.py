"""Back-compat shim: :class:`ServiceMetrics` now lives in ``repro.obs``.

The registry was promoted to :mod:`repro.obs.metrics` so the whole
library — core expansion, the three-pass workflow, and the service — can
report through one metrics type. Existing imports of
``repro.service.metrics`` keep working unchanged.
"""

from __future__ import annotations

from repro.obs.metrics import (
    LATENCY_WINDOW,
    RENDER_QUANTILES,
    ServiceMetrics,
    get_global_metrics,
)

__all__ = [
    "LATENCY_WINDOW",
    "RENDER_QUANTILES",
    "ServiceMetrics",
    "get_global_metrics",
]
