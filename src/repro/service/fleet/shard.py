"""One shard of the fleet: a durable aggregator owning a ring slice.

A :class:`ShardAggregator` is a :class:`~repro.service.aggregator.
ProfileAggregator` with three additions:

* an **asyncio transport** (:class:`~repro.service.fleet.aio.
  AsyncFrameServer`) so one shard holds >10k mostly-idle shipper
  connections without a thread each (the threading transport remains
  available for parity tests);
* a **write-ahead log**: every delta/batch frame is appended (and
  fsynced) *before* it is applied and acked, so an ack really means
  durable. The WAL is segmented: a checkpoint seals the live segment,
  snapshots state, and prunes sealed segments only once the snapshot is
  safely on disk — frames that race the snapshot end up in both, which
  is harmless because the ledger deduplicates on replay;
* an **uplink** to the root merger using *persist-cut-then-send*: uplink
  deltas are cut from the merged counters only at checkpoint time, and
  the cut (sequence number, per-dataset baselines, the pending deltas
  themselves) is persisted in the same atomic state write **before**
  anything is sent. A restarted shard therefore resends exactly the
  frames it already cut — never a re-cut of a sent sequence number with
  different contents — and the root's ledger (keyed by the shard's
  *stable* ``shard-<id>`` shipper identity) drops the duplicates. That
  is the whole zero-loss, zero-double-count story across failover.
"""

from __future__ import annotations

import json
import os
import socket as socket_module
import threading
import time
from collections.abc import Mapping

from repro.core.errors import DeltaFormatError, ServiceError
from repro.core.policy import degrade
from repro.obs.logs import get_logger
from repro.service.aggregator import ProfileAggregator, StopResult
from repro.service.delta import (
    MAX_BATCH_DELTAS,
    WIRE_VERSION,
    ProfileDelta,
    hello_frame,
    read_frame,
    write_frame,
)
from repro.service.fleet.aio import AsyncFrameServer
from repro.service.transport import ServiceAddress, connect, parse_address

logger = get_logger(__name__)

__all__ = ["ShardAggregator", "WriteAheadLog"]


class WriteAheadLog:
    """Segmented JSONL write-ahead log for ingest frames.

    ``append`` writes one frame per line and fsyncs, so an acked frame
    survives a crash. ``rotate`` seals the live segment (new appends go
    to a fresh one) and returns the sealed paths; the caller prunes them
    only after the state snapshot covering them is durable. ``replay``
    yields every frame in every segment in write order, tolerating a
    torn final line (the frame it held was never acked).
    """

    def __init__(self, directory: "str | os.PathLike[str]") -> None:
        self.directory = os.fspath(directory)
        os.makedirs(self.directory, exist_ok=True)
        self._lock = threading.Lock()
        self._handle = None
        existing = self._segments()
        self._next_index = (
            int(existing[-1].rsplit("-", 1)[1].split(".")[0]) + 1
            if existing
            else 1
        )

    def _segments(self) -> list[str]:
        try:
            names = os.listdir(self.directory)
        except FileNotFoundError:
            return []
        return sorted(
            name
            for name in names
            if name.startswith("wal-") and name.endswith(".jsonl")
        )

    def _open_segment(self):
        path = os.path.join(
            self.directory, f"wal-{self._next_index:08d}.jsonl"
        )
        self._next_index += 1
        return open(path, "ab")

    def append(self, frame: dict, encoded: bytes | None = None) -> None:
        """Durably append one frame (fsync before returning).

        ``encoded`` is the frame's JSON bytes when the caller already has
        them (the transport's decompressed payload) — appending them
        verbatim skips a re-serialization on the ingest hot path.
        """
        if encoded is None or b"\n" in encoded:
            # (Valid JSON may contain newline whitespace, which would
            # tear the JSONL segment — re-serialize those rare frames.)
            encoded = json.dumps(frame, separators=(",", ":")).encode("utf-8")
        line = encoded + b"\n"
        with self._lock:
            if self._handle is None:
                self._handle = self._open_segment()
            self._handle.write(line)
            self._handle.flush()
            os.fsync(self._handle.fileno())

    def rotate(self) -> list[str]:
        """Seal the live segment; returns every sealed segment's path."""
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None
            return [
                os.path.join(self.directory, name)
                for name in self._segments()
            ]

    def prune(self, sealed: list[str]) -> None:
        """Delete sealed segments whose frames a durable snapshot covers."""
        for path in sealed:
            try:
                os.remove(path)
            except FileNotFoundError:
                pass

    def replay(self) -> tuple[list[dict], bool]:
        """``(frames, torn)`` across all segments, oldest first."""
        frames: list[dict] = []
        torn = False
        for name in self._segments():
            path = os.path.join(self.directory, name)
            try:
                with open(path, "rb") as handle:
                    data = handle.read()
            except OSError:
                torn = True
                continue
            for line in data.split(b"\n"):
                if not line:
                    continue
                try:
                    frame = json.loads(line.decode("utf-8"))
                except (UnicodeDecodeError, json.JSONDecodeError):
                    torn = True  # a torn tail; the frame was never acked
                    continue
                if isinstance(frame, dict):
                    frames.append(frame)
        return frames, torn

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def size_bytes(self) -> int:
        total = 0
        for name in self._segments():
            try:
                total += os.path.getsize(os.path.join(self.directory, name))
            except OSError:
                pass
        return total


class ShardAggregator(ProfileAggregator):
    """A durable, uplinked aggregator for one ring slice (see module docs).

    ``uplink`` is the root merger's address; without one the shard is a
    standalone durable aggregator (WAL and all), which is how the WAL
    semantics are unit-tested. ``shard_id`` must be stable across
    restarts of the same slice — it keys the uplink's shipper identity
    and the root's per-shard metrics.
    """

    def __init__(
        self,
        listen: "str | ServiceAddress",
        *,
        shard_id: str,
        uplink: "str | ServiceAddress | None" = None,
        wal_path: "str | os.PathLike[str] | None" = None,
        async_transport: bool = True,
        uplink_timeout: float = 5.0,
        uplink_backoff_base: float = 0.05,
        uplink_backoff_max: float = 5.0,
        **kwargs,
    ) -> None:
        if not shard_id:
            raise ServiceError("shard_id must be non-empty")
        self.shard_id = str(shard_id)
        self.async_transport = bool(async_transport)
        self.uplink = parse_address(uplink) if uplink is not None else None
        self.uplink_timeout = float(uplink_timeout)
        self.uplink_backoff_base = float(uplink_backoff_base)
        self.uplink_backoff_max = float(uplink_backoff_max)
        self._aio: AsyncFrameServer | None = None
        self._wal = WriteAheadLog(wal_path) if wal_path is not None else None

        # Uplink cursor — persisted via _state_extra, restored before use.
        self._uplink_seq = 0
        #: dataset key -> the counts already cut into uplink deltas
        self._uplink_baselines: dict[str, dict[str, int]] = {}
        #: cut-but-unacked uplink deltas, as wire objects, in seq order
        self._uplink_pending: list[dict] = []
        self._uplink_sock: socket_module.socket | None = None
        self._uplink_stream = None
        self._uplink_zlib = False
        self._uplink_failures = 0
        self._uplink_retry_at = 0.0

        super().__init__(listen, **kwargs)  # runs _load_state/_restore_extra
        if self._wal is not None:
            self._replay_wal()

    @property
    def uplink_shipper_id(self) -> str:
        """The *stable* identity the root's ledger dedups this shard by."""
        return f"shard-{self.shard_id}"

    # -- metrics -----------------------------------------------------------

    def _describe_metrics(self) -> None:
        super()._describe_metrics()
        m = self.metrics
        m.describe("wal_frames_total", "Ingest frames appended to the WAL")
        m.describe(
            "wal_replayed_frames_total",
            "WAL frames re-applied after a restart (ledger drops duplicates)",
        )
        m.describe(
            "uplink_deltas_total", "Uplink deltas acked by the root merger"
        )
        m.describe(
            "uplink_pending", "Uplink deltas cut but not yet acked by the root"
        )
        m.describe(
            "uplink_failures_total", "Failed attempts to reach the root merger"
        )

    # -- durable ingest ----------------------------------------------------

    def handle_frame(
        self,
        frame: object,
        wire_bytes: int | None = None,
        raw: bytes | None = None,
    ) -> dict | None:
        if (
            self._wal is not None
            and isinstance(frame, dict)
            and frame.get("type") in ("delta", "batch")
        ):
            try:
                self._wal.append(frame, encoded=raw)
                self.metrics.inc("wal_frames_total")
            except OSError as exc:
                degrade(
                    "aggregate",
                    f"WAL append failed: {exc}",
                    "frame applied without durability (a crash may lose it)",
                    policy=self.policy,
                    log=self.degradations,
                )
        return super().handle_frame(frame, wire_bytes=wire_bytes, raw=raw)

    def _replay_wal(self) -> None:
        """Re-apply WAL frames the last state snapshot may not cover.

        Over-replay is by design: any frame already in the snapshot is
        recognized by the restored ledger as a duplicate. A torn tail is
        safe to drop — its frame was appended but never acked, so the
        shipper still holds (and will resend) it.
        """
        assert self._wal is not None
        frames, torn = self._wal.replay()
        if torn:
            degrade(
                "restore",
                f"WAL in {self._wal.directory} has a torn tail",
                "dropping it; the unacked frame will be resent by its shipper",
                policy=self.policy,
                log=self.degradations,
            )
        for frame in frames:
            # Through the base dispatch (not handle_frame) so replay does
            # not re-append the frames to the WAL they came from.
            kind = frame.get("type")
            if kind == "delta":
                super()._handle_delta(frame)
            elif kind == "batch":
                super()._handle_batch(frame)
            self.metrics.inc("wal_replayed_frames_total")
        if frames:
            logger.info(
                "shard %s replayed %d WAL frame(s)", self.shard_id, len(frames)
            )

    # -- persist-cut-then-send uplink --------------------------------------

    def _cut_uplink_locked(self) -> None:
        """Cut the counter growth since the last cut into pending uplink
        deltas. Caller holds ``self._lock``."""
        for key, slot in self._datasets.items():
            current = slot.counters.as_key_mapping()
            baseline = self._uplink_baselines.get(key, {})
            increments = {
                point: count - baseline.get(point, 0)
                for point, count in current.items()
                if count > baseline.get(point, 0)
            }
            if not increments:
                continue
            self._uplink_seq += 1
            delta = ProfileDelta(
                shipper=self.uplink_shipper_id,
                seq=self._uplink_seq,
                dataset=slot.counters.name,
                counts=increments,
                fingerprints=slot.fingerprints,
            )
            self._uplink_pending.append(delta.to_json_object())
            self._uplink_baselines[key] = current
        self.metrics.set_gauge("uplink_pending", len(self._uplink_pending))

    def _state_extra(self) -> dict:
        with self._lock:
            return {
                "uplink": {
                    "seq": self._uplink_seq,
                    "baselines": {
                        key: dict(counts)
                        for key, counts in self._uplink_baselines.items()
                    },
                    "pending": [dict(obj) for obj in self._uplink_pending],
                }
            }

    def _restore_extra(self, obj: dict) -> None:
        uplink = obj.get("uplink")
        if uplink is None:
            return
        if not isinstance(uplink, dict):
            raise DeltaFormatError("state 'uplink' must be an object")
        seq = uplink.get("seq", 0)
        if isinstance(seq, bool) or not isinstance(seq, int) or seq < 0:
            raise DeltaFormatError("state uplink 'seq' malformed")
        baselines = uplink.get("baselines", {})
        pending = uplink.get("pending", [])
        if not isinstance(baselines, dict) or not isinstance(pending, list):
            raise DeltaFormatError("state uplink cursor malformed")
        for frame in pending:
            ProfileDelta.from_json_object(frame)  # validate before trusting
        self._uplink_seq = seq
        self._uplink_baselines = {
            str(key): {str(p): int(c) for p, c in counts.items()}
            for key, counts in baselines.items()
            if isinstance(counts, dict)
        }
        self._uplink_pending = [dict(frame) for frame in pending]

    def checkpoint(self) -> bool:
        """Seal WAL → cut uplink deltas → persist → prune → send.

        The persist happens *between* the cut and the send: a crash at
        any point either resends persisted frames verbatim (root dedups)
        or re-cuts counts that were never assigned a sent seq. Sealed
        WAL segments are pruned only on a successful snapshot.
        """
        sealed = self._wal.rotate() if self._wal is not None else []
        if self.uplink is not None or self._uplink_baselines:
            with self._lock:
                self._cut_uplink_locked()
        ok = super().checkpoint()
        if ok and sealed and self._wal is not None:
            self._wal.prune(sealed)
        if ok:
            self._flush_uplink()
        return ok

    def _close_uplink(self) -> None:
        for closable in (self._uplink_stream, self._uplink_sock):
            if closable is not None:
                try:
                    closable.close()
                except OSError:
                    pass
        self._uplink_stream = None
        self._uplink_sock = None
        self._uplink_zlib = False

    def _uplink_note_failure(self, reason: str) -> None:
        self._close_uplink()
        self._uplink_failures += 1
        self.metrics.inc("uplink_failures_total")
        backoff = min(
            self.uplink_backoff_max,
            self.uplink_backoff_base * (2 ** (self._uplink_failures - 1)),
        )
        self._uplink_retry_at = time.monotonic() + backoff
        degrade(
            "ship",
            f"root merger {self.uplink} unreachable: {reason}",
            f"uplink deltas stay pending; retrying in {backoff:.2f}s",
            policy=self.policy,
            log=self.degradations,
        )

    def _ensure_uplink(self) -> bool:
        if self._uplink_stream is not None:
            return True
        if time.monotonic() < self._uplink_retry_at:
            return False
        assert self.uplink is not None
        try:
            self._uplink_sock = connect(self.uplink, timeout=self.uplink_timeout)
            self._uplink_stream = self._uplink_sock.makefile("rwb")
            write_frame(
                self._uplink_stream,
                hello_frame(peer=self.uplink_shipper_id),
            )
            response = read_frame(self._uplink_stream)
            features = (
                response.get("features", [])
                if isinstance(response, dict)
                else []
            )
            self._uplink_zlib = "zlib" in features
            write_frame(
                self._uplink_stream,
                {
                    "type": "register",
                    "shard": self.shard_id,
                    "address": str(self.address),
                },
                compress=self._uplink_zlib,
            )
            read_frame(self._uplink_stream)  # ack (or a v1 rejection) — fine
        except (OSError, DeltaFormatError) as exc:
            self._uplink_note_failure(str(exc))
            return False
        self._uplink_failures = 0
        self._uplink_retry_at = 0.0
        return True

    def _flush_uplink(self) -> bool:
        """Send every pending uplink delta to the root (best effort).

        Pending frames are resent *verbatim* — they were persisted before
        any send, so a resend after restart carries identical bytes and
        the root's ledger settles the duplicates.
        """
        if self.uplink is None:
            return True
        with self._lock:
            pending = list(self._uplink_pending)
        if not pending:
            return True
        if not self._ensure_uplink():
            return False
        sent: list[dict] = []
        try:
            for start in range(0, len(pending), MAX_BATCH_DELTAS):
                chunk = pending[start : start + MAX_BATCH_DELTAS]
                frame = {
                    "type": "batch",
                    "v": WIRE_VERSION,
                    "deltas": chunk,
                    "shard": self.shard_id,
                }
                assert self._uplink_stream is not None
                write_frame(
                    self._uplink_stream, frame, compress=self._uplink_zlib
                )
                response = read_frame(self._uplink_stream)
                if (
                    not isinstance(response, dict)
                    or response.get("type") != "ack"
                    or response.get("status") != "batch"
                ):
                    raise ServiceError(
                        f"root sent no batch ack (got {response!r})"
                    )
                sent.extend(chunk)
        except (OSError, ServiceError, DeltaFormatError) as exc:
            self._uplink_note_failure(str(exc))
            return False
        finally:
            if sent:
                with self._lock:
                    acked = {id(obj) for obj in sent}
                    self._uplink_pending = [
                        obj
                        for obj in self._uplink_pending
                        if id(obj) not in acked
                    ]
                self.metrics.inc("uplink_deltas_total", len(sent))
                self.metrics.set_gauge(
                    "uplink_pending", len(self._uplink_pending)
                )
        return True

    # -- lifecycle (asyncio transport) -------------------------------------

    @property
    def address(self) -> ServiceAddress:
        if self._aio is not None:
            return self._aio.address
        return ProfileAggregator.address.fget(self)  # type: ignore[attr-defined]

    def start(self) -> "ShardAggregator":
        if not self.async_transport:
            super().start()
            return self
        if self._aio is not None:
            return self
        self._aio = AsyncFrameServer(
            self, self.listen, read_timeout=self.read_timeout
        ).start()
        self._stop.clear()
        self._housekeeper = threading.Thread(
            target=self._housekeeping,
            name=f"pgmp-shard-{self.shard_id}-housekeeping",
            daemon=True,
        )
        self._housekeeper.start()
        if self.metrics_port is not None:
            self._start_metrics_server(self.metrics_port)
        logger.info(
            "shard %s listening on %s (asyncio transport)",
            self.shard_id,
            self.address,
        )
        return self

    def stop(
        self, join_timeout: float = 10.0, *, checkpoint: bool = True
    ) -> StopResult:
        if self._aio is not None:
            self._aio.stop(join_timeout)
            self._aio = None
        result = super().stop(join_timeout, checkpoint=checkpoint)
        self._close_uplink()
        if self._wal is not None:
            self._wal.close()
        return result

    def __repr__(self) -> str:
        return (
            f"<ShardAggregator {self.shard_id!r} {self.address} "
            f"uplink={self.uplink} pending={len(self._uplink_pending)}>"
        )
