"""The worker-side fleet client: one counter set, N shard shippers.

A :class:`FleetShipper` partitions a worker's counter set over the
fleet's hash ring and runs one ordinary
:class:`~repro.service.shipper.ProfileShipper` per shard, each reading a
:class:`_ShardSlice` — a live, read-only view of the parent counters
filtered to the points that ring-route to that shard. All the hard-won
shipper machinery (bounded queue, spill log, backoff, idempotent
delivery) is reused per slice, unchanged.

When a shard restarts at a new address, the fleet shipper **re-resolves**
through the root's ``ring`` frame and mutates the affected shipper's
``address`` in place. In place matters: a fresh ``ProfileShipper`` would
restart sequence numbers at 1 under a new identity while the restarted
shard's restored ledger still remembers the old one — mutation preserves
the (shipper id, seq) continuity that makes the dedup story airtight.
"""

from __future__ import annotations

import os
import time
from collections.abc import Mapping

from repro.core.counters import BaseCounterSet
from repro.core.errors import ServiceError
from repro.core.policy import DegradationLog, ProfilePolicy, degrade
from repro.core.profile_point import ProfilePoint
from repro.obs.logs import get_logger
from repro.service.delta import ProfileDelta, read_frame, write_frame
from repro.service.fleet.ring import DEFAULT_REPLICAS, HashRing
from repro.service.shipper import ProfileShipper, _default_shipper_id
from repro.service.transport import ServiceAddress, connect, parse_address

logger = get_logger(__name__)

__all__ = ["FleetShipper", "fetch_ring"]


class _ShardSlice(BaseCounterSet):
    """A read-only view of one shard's slice of a parent counter set.

    The slice is computed at snapshot time, so it is always live — the
    parent keeps being incremented by instrumented code, and each
    per-shard :class:`ProfileShipper` diffs its own slice exactly as it
    would a whole counter set. Mutation is refused: the parent is the
    single writable store.
    """

    __slots__ = ("_parent", "_ring", "_member")

    def __init__(
        self, parent: BaseCounterSet, ring: HashRing, member: str
    ) -> None:
        super().__init__(name=parent.name)
        self._parent = parent
        self._ring = ring
        self._member = member

    def snapshot(self) -> dict[ProfilePoint, int]:
        return {
            point: count
            for point, count in self._parent.snapshot().items()
            if self._ring.route(point.key()) == self._member
        }

    def count(self, point: ProfilePoint) -> int:
        if self._ring.route(point.key()) != self._member:
            return 0
        return self._parent.count(point)

    def increment(self, point: ProfilePoint, by: int = 1) -> None:
        raise ServiceError("a shard slice is read-only; increment the parent")

    def incrementer(self, point: ProfilePoint):
        raise ServiceError("a shard slice is read-only; increment the parent")

    def clear(self) -> None:
        raise ServiceError("a shard slice is read-only; clear the parent")


def fetch_ring(root: "str | ServiceAddress", timeout: float = 5.0) -> dict:
    """Ask the root merger for the current shard map.

    Returns ``{shard_id: {"address": str, "up": bool}}``; raises
    :class:`ServiceError` when the root's answer is not a ring frame.
    """
    sock = connect(root, timeout=timeout)
    try:
        stream = sock.makefile("rwb")
        try:
            write_frame(stream, {"type": "ring"})
            response = read_frame(stream)
        finally:
            stream.close()
    finally:
        sock.close()
    if not isinstance(response, dict) or response.get("type") != "ring":
        raise ServiceError(f"root sent no ring frame (got {response!r})")
    shards = response.get("shards")
    if not isinstance(shards, dict):
        raise ServiceError("ring frame carries no shard map")
    return shards


class FleetShipper:
    """Ship one counter set to a sharded fleet (see module docs).

    ``shards`` maps shard ids to addresses; ``root`` (optional) enables
    re-resolution of restarted shards via the root's ring frame.
    Per-shard spill logs land in ``spill_dir`` (one file per shard), so
    a down shard buffers durably without affecting its siblings.
    """

    #: consecutive failures on one shard before a re-resolve is attempted
    RERESOLVE_AFTER_FAILURES = 2
    #: minimum seconds between re-resolve attempts
    RERESOLVE_COOLDOWN = 1.0

    def __init__(
        self,
        counters: BaseCounterSet,
        shards: Mapping[str, "str | ServiceAddress"],
        *,
        root: "str | ServiceAddress | None" = None,
        replicas: int = DEFAULT_REPLICAS,
        dataset: str | None = None,
        fingerprints: Mapping[str, str] | None = None,
        shipper_id: str | None = None,
        spill_dir: "str | os.PathLike[str] | None" = None,
        policy: ProfilePolicy | str = ProfilePolicy.WARN,
        degradations: DegradationLog | None = None,
        **shipper_kwargs,
    ) -> None:
        if not shards:
            raise ServiceError("a fleet shipper needs at least one shard")
        self.counters = counters
        self.ring = HashRing(shards.keys(), replicas=replicas)
        self.root = parse_address(root) if root is not None else None
        self.policy = ProfilePolicy.coerce(policy)
        self.degradations = (
            degradations if degradations is not None else DegradationLog()
        )
        self.shipper_id = shipper_id or _default_shipper_id()
        self._last_reresolve = 0.0
        if spill_dir is not None:
            os.makedirs(os.fspath(spill_dir), exist_ok=True)
        self.shippers: dict[str, ProfileShipper] = {}
        for shard_id in sorted(shards):
            spill_path = (
                os.path.join(os.fspath(spill_dir), f"{shard_id}.spill")
                if spill_dir is not None
                else None
            )
            self.shippers[shard_id] = ProfileShipper(
                _ShardSlice(counters, self.ring, shard_id),
                shards[shard_id],
                dataset=dataset if dataset is not None else counters.name,
                fingerprints=fingerprints,
                shipper_id=f"{self.shipper_id}.{shard_id}",
                spill_path=spill_path,
                policy=self.policy,
                degradations=self.degradations,
                **shipper_kwargs,
            )

    # -- shipping ----------------------------------------------------------

    def flush(self) -> list[ProfileDelta]:
        """Flush every shard slice; returns the deltas that were cut."""
        self._maybe_reresolve()
        deltas = []
        for shipper in self.shippers.values():
            delta = shipper.flush()
            if delta is not None:
                deltas.append(delta)
        return deltas

    def maybe_flush(self) -> list[ProfileDelta]:
        self._maybe_reresolve()
        deltas = []
        for shipper in self.shippers.values():
            delta = shipper.maybe_flush()
            if delta is not None:
                deltas.append(delta)
        return deltas

    def start(self) -> "FleetShipper":
        for shipper in self.shippers.values():
            shipper.start()
        return self

    def close(self) -> None:
        for shipper in self.shippers.values():
            shipper.close()

    def __enter__(self) -> "FleetShipper":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- failover ----------------------------------------------------------

    def _maybe_reresolve(self) -> None:
        """Re-resolve shard addresses when one looks down (rate-limited)."""
        if self.root is None:
            return
        struggling = [
            shard_id
            for shard_id, shipper in self.shippers.items()
            # _failures is the shipper's own backoff counter; reading it
            # here keeps failover reactive without a second health probe.
            if shipper._failures >= self.RERESOLVE_AFTER_FAILURES
        ]
        if not struggling:
            return
        now = time.monotonic()
        if now - self._last_reresolve < self.RERESOLVE_COOLDOWN:
            return
        self._last_reresolve = now
        try:
            self.re_resolve()
        except (OSError, ServiceError) as exc:
            degrade(
                "ship",
                f"ring re-resolve via root {self.root} failed: {exc}",
                "keeping the current shard addresses",
                policy=self.policy,
                log=self.degradations,
            )

    def re_resolve(self) -> list[str]:
        """Refresh shard addresses from the root's ring frame.

        Mutates each changed shipper's ``address`` **in place** (see the
        module docs for why a rebuild would break dedup). Returns the
        shard ids whose address changed.
        """
        if self.root is None:
            raise ServiceError("no root address configured for re-resolve")
        shards = fetch_ring(self.root)
        changed = []
        for shard_id, shipper in self.shippers.items():
            info = shards.get(shard_id)
            if not isinstance(info, dict):
                continue
            address = info.get("address")
            if not isinstance(address, str):
                continue
            parsed = parse_address(address)
            if parsed != shipper.address:
                shipper.address = parsed
                # Close any connection to the old address — a half-dead
                # peer can keep a stale socket "working" long after the
                # shard it belonged to was replaced.
                shipper._disconnect()
                # drop the backoff so the new address is tried promptly
                shipper._failures = 0
                shipper._retry_at = 0.0
                changed.append(shard_id)
                logger.info(
                    "shipper %s re-resolved shard %s to %s",
                    self.shipper_id, shard_id, parsed,
                )
        return changed

    # -- aggregate accounting ----------------------------------------------

    @property
    def shipped_counts(self) -> int:
        return sum(s.shipped_counts for s in self.shippers.values())

    @property
    def shipped_deltas(self) -> int:
        return sum(s.shipped_deltas for s in self.shippers.values())

    @property
    def dropped_deltas(self) -> int:
        return sum(s.dropped_deltas for s in self.shippers.values())

    @property
    def spilled_deltas(self) -> int:
        return sum(s.spilled_deltas for s in self.shippers.values())

    @property
    def quarantined_deltas(self) -> int:
        return sum(s.quarantined_deltas for s in self.shippers.values())

    def pending_counts(self) -> int:
        return sum(s.pending_counts() for s in self.shippers.values())

    def __repr__(self) -> str:
        return (
            f"<FleetShipper {self.shipper_id!r} shards="
            f"{sorted(self.shippers)} shipped={self.shipped_counts}>"
        )
