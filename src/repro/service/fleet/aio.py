"""The asyncio frame transport used by fleet shards.

Protocol-compatible with the threading ``socketserver`` transport in
:mod:`repro.service.aggregator` — same length-prefixed frames, same
per-connection ``hello`` negotiation, same request/response discipline —
but one event loop holds every connection, so a shard can carry tens of
thousands of mostly-idle shippers without a thread (and its stack) per
connection. The event loop runs in one daemon thread; frame *handling*
stays synchronous (``ProfileAggregator.handle_frame`` is already
thread-safe and fast), so the loop never blocks on anything but I/O.
"""

from __future__ import annotations

import asyncio
import socket
import threading

from repro.core.errors import DeltaFormatError, ServiceError
from repro.obs.logs import get_logger
from repro.service.delta import (
    _LENGTH,
    _split_length_prefix,
    decode_frame_payload_ex,
    encode_frame,
    negotiated_features,
)
from repro.service.transport import ServiceAddress, parse_address

logger = get_logger(__name__)

__all__ = ["AsyncFrameServer"]


class AsyncFrameServer:
    """Serve the frame protocol for a ``handle_frame``-style dispatcher.

    ``target`` is anything with a synchronous
    ``handle_frame(frame) -> dict | None`` and a ``metrics`` registry —
    in practice a :class:`~repro.service.aggregator.ProfileAggregator`
    (or subclass). ``None`` responses close the connection, exactly like
    the threading transport.
    """

    def __init__(
        self,
        target,
        listen: "str | ServiceAddress",
        *,
        read_timeout: float | None = 30.0,
    ) -> None:
        self.target = target
        self.listen = parse_address(listen)
        self.read_timeout = float(read_timeout) if read_timeout else None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.AbstractServer | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None
        self._bound: ServiceAddress | None = None

    # -- lifecycle ---------------------------------------------------------

    @property
    def address(self) -> ServiceAddress:
        """The bound address (real port once started)."""
        return self._bound if self._bound is not None else self.listen

    def start(self) -> "AsyncFrameServer":
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._run_loop, name="pgmp-fleet-aio", daemon=True
        )
        self._thread.start()
        self._started.wait(timeout=10.0)
        if self._startup_error is not None:
            error = self._startup_error
            self._thread.join(timeout=1.0)
            self._thread = None
            raise ServiceError(f"asyncio transport failed to bind: {error}")
        if not self._started.is_set():
            raise ServiceError("asyncio transport did not start in time")
        return self

    def stop(self, join_timeout: float = 10.0) -> None:
        loop = self._loop
        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=join_timeout)
            self._thread = None
        self._loop = None
        self._server = None

    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        try:
            try:
                self._server = loop.run_until_complete(self._bind(loop))
            except BaseException as exc:  # bind failure surfaces in start()
                self._startup_error = exc
                return
            finally:
                self._started.set()
            loop.run_forever()
        finally:
            server = self._server
            if server is not None:
                server.close()
                try:
                    loop.run_until_complete(server.wait_closed())
                except RuntimeError:  # pragma: no cover - loop already dead
                    pass
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            loop.close()

    async def _bind(self, loop: asyncio.AbstractEventLoop) -> asyncio.AbstractServer:
        if self.listen.family == "unix":
            if not hasattr(socket, "AF_UNIX"):  # pragma: no cover - non-POSIX
                raise ServiceError(
                    "unix-domain sockets unavailable on this platform"
                )
            server = await asyncio.start_unix_server(
                self._serve_connection, path=self.listen.path
            )
            self._bound = self.listen
            return server
        server = await asyncio.start_server(
            self._serve_connection, host=self.listen.host, port=self.listen.port
        )
        sockets = server.sockets or ()
        for sock in sockets:
            host, port = sock.getsockname()[:2]
            self._bound = ServiceAddress(
                family="tcp", host=str(host), port=int(port)
            )
            break
        return server

    # -- per-connection protocol -------------------------------------------

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        metrics = self.target.metrics
        metrics.inc("connections_total")
        compress_out = False  # flips on after a v2 hello negotiates zlib
        try:
            while True:
                try:
                    frame, frame_bytes, frame_raw = await self._read_frame(
                        reader
                    )
                except asyncio.TimeoutError:
                    metrics.inc("handler_read_timeouts_total")
                    logger.warning(
                        "dropping connection: no frame within %.1fs",
                        self.read_timeout,
                    )
                    return
                except DeltaFormatError:
                    metrics.inc("protocol_errors_total")
                    return
                if frame is None:
                    return
                if isinstance(frame, dict) and frame.get("type") == "hello":
                    compress_out = "zlib" in negotiated_features(frame)
                response = self.target.handle_frame(
                    frame, wire_bytes=frame_bytes, raw=frame_raw
                )
                if response is None:
                    return  # shutdown frame: close this connection too
                writer.write(encode_frame(response, compress=compress_out))
                await writer.drain()
        except asyncio.CancelledError:
            return  # server stopping; connections die with the loop
        except (ConnectionError, OSError):
            return  # client vanished mid-frame; its spill will replay
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (asyncio.CancelledError, ConnectionError, OSError):
                pass

    async def _read_frame(
        self, reader: asyncio.StreamReader
    ) -> "tuple[object | None, int, bytes]":
        try:
            header = await asyncio.wait_for(
                reader.readexactly(_LENGTH.size), timeout=self.read_timeout
            )
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return None, 0, b""  # clean end-of-stream
            raise DeltaFormatError("stream ended mid frame-length prefix")
        (raw,) = _LENGTH.unpack(header)
        length, compressed = _split_length_prefix(raw)
        try:
            payload = await asyncio.wait_for(
                reader.readexactly(length), timeout=self.read_timeout
            )
        except asyncio.IncompleteReadError as exc:
            raise DeltaFormatError(
                f"stream ended mid frame payload "
                f"({len(exc.partial)} of {length} bytes)"
            )
        frame, json_bytes = decode_frame_payload_ex(
            payload, compressed=compressed
        )
        return frame, _LENGTH.size + length, json_bytes
