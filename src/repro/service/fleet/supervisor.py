"""The local fleet supervisor behind ``pgmp serve --shards N``.

Runs the root merger in-process (it owns the public checkpoint and the
controller, so the CLI's existing wiring applies unchanged) and each
shard either:

* as a **subprocess** (`python -m repro.tools.cli serve --fleet-role
  shard ...`) — the default, giving shards real OS-level parallelism
  (the GIL would otherwise serialize N shards' JSON parsing into one
  core) and making "kill a shard" a genuine process death; or
* **in-process** (``in_process=True``) — threads only, used by the test
  suite where spawning interpreters per test is too slow.

The monitor thread restarts crashed shards with the *same* shard id,
state file, and WAL directory, so the restarted process resumes its
slice exactly (ledger dedup holds across the failover) and re-registers
its new address with the root for shippers to re-resolve.
"""

from __future__ import annotations

import os
import subprocess
import sys
import threading
import time

from repro.core.errors import ServiceError
from repro.core.policy import ProfilePolicy
from repro.obs.logs import get_logger
from repro.service.delta import read_frame, write_frame
from repro.service.fleet.root import RootMerger
from repro.service.fleet.shard import ShardAggregator
from repro.service.transport import connect

logger = get_logger(__name__)

__all__ = ["FleetSupervisor"]


class _ShardSlot:
    """One managed shard: its identity, durable paths, and live handle."""

    def __init__(self, shard_id: str, state_path: str, wal_path: str) -> None:
        self.shard_id = shard_id
        self.state_path = state_path
        self.wal_path = wal_path
        self.address: str | None = None
        self.process: subprocess.Popen | None = None
        self.aggregator: ShardAggregator | None = None
        self.restarts = 0


class FleetSupervisor:
    """Spawn, monitor, and restart a local sharded fleet (see module docs)."""

    def __init__(
        self,
        shards: int,
        data_dir: "str | os.PathLike[str]",
        *,
        listen: str = "127.0.0.1:0",
        shard_host: str = "127.0.0.1",
        controller=None,
        metrics=None,
        metrics_port: int | None = None,
        checkpoint_path: str | None = None,
        checkpoint_interval: float = 2.0,
        sources=None,
        policy: ProfilePolicy | str = ProfilePolicy.WARN,
        read_timeout: float | None = 30.0,
        in_process: bool = False,
        restart: bool = True,
        spawn_timeout: float = 20.0,
        python: str = sys.executable,
    ) -> None:
        if shards < 1:
            raise ServiceError(f"a fleet needs at least 1 shard, got {shards}")
        self.data_dir = os.fspath(data_dir)
        os.makedirs(self.data_dir, exist_ok=True)
        self.shard_host = shard_host
        self.checkpoint_interval = float(checkpoint_interval)
        self.policy = ProfilePolicy.coerce(policy)
        self.read_timeout = read_timeout
        self.in_process = bool(in_process)
        self.restart = bool(restart)
        self.spawn_timeout = float(spawn_timeout)
        self.python = python
        self.root = RootMerger(
            listen,
            checkpoint_path=checkpoint_path,
            state_path=os.path.join(self.data_dir, "root-state.json"),
            checkpoint_interval=checkpoint_interval,
            sources=sources,
            controller=controller,
            policy=self.policy,
            metrics=metrics,
            metrics_port=metrics_port,
            read_timeout=read_timeout,
        )
        self._slots: dict[str, _ShardSlot] = {}
        for index in range(shards):
            shard_id = str(index)
            shard_dir = os.path.join(self.data_dir, f"shard-{shard_id}")
            os.makedirs(shard_dir, exist_ok=True)
            self._slots[shard_id] = _ShardSlot(
                shard_id,
                state_path=os.path.join(shard_dir, "state.json"),
                wal_path=os.path.join(shard_dir, "wal"),
            )
        self._monitor: threading.Thread | None = None
        self._stopping = threading.Event()

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "FleetSupervisor":
        self.root.start()
        for slot in self._slots.values():
            self._spawn(slot)
        if not self.in_process:
            self._stopping.clear()
            self._monitor = threading.Thread(
                target=self._monitor_loop,
                name="pgmp-fleet-monitor",
                daemon=True,
            )
            self._monitor.start()
        return self

    def stop(self, join_timeout: float = 15.0) -> None:
        """Drain and stop: shards checkpoint + uplink, then the root stops.

        Order matters — shards flush their final uplink deltas into the
        root *before* the root's final checkpoint, so a clean stop loses
        nothing.
        """
        self._stopping.set()
        if self._monitor is not None:
            self._monitor.join(timeout=join_timeout)
            self._monitor = None
        for slot in self._slots.values():
            self._stop_shard(slot, join_timeout)
        self.root.stop(join_timeout)

    def _stop_shard(self, slot: _ShardSlot, join_timeout: float) -> None:
        if slot.aggregator is not None:
            slot.aggregator.stop(join_timeout)
            slot.aggregator = None
            return
        if slot.process is None:
            return
        if slot.process.poll() is None and slot.address:
            try:
                # A shutdown frame makes the CLI serve loop exit through
                # its normal path: final checkpoint, final uplink flush.
                sock = connect(slot.address, timeout=5.0)
                try:
                    stream = sock.makefile("rwb")
                    write_frame(stream, {"type": "shutdown"})
                    stream.close()
                finally:
                    sock.close()
            except OSError:
                pass
        try:
            slot.process.wait(timeout=join_timeout)
        except subprocess.TimeoutExpired:
            logger.error(
                "shard %s did not exit after shutdown; killing it",
                slot.shard_id,
            )
            slot.process.kill()
            slot.process.wait(timeout=5.0)
        slot.process = None

    def __enter__(self) -> "FleetSupervisor":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- spawning ----------------------------------------------------------

    def _spawn(self, slot: _ShardSlot) -> None:
        if self.in_process:
            slot.aggregator = ShardAggregator(
                f"{self.shard_host}:0",
                shard_id=slot.shard_id,
                uplink=self.root.address,
                wal_path=slot.wal_path,
                state_path=slot.state_path,
                checkpoint_interval=self.checkpoint_interval,
                policy=self.policy,
                read_timeout=self.read_timeout,
            ).start()
            slot.address = str(slot.aggregator.address)
        else:
            address_file = os.path.join(
                os.path.dirname(slot.state_path), "address"
            )
            try:
                os.remove(address_file)
            except FileNotFoundError:
                pass
            command = [
                self.python,
                "-m",
                "repro.tools.cli",
                "serve",
                "--fleet-role",
                "shard",
                "--shard-id",
                slot.shard_id,
                "--listen",
                f"{self.shard_host}:0",
                "--uplink",
                str(self.root.address),
                "--state",
                slot.state_path,
                "--wal",
                slot.wal_path,
                "--address-file",
                address_file,
                "--checkpoint-interval",
                str(self.checkpoint_interval),
                "--profile-policy",
                self.policy.value,
            ]
            env = dict(os.environ)
            repro_root = os.path.dirname(
                os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
            )
            env["PYTHONPATH"] = os.pathsep.join(
                p
                for p in (repro_root, env.get("PYTHONPATH"))
                if p
            )
            slot.process = subprocess.Popen(
                command,
                env=env,
                stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL,
            )
            slot.address = self._await_address(slot, address_file)
        self.root.note_shard(slot.shard_id, slot.address, up=True)

    def _await_address(self, slot: _ShardSlot, address_file: str) -> str:
        """Wait for the shard subprocess to report its bound address."""
        deadline = time.monotonic() + self.spawn_timeout
        while time.monotonic() < deadline:
            if slot.process is not None and slot.process.poll() is not None:
                raise ServiceError(
                    f"shard {slot.shard_id} exited during startup "
                    f"(rc={slot.process.returncode})"
                )
            try:
                with open(address_file, "r", encoding="utf-8") as handle:
                    address = handle.read().strip()
                if address:
                    return address
            except FileNotFoundError:
                pass
            time.sleep(0.05)
        raise ServiceError(
            f"shard {slot.shard_id} did not report an address within "
            f"{self.spawn_timeout:.0f}s"
        )

    # -- monitoring --------------------------------------------------------

    def _monitor_loop(self) -> None:
        while not self._stopping.wait(0.2):
            for slot in self._slots.values():
                process = slot.process
                if process is None or process.poll() is None:
                    continue
                if self._stopping.is_set():
                    return
                logger.warning(
                    "shard %s died (rc=%s); %s",
                    slot.shard_id,
                    process.returncode,
                    "restarting" if self.restart else "not restarting",
                )
                self.root.mark_shard_down(slot.shard_id)
                slot.process = None
                if not self.restart:
                    continue
                slot.restarts += 1
                try:
                    self._spawn(slot)
                except ServiceError as exc:
                    logger.error(
                        "shard %s failed to restart: %s", slot.shard_id, exc
                    )

    # -- chaos + introspection ---------------------------------------------

    def kill_shard(self, shard_id: str) -> None:
        """Kill one shard without warning (no final checkpoint) — the
        chaos entry point. The monitor (or the caller, in in-process
        mode via :meth:`restart_shard`) brings it back."""
        slot = self._slot(shard_id)
        if slot.aggregator is not None:
            slot.aggregator.stop(checkpoint=False)
            slot.aggregator = None
            self.root.mark_shard_down(shard_id)
        elif slot.process is not None:
            slot.process.kill()  # the monitor notices and restarts

    def restart_shard(self, shard_id: str) -> None:
        """Bring a killed in-process shard back up (subprocess shards
        restart via the monitor)."""
        slot = self._slot(shard_id)
        if slot.aggregator is None and slot.process is None:
            slot.restarts += 1
            self._spawn(slot)

    def shard_addresses(self) -> dict[str, str]:
        """Current ``{shard_id: address}`` map (for building shippers)."""
        return {
            shard_id: slot.address
            for shard_id, slot in self._slots.items()
            if slot.address is not None
        }

    def wait_all_up(self, timeout: float = 20.0) -> bool:
        """Block until every shard is registered up at the root."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            shards = self.root.shard_map()
            if len(shards) == len(self._slots) and all(
                record.up for record in shards.values()
            ):
                return True
            time.sleep(0.05)
        return False

    def stats(self) -> dict:
        """The root's stats frame plus per-shard stats over the wire."""
        stats = self.root.handle_frame({"type": "stats"})
        assert isinstance(stats, dict)
        shards: dict[str, dict] = {}
        for shard_id, slot in self._slots.items():
            if slot.aggregator is not None:
                frame = slot.aggregator.handle_frame({"type": "stats"})
                shards[shard_id] = frame if isinstance(frame, dict) else {}
                continue
            if slot.address is None:
                shards[shard_id] = {}
                continue
            try:
                sock = connect(slot.address, timeout=5.0)
                try:
                    stream = sock.makefile("rwb")
                    try:
                        write_frame(stream, {"type": "stats"})
                        frame = read_frame(stream)
                    finally:
                        stream.close()
                finally:
                    sock.close()
            except OSError:
                frame = {}
            shards[shard_id] = frame if isinstance(frame, dict) else {}
        stats["shard_stats"] = shards
        return stats

    def _slot(self, shard_id: str) -> _ShardSlot:
        slot = self._slots.get(shard_id)
        if slot is None:
            raise ServiceError(f"unknown shard id {shard_id!r}")
        return slot

    def __repr__(self) -> str:
        return (
            f"<FleetSupervisor root={self.root.address} "
            f"shards={sorted(self._slots)} "
            f"mode={'in-process' if self.in_process else 'subprocess'}>"
        )
