"""The consistent-hash ring that partitions profile points over shards.

Every profile-point key routes to exactly one shard, and the mapping is
**deterministic across processes**: hashing uses SHA-256 of the bytes, not
Python's randomized ``hash()``, so a shipper and a supervisor built from
the same member list always agree on where a key lives — no coordination
service needed.

Standard Karger-style construction: each member contributes ``replicas``
virtual nodes (hash of ``"member#i"``) on a ring of 64-bit positions; a
key routes to the first virtual node at or after its own hash, wrapping.
Adding or removing one member therefore remaps only the arcs that member
owned — about ``1/N`` of the key space — instead of reshuffling
everything, which is what keeps a shard restart or a fleet resize from
invalidating every shard's resumable state file at once.
"""

from __future__ import annotations

import bisect
import hashlib
from collections.abc import Iterable

from repro.core.errors import ServiceError

__all__ = ["HashRing", "DEFAULT_REPLICAS"]

#: Virtual nodes per member. 64 keeps the per-member load imbalance in
#: the low percents for small fleets while the ring stays tiny (N*64
#: 16-byte entries).
DEFAULT_REPLICAS = 64


def _position(data: str) -> int:
    """A stable 64-bit ring position for ``data``."""
    digest = hashlib.sha256(data.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Deterministic consistent hashing over a set of member names."""

    def __init__(
        self, members: Iterable[str] = (), replicas: int = DEFAULT_REPLICAS
    ) -> None:
        if replicas < 1:
            raise ServiceError(f"ring replicas must be >= 1, got {replicas}")
        self.replicas = int(replicas)
        self._members: set[str] = set()
        #: sorted virtual-node positions and, index-aligned, their owners
        self._positions: list[int] = []
        self._owners: list[str] = []
        for member in members:
            self.add(member)

    # -- membership --------------------------------------------------------

    @property
    def members(self) -> list[str]:
        return sorted(self._members)

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, member: object) -> bool:
        return member in self._members

    def add(self, member: str) -> None:
        """Add ``member``; idempotent."""
        if not member:
            raise ServiceError("ring member name must be non-empty")
        if member in self._members:
            return
        self._members.add(member)
        for i in range(self.replicas):
            pos = _position(f"{member}#{i}")
            index = bisect.bisect_left(self._positions, pos)
            self._positions.insert(index, pos)
            self._owners.insert(index, member)

    def remove(self, member: str) -> None:
        """Remove ``member``; idempotent."""
        if member not in self._members:
            return
        self._members.discard(member)
        keep = [
            (pos, owner)
            for pos, owner in zip(self._positions, self._owners)
            if owner != member
        ]
        self._positions = [pos for pos, _ in keep]
        self._owners = [owner for _, owner in keep]

    # -- routing -----------------------------------------------------------

    def route(self, key: str) -> str:
        """The member owning ``key``. Raises when the ring is empty."""
        if not self._positions:
            raise ServiceError("cannot route on an empty hash ring")
        index = bisect.bisect_right(self._positions, _position(key))
        if index == len(self._positions):
            index = 0  # wrap past the highest virtual node
        return self._owners[index]

    def __repr__(self) -> str:
        return (
            f"<HashRing {len(self._members)} members x "
            f"{self.replicas} replicas>"
        )
