"""The root of the fleet: merge shard uplinks, own the public checkpoint.

A :class:`RootMerger` is a :class:`~repro.service.aggregator.
ProfileAggregator` that additionally knows the fleet: shards register
themselves (or the supervisor registers them), their uplink batches
arrive tagged with the shard id (feeding the ``fleet_deltas_total{shard=}``
labeled counters the base aggregator already records), and two extra
frame types serve fleet coordination:

* ``register`` — a shard announces its id and serving address;
* ``ring`` — a ring-aware shipper asks for the current shard map, which
  is how it re-resolves a restarted shard's new address.

Everything downstream of the merge is the existing single-aggregator
machinery, untouched: the public profile checkpoint, the
``RecompileController``/``RolloutGuard`` pipeline, ``/metrics`` and
``/healthz`` (extended with per-shard liveness), the stats frame.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.obs.logs import get_logger
from repro.service.aggregator import ProfileAggregator
from repro.service.delta import WIRE_VERSION
from repro.service.fleet.ring import DEFAULT_REPLICAS

logger = get_logger(__name__)

__all__ = ["RootMerger", "ShardRecord"]


@dataclass
class ShardRecord:
    """What the root knows about one shard."""

    shard_id: str
    address: str
    up: bool = True
    last_seen: float = 0.0


class RootMerger(ProfileAggregator):
    """The fleet's merge point and public face (see module docs)."""

    def __init__(self, listen, *, ring_replicas: int = DEFAULT_REPLICAS, **kwargs) -> None:
        self.ring_replicas = int(ring_replicas)
        self._fleet_lock = threading.Lock()
        self._shards: dict[str, ShardRecord] = {}
        super().__init__(listen, **kwargs)

    # -- metrics -----------------------------------------------------------

    def _describe_metrics(self) -> None:
        super()._describe_metrics()
        self.metrics.describe(
            "fleet_shard_up",
            "Per-shard liveness (1 = registered and serving, 0 = down)",
        )
        self.metrics.describe(
            "fleet_shards_registered", "Shards that have ever registered"
        )

    # -- fleet membership --------------------------------------------------

    def note_shard(self, shard_id: str, address: str, up: bool = True) -> None:
        """Record (or update) a shard's address and liveness."""
        with self._fleet_lock:
            record = self._shards.get(shard_id)
            if record is None:
                record = self._shards[shard_id] = ShardRecord(
                    shard_id=shard_id, address=address
                )
            record.address = address
            record.up = up
            record.last_seen = time.monotonic()
            registered = len(self._shards)
        self.metrics.set_labeled_gauge(
            "fleet_shard_up", {"shard": shard_id}, 1.0 if up else 0.0
        )
        self.metrics.set_gauge("fleet_shards_registered", registered)
        logger.info(
            "shard %s %s at %s", shard_id, "up" if up else "down", address
        )

    def mark_shard_down(self, shard_id: str) -> None:
        """Flag a shard as down (the supervisor calls this on a crash).

        The shard stays in the map — its slice of the ring is still its
        slice; a restart re-registers the same id at a fresh address.
        """
        with self._fleet_lock:
            record = self._shards.get(shard_id)
            if record is None:
                return
            record.up = False
        self.metrics.set_labeled_gauge(
            "fleet_shard_up", {"shard": shard_id}, 0.0
        )
        logger.warning("shard %s marked down", shard_id)

    def shard_map(self) -> dict[str, ShardRecord]:
        with self._fleet_lock:
            return {
                shard_id: ShardRecord(
                    shard_id=record.shard_id,
                    address=record.address,
                    up=record.up,
                    last_seen=record.last_seen,
                )
                for shard_id, record in self._shards.items()
            }

    # -- frame dispatch ----------------------------------------------------

    def handle_frame(
        self,
        frame: object,
        wire_bytes: int | None = None,
        raw: bytes | None = None,
    ) -> dict | None:
        if isinstance(frame, dict):
            kind = frame.get("type")
            if kind == "register":
                return self._handle_register(frame)
            if kind == "ring":
                return self._ring_frame()
        return super().handle_frame(frame, wire_bytes=wire_bytes, raw=raw)

    def _handle_register(self, frame: dict) -> dict:
        shard_id = frame.get("shard")
        address = frame.get("address")
        if not isinstance(shard_id, str) or not shard_id:
            self.metrics.inc("deltas_rejected_total")
            return {
                "type": "ack",
                "status": "rejected",
                "error": "register frame needs a 'shard' id",
            }
        if not isinstance(address, str) or not address:
            self.metrics.inc("deltas_rejected_total")
            return {
                "type": "ack",
                "status": "rejected",
                "error": "register frame needs an 'address'",
            }
        self.note_shard(shard_id, address, up=True)
        return {"type": "ack", "status": "registered", "shard": shard_id}

    def _ring_frame(self) -> dict:
        shards = self.shard_map()
        return {
            "type": "ring",
            "v": WIRE_VERSION,
            "replicas": self.ring_replicas,
            "shards": {
                shard_id: {"address": record.address, "up": record.up}
                for shard_id, record in sorted(shards.items())
            },
        }

    def _stats_frame(self) -> dict:
        stats = super()._stats_frame()
        shards = self.shard_map()
        stats["fleet"] = {
            "shards": {
                shard_id: {"address": record.address, "up": record.up}
                for shard_id, record in sorted(shards.items())
            },
            "up": sum(1 for record in shards.values() if record.up),
        }
        return stats

    # -- health ------------------------------------------------------------

    def _healthz_body(self) -> str:
        shards = self.shard_map()
        up = sum(1 for record in shards.values() if record.up)
        base = super()._healthz_body().rstrip("\n")
        return f"{base} shards_up={up}/{len(shards)}\n"
