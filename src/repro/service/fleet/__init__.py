"""``repro.service.fleet`` — the sharded, two-tier profiling service.

The single :class:`~repro.service.aggregator.ProfileAggregator` scales
to a rack; this package scales it to a fleet, hierarchically, the way
production PGO pipelines aggregate (see PAPERS.md: *From Profiling to
Optimization*):

* a :class:`HashRing` partitions profile-point fingerprints over N
  shards, deterministically across processes;
* each :class:`ShardAggregator` ingests its slice over an asyncio
  transport (:class:`AsyncFrameServer`), WALs every frame before acking,
  and uplinks cut deltas to the root with persist-cut-then-send
  semantics — restart-safe in both directions;
* the :class:`RootMerger` owns the public checkpoint and the existing
  controller/rollout pipeline, answers ``ring`` queries, and exposes
  per-shard labeled metrics;
* a :class:`FleetShipper` fans one worker's counters out over the ring
  and re-resolves restarted shards through the root;
* a :class:`FleetSupervisor` runs the whole topology locally
  (``pgmp serve --shards N``), restarting crashed shards in place.
"""

from repro.service.fleet.aio import AsyncFrameServer
from repro.service.fleet.ring import DEFAULT_REPLICAS, HashRing
from repro.service.fleet.root import RootMerger, ShardRecord
from repro.service.fleet.shard import ShardAggregator, WriteAheadLog
from repro.service.fleet.shipper import FleetShipper, fetch_ring
from repro.service.fleet.supervisor import FleetSupervisor

__all__ = [
    "AsyncFrameServer",
    "DEFAULT_REPLICAS",
    "FleetShipper",
    "FleetSupervisor",
    "HashRing",
    "RootMerger",
    "ShardAggregator",
    "ShardRecord",
    "WriteAheadLog",
    "fetch_ring",
]
