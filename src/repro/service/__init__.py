"""``repro.service`` — continuous profiling with online recompilation.

The paper's profile lifecycle is batch: run instrumented, store, restart,
load, re-expand. This package makes it continuous, in the direction
production PGO systems take (see PAPERS.md: *From Profiling to
Optimization*, *PROMPT*): many worker processes keep serving while a
:class:`ProfileShipper` streams their counter *deltas* to a
:class:`ProfileAggregator`, which merges them per the paper's Figure-3
weighted averaging, checkpoints through the ordinary profile database,
and — via a :class:`RecompileController` — re-runs the meta-program
optimization and atomically swaps the compiled program when the merged
weights drift past a threshold.

Layering: this package sits *above* ``core`` (counters, database,
policy) and *beside* the substrates — it moves profile data around and
decides when to recompile, but the optimization itself is still the
substrates' ordinary expansion.
"""

from repro.service.aggregator import ProfileAggregator
from repro.service.controller import (
    RecompilationDecision,
    RecompilationLog,
    RecompileController,
    pyast_recompiler,
    scheme_recompiler,
    weight_drift,
)
from repro.service.delta import (
    DeltaBatch,
    DeltaLedger,
    FrameDecoder,
    ProfileDelta,
    encode_frame,
    hello_frame,
    negotiated_features,
    read_frame,
    write_frame,
)
from repro.service.aggregator import StopResult
from repro.service.fleet import (
    FleetShipper,
    FleetSupervisor,
    HashRing,
    RootMerger,
    ShardAggregator,
)
from repro.service.metrics import ServiceMetrics
from repro.service.rollout import (
    CanaryResult,
    CircuitBreaker,
    GenerationJournal,
    RolloutGuard,
    StaticVerifyResult,
    scheme_canary,
    scheme_static_verifier,
)
from repro.service.shipper import ProfileShipper
from repro.service.spill import SpillLog
from repro.service.transport import ServiceAddress, connect, parse_address

__all__ = [
    "ProfileAggregator",
    "ProfileShipper",
    "ProfileDelta",
    "DeltaBatch",
    "DeltaLedger",
    "FrameDecoder",
    "FleetShipper",
    "FleetSupervisor",
    "HashRing",
    "RootMerger",
    "ShardAggregator",
    "SpillLog",
    "ServiceMetrics",
    "ServiceAddress",
    "RecompileController",
    "RecompilationDecision",
    "RecompilationLog",
    "weight_drift",
    "scheme_recompiler",
    "pyast_recompiler",
    "RolloutGuard",
    "GenerationJournal",
    "CircuitBreaker",
    "CanaryResult",
    "scheme_canary",
    "StaticVerifyResult",
    "scheme_static_verifier",
    "StopResult",
    "encode_frame",
    "hello_frame",
    "negotiated_features",
    "read_frame",
    "write_frame",
    "parse_address",
    "connect",
]
