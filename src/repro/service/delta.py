"""The profile-delta wire protocol.

Workers do not ship whole profiles: they ship **deltas** — the counter
increments accumulated since their last flush, tagged with the dataset
name, the v2 source fingerprints of the code being profiled, and a
monotonic per-shipper sequence number. Deltas are:

* **additive** — applying a delta to an aggregator-side counter set yields
  the same totals as if the worker had incremented that set directly;
* **idempotent** — the ``(shipper, seq)`` pair identifies a delta, and a
  :class:`DeltaLedger` refuses re-application, so at-least-once transports
  (retry after a lost ack, replay from a spill file) never double-count;
* **out-of-order tolerant** — addition commutes and the ledger tracks
  applied sequence numbers individually (watermark + sparse set), so
  deltas may arrive in any order.

Wire format (``encode_frame`` / :class:`FrameDecoder`): a 4-byte
big-endian unsigned length prefix followed by that many bytes of compact
UTF-8 JSON. Length-prefixing makes torn writes detectable (a short tail
simply never completes a frame) and keeps the parser incremental — no
sentinel bytes that payload text could collide with.

Wire version 2 adds two negotiated capabilities on top of the v1 frames
(which remain accepted unchanged, so v1 shippers interoperate):

* **batching** — a ``batch`` frame carries many deltas and is answered by
  one ack listing a per-delta status, amortizing the round trip (and, on
  a durable shard, the fsync) over the whole batch;
* **compression** — a frame whose length prefix has the top bit set
  carries a zlib-compressed payload. The flag lives outside the payload,
  so the decoder needs no heuristics; compressed frames are only sent
  after a ``hello`` exchange proves the peer speaks v2 (a v1 decoder
  would read the flagged prefix as an over-limit length and reject the
  connection rather than misparse it).
"""

from __future__ import annotations

import json
import struct
import zlib
from collections.abc import Iterator, Mapping, Sequence
from dataclasses import dataclass, field
from typing import IO

from repro.core.errors import DeltaFormatError
from repro.profiling.confidence import DatasetConfidence

__all__ = [
    "ProfileDelta",
    "DeltaBatch",
    "DeltaLedger",
    "FrameDecoder",
    "encode_frame",
    "decode_frame_payload",
    "decode_frame_payload_ex",
    "read_frame",
    "read_frame_ex",
    "write_frame",
    "hello_frame",
    "negotiated_features",
    "WIRE_VERSION",
    "SUPPORTED_WIRE_VERSIONS",
    "WIRE_FEATURES",
    "MAX_FRAME_BYTES",
    "MAX_BATCH_DELTAS",
]

#: Version tag carried in every frame this library emits. Bumped when the
#: frame schema grows; the decoder keeps accepting every version in
#: :data:`SUPPORTED_WIRE_VERSIONS` so old shippers are never locked out.
WIRE_VERSION = 2

#: Frame versions the decoder accepts. v1 is the original lone-delta
#: protocol; v2 adds ``hello``/``batch`` frames and compressed payloads.
SUPPORTED_WIRE_VERSIONS = frozenset({1, 2})

#: Optional capabilities a v2 peer may advertise in its ``hello``.
WIRE_FEATURES = ("batch", "zlib")

#: Upper bound on a single frame. A delta frame is one flush of one
#: worker's counters — far below this; anything larger is a corrupt or
#: hostile length prefix and must not trigger a giant allocation. The
#: limit applies to the *decompressed* payload of a compressed frame too.
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: Deltas one ``batch`` frame may carry.
MAX_BATCH_DELTAS = 4096

#: Top bit of the length prefix: the payload is zlib-compressed. The
#: remaining 31 bits are the (compressed) payload length; MAX_FRAME_BYTES
#: is far below 2**31, so flag and length never collide.
_COMPRESSED_FLAG = 0x8000_0000

_LENGTH = struct.Struct(">I")


@dataclass(frozen=True)
class ProfileDelta:
    """Counter increments since one shipper's last flush.

    ``counts`` maps serialized profile-point keys (the storage form used
    by :meth:`repro.core.counters.BaseCounterSet.as_key_mapping`) to
    non-negative increments.
    """

    #: unique id of the emitting shipper (stable across its reconnects)
    shipper: str
    #: monotonic per-shipper sequence number, starting at 1
    seq: int
    #: the data-set name the counts belong to
    dataset: str
    #: point key -> increment since the previous flush
    counts: Mapping[str, int]
    #: {filename: source_fingerprint} of the profiled source (v2 format)
    fingerprints: Mapping[str, str] = field(default_factory=dict)
    #: how the counts were collected; ``None`` means exact (fully
    #: instrumented), so v1 deltas keep their meaning unchanged
    confidence: DatasetConfidence | None = None

    def total(self) -> int:
        """Sum of all increments carried by this delta."""
        return sum(self.counts.values())

    def to_json_object(self) -> dict:
        obj: dict = {
            "type": "delta",
            "v": WIRE_VERSION,
            "shipper": self.shipper,
            "seq": self.seq,
            "dataset": self.dataset,
            "counts": dict(self.counts),
        }
        if self.fingerprints:
            obj["fingerprints"] = dict(self.fingerprints)
        if self.confidence is not None and self.confidence.is_sampled:
            obj["confidence"] = self.confidence.to_json_object()
        return obj

    @classmethod
    def from_json_object(cls, obj: object) -> "ProfileDelta":
        """Validate and rebuild a delta from its wire form.

        Every malformation raises :class:`DeltaFormatError` naming the
        offending field — the aggregator rejects the frame and keeps
        serving, it never crashes on bad input.
        """
        if not isinstance(obj, dict):
            raise DeltaFormatError("delta frame must be a JSON object")
        if obj.get("type") != "delta":
            raise DeltaFormatError(
                f"not a delta frame (type={obj.get('type')!r})"
            )
        if obj.get("v") not in SUPPORTED_WIRE_VERSIONS:
            raise DeltaFormatError(
                f"unsupported delta wire version {obj.get('v')!r} "
                f"(supported: {sorted(SUPPORTED_WIRE_VERSIONS)})"
            )
        shipper = obj.get("shipper")
        if not isinstance(shipper, str) or not shipper:
            raise DeltaFormatError("delta 'shipper' must be a non-empty string")
        seq = obj.get("seq")
        if isinstance(seq, bool) or not isinstance(seq, int) or seq < 1:
            raise DeltaFormatError(
                f"delta 'seq' must be a positive integer, got {seq!r}"
            )
        dataset = obj.get("dataset")
        if not isinstance(dataset, str) or not dataset:
            raise DeltaFormatError("delta 'dataset' must be a non-empty string")
        counts = obj.get("counts")
        if not isinstance(counts, dict):
            raise DeltaFormatError("delta 'counts' must be an object")
        for key, value in counts.items():
            # Exact-type probe first: this loop runs for every count of
            # every delta in every batch, and json.loads only ever
            # produces exact str/int, so the fallback checks are reached
            # only for hand-built frames (or actual malformations).
            if type(key) is str and type(value) is int and value >= 0:
                continue
            if not isinstance(key, str):
                raise DeltaFormatError(
                    f"delta count key must be a string, got {key!r}"
                )
            if isinstance(value, bool) or not isinstance(value, int) or value < 0:
                raise DeltaFormatError(
                    f"delta count for {key!r} must be a non-negative "
                    f"integer, got {value!r}"
                )
        fps = obj.get("fingerprints", {})
        if not isinstance(fps, dict) or not all(
            isinstance(k, str) and isinstance(v, str) for k, v in fps.items()
        ):
            raise DeltaFormatError(
                "delta 'fingerprints' must map filenames to digests"
            )
        confidence: DatasetConfidence | None = None
        raw_conf = obj.get("confidence")
        if raw_conf is not None:
            try:
                confidence = DatasetConfidence.from_json_object(raw_conf)
            except ValueError as exc:
                raise DeltaFormatError(
                    f"delta 'confidence' is malformed: {exc}"
                ) from exc
        return cls(
            shipper=shipper,
            seq=seq,
            dataset=dataset,
            counts=dict(counts),
            fingerprints=dict(fps),
            confidence=confidence,
        )


@dataclass(frozen=True)
class DeltaBatch:
    """Many deltas in one wire frame (v2).

    A batch is pure framing: applying its deltas one by one is exactly
    equivalent to receiving them as lone frames, and the ack carries one
    status per delta so the sender's accounting stays per-delta. The
    optional ``shard`` tag names the emitting shard on the shard → root
    uplink, feeding the root's per-shard labeled metrics.
    """

    deltas: tuple[ProfileDelta, ...]
    shard: str | None = None

    def total(self) -> int:
        return sum(delta.total() for delta in self.deltas)

    def to_json_object(self) -> dict:
        obj: dict = {
            "type": "batch",
            "v": WIRE_VERSION,
            "deltas": [delta.to_json_object() for delta in self.deltas],
        }
        if self.shard is not None:
            obj["shard"] = self.shard
        return obj

    @classmethod
    def from_json_object(cls, obj: object) -> "DeltaBatch":
        if not isinstance(obj, dict):
            raise DeltaFormatError("batch frame must be a JSON object")
        if obj.get("type") != "batch":
            raise DeltaFormatError(
                f"not a batch frame (type={obj.get('type')!r})"
            )
        if obj.get("v") not in SUPPORTED_WIRE_VERSIONS:
            raise DeltaFormatError(
                f"unsupported batch wire version {obj.get('v')!r}"
            )
        deltas = obj.get("deltas")
        if not isinstance(deltas, list) or not deltas:
            raise DeltaFormatError("batch 'deltas' must be a non-empty list")
        if len(deltas) > MAX_BATCH_DELTAS:
            raise DeltaFormatError(
                f"batch carries {len(deltas)} deltas; the limit is "
                f"{MAX_BATCH_DELTAS}"
            )
        shard = obj.get("shard")
        if shard is not None and not isinstance(shard, str):
            raise DeltaFormatError("batch 'shard' must be a string")
        return cls(
            deltas=tuple(ProfileDelta.from_json_object(d) for d in deltas),
            shard=shard,
        )


def hello_frame(
    features: Sequence[str] = WIRE_FEATURES, peer: str | None = None
) -> dict:
    """The v2 capability-negotiation frame a client opens with.

    A v1 client never sends one (the type did not exist), so a server
    that sees deltas before any hello simply serves that connection in
    v1 mode — negotiation is strictly per connection.
    """
    obj: dict = {"type": "hello", "v": WIRE_VERSION, "features": list(features)}
    if peer is not None:
        obj["peer"] = peer
    return obj


def negotiated_features(frame: object) -> set[str]:
    """The capability intersection with a peer's ``hello`` frame.

    Unknown features are ignored (forward compatibility); a malformed
    hello negotiates nothing, which is always safe — both sides just
    keep speaking lone uncompressed v1 frames.
    """
    if not isinstance(frame, dict) or frame.get("type") != "hello":
        return set()
    if frame.get("v") not in SUPPORTED_WIRE_VERSIONS:
        return set()
    features = frame.get("features")
    if not isinstance(features, list):
        return set()
    return set(WIRE_FEATURES) & {f for f in features if isinstance(f, str)}


class DeltaLedger:
    """Which ``(shipper, seq)`` pairs have been applied — the idempotency
    record.

    Per shipper it keeps a *watermark* (every seq ≤ watermark is applied)
    plus a sparse set of applied seqs above it, compacting the set into
    the watermark whenever the gap closes. Out-of-order arrival therefore
    costs memory proportional to the reordering window, not the history.

    The ledger serializes to JSON so the aggregator's checkpoint can
    restore it — after a restart, replayed deltas (from shipper spill
    files) are recognized as duplicates instead of double-counting.
    """

    def __init__(self) -> None:
        self._watermark: dict[str, int] = {}
        self._pending: dict[str, set[int]] = {}

    def seen(self, shipper: str, seq: int) -> bool:
        if seq <= self._watermark.get(shipper, 0):
            return True
        return seq in self._pending.get(shipper, ())

    def mark(self, shipper: str, seq: int) -> bool:
        """Record ``(shipper, seq)`` as applied.

        Returns ``False`` (and changes nothing) when it already was — the
        caller must then skip the apply.
        """
        if self.seen(shipper, seq):
            return False
        watermark = self._watermark.get(shipper, 0)
        pending = self._pending.setdefault(shipper, set())
        pending.add(seq)
        while watermark + 1 in pending:
            watermark += 1
            pending.remove(watermark)
        self._watermark[shipper] = watermark
        if not pending:
            del self._pending[shipper]
        return True

    def applied_count(self, shipper: str) -> int:
        """How many distinct deltas from ``shipper`` have been applied."""
        return self._watermark.get(shipper, 0) + len(
            self._pending.get(shipper, ())
        )

    def shippers(self) -> list[str]:
        return sorted(set(self._watermark) | set(self._pending))

    def to_json_object(self) -> dict:
        return {
            "watermark": dict(self._watermark),
            "pending": {k: sorted(v) for k, v in self._pending.items()},
        }

    @classmethod
    def from_json_object(cls, obj: object) -> "DeltaLedger":
        if not isinstance(obj, dict):
            raise DeltaFormatError("ledger must be a JSON object")
        ledger = cls()
        watermark = obj.get("watermark", {})
        pending = obj.get("pending", {})
        if not isinstance(watermark, dict) or not isinstance(pending, dict):
            raise DeltaFormatError("ledger watermark/pending must be objects")
        for shipper, seq in watermark.items():
            if not isinstance(shipper, str) or not isinstance(seq, int):
                raise DeltaFormatError("ledger watermark entries malformed")
            ledger._watermark[shipper] = seq
        for shipper, seqs in pending.items():
            if not isinstance(shipper, str) or not isinstance(seqs, list):
                raise DeltaFormatError("ledger pending entries malformed")
            ledger._pending[shipper] = {int(s) for s in seqs}
        return ledger

    def __repr__(self) -> str:
        return f"<DeltaLedger: {len(self.shippers())} shippers>"


# -- framing -------------------------------------------------------------------


def encode_frame(obj: object, *, compress: bool = False) -> bytes:
    """One wire frame: 4-byte big-endian length + compact JSON payload.

    With ``compress=True`` the payload is zlib-compressed and the length
    prefix carries the compressed-payload flag. Only send compressed
    frames to peers that negotiated the ``zlib`` feature.
    """
    payload = json.dumps(obj, separators=(",", ":"), sort_keys=True).encode(
        "utf-8"
    )
    if len(payload) > MAX_FRAME_BYTES:
        raise DeltaFormatError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    if compress:
        packed = zlib.compress(payload, 6)
        return _LENGTH.pack(len(packed) | _COMPRESSED_FLAG) + packed
    return _LENGTH.pack(len(payload)) + payload


def _split_length_prefix(raw: int) -> tuple[int, bool]:
    """``(payload_length, compressed)`` from a raw length-prefix word."""
    compressed = bool(raw & _COMPRESSED_FLAG)
    length = raw & ~_COMPRESSED_FLAG
    if length > MAX_FRAME_BYTES:
        raise DeltaFormatError(
            f"frame length {length} exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit (corrupt length prefix?)"
        )
    return length, compressed


def decode_frame_payload(payload: bytes, *, compressed: bool = False) -> object:
    return decode_frame_payload_ex(payload, compressed=compressed)[0]


def decode_frame_payload_ex(
    payload: bytes, *, compressed: bool = False
) -> tuple[object, bytes]:
    """:func:`decode_frame_payload` plus the decompressed JSON bytes.

    The raw bytes let a durable receiver (the shard WAL) persist the
    frame verbatim instead of re-serializing the decoded object.
    """
    if compressed:
        # Bounded decompression: a hostile tiny frame must not be able to
        # inflate into gigabytes (zip bomb). Anything over the frame
        # limit, or with trailing compressed data, is rejected.
        decompressor = zlib.decompressobj()
        try:
            payload = decompressor.decompress(payload, MAX_FRAME_BYTES + 1)
        except zlib.error as exc:
            raise DeltaFormatError(
                f"compressed frame payload is not valid zlib data: {exc}"
            ) from exc
        if len(payload) > MAX_FRAME_BYTES or decompressor.unconsumed_tail:
            raise DeltaFormatError(
                f"compressed frame decompresses past the "
                f"{MAX_FRAME_BYTES}-byte limit"
            )
    try:
        return json.loads(payload.decode("utf-8")), payload
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise DeltaFormatError(f"frame payload is not valid JSON: {exc}") from exc


class FrameDecoder:
    """Incremental frame parser for a byte stream.

    Feed it whatever the socket produced; it yields each complete frame's
    decoded JSON object and buffers the rest. A torn stream simply leaves
    an incomplete frame buffered — :attr:`partial` reports whether bytes
    are pending, so spill-replay and tests can distinguish "clean end"
    from "torn tail".
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> Iterator[object]:
        self._buffer.extend(data)
        while True:
            if len(self._buffer) < _LENGTH.size:
                return
            (raw,) = _LENGTH.unpack_from(self._buffer)
            length, compressed = _split_length_prefix(raw)
            end = _LENGTH.size + length
            if len(self._buffer) < end:
                return
            payload = bytes(self._buffer[_LENGTH.size : end])
            del self._buffer[:end]
            yield decode_frame_payload(payload, compressed=compressed)

    @property
    def partial(self) -> bool:
        """Whether an incomplete frame is buffered (a torn tail)."""
        return bool(self._buffer)


def write_frame(stream: IO[bytes], obj: object, *, compress: bool = False) -> int:
    """Write one frame to a binary stream; returns the bytes written.

    Flushes, because the protocol is request/response: a frame sitting in
    a buffered ``socket.makefile`` stream would deadlock both peers.
    """
    frame = encode_frame(obj, compress=compress)
    stream.write(frame)
    flush = getattr(stream, "flush", None)
    if flush is not None:
        flush()
    return len(frame)


def read_frame(stream: IO[bytes]) -> object | None:
    """Read exactly one frame from a binary stream.

    Returns ``None`` on a clean end-of-stream (zero bytes where the length
    prefix would start); raises :class:`DeltaFormatError` on a torn frame
    (EOF mid-prefix or mid-payload).
    """
    return read_frame_ex(stream)[0]


def read_frame_ex(stream: IO[bytes]) -> tuple[object | None, int, bytes]:
    """:func:`read_frame` plus wire byte count and decompressed payload.

    The size (length prefix included) feeds byte accounting without a
    re-serialization; the payload bytes let a durable receiver persist
    the frame verbatim. ``(None, 0, b"")`` on clean end-of-stream.
    """
    header = _read_exactly(stream, _LENGTH.size)
    if header is None:
        return None, 0, b""
    if len(header) < _LENGTH.size:
        raise DeltaFormatError("stream ended mid frame-length prefix")
    (raw,) = _LENGTH.unpack(header)
    length, compressed = _split_length_prefix(raw)
    payload = _read_exactly(stream, length)
    if payload is None or len(payload) < length:
        raise DeltaFormatError(
            f"stream ended mid frame payload ({0 if payload is None else len(payload)}"
            f" of {length} bytes)"
        )
    obj, json_bytes = decode_frame_payload_ex(payload, compressed=compressed)
    return obj, _LENGTH.size + length, json_bytes


def _read_exactly(stream: IO[bytes], n: int) -> bytes | None:
    """Up to ``n`` bytes, looping over short reads; ``None`` on clean EOF."""
    if n == 0:
        return b""
    chunks: list[bytes] = []
    remaining = n
    while remaining:
        chunk = stream.read(remaining)
        if not chunk:
            break
        chunks.append(chunk)
        remaining -= len(chunk)
    if not chunks:
        return None
    return b"".join(chunks)
