"""Spill-to-disk for deltas the shipper could not deliver.

When the aggregator is unreachable (or the in-memory queue overflows), a
worker must not crash, block its serving threads, or silently discard
profile data. It appends the undeliverable delta frames to a local
*spill log* and replays them after reconnecting. The profile-lifecycle
contract carries over:

* appends are flushed per frame, so a crash loses at most the frame being
  written (a *torn tail*);
* replay parses the log with the same length-prefixed framing as the wire
  and **stops cleanly at the first torn or corrupt frame** — everything
  before the tear is recovered, nothing after it can be misparsed;
* the aggregator's :class:`~repro.service.delta.DeltaLedger` makes replay
  idempotent, so "replay everything still in the log" is always safe,
  even when an ack was lost and the delta had in fact been applied.
"""

from __future__ import annotations

import contextlib
import os

from repro.core.errors import DeltaFormatError
from repro.obs.logs import get_logger
from repro.service.delta import FrameDecoder, encode_frame

__all__ = ["SpillLog"]

logger = get_logger(__name__)


class SpillLog:
    """An append-only on-disk log of wire frames (JSON objects).

    Single-writer by design — each shipper owns its spill path. Not
    thread-safe; the shipper serializes access through its own lock.
    """

    def __init__(self, path: str | os.PathLike[str]) -> None:
        self.path = os.fspath(path)

    def append(self, obj: object) -> int:
        """Append one frame, fsynced; returns the bytes written."""
        frame = encode_frame(obj)
        with open(self.path, "ab") as handle:
            handle.write(frame)
            handle.flush()
            os.fsync(handle.fileno())
        return len(frame)

    def replay(self) -> tuple[list[object], bool]:
        """Parse the log back into frames.

        Returns ``(frames, torn)`` where ``torn`` reports whether the log
        ended mid-frame (crash during an append) or held a corrupt frame —
        replay recovered every complete frame before the damage either
        way. A missing file is an empty, un-torn log.
        """
        try:
            with open(self.path, "rb") as handle:
                data = handle.read()
        except FileNotFoundError:
            return [], False
        decoder = FrameDecoder()
        frames: list[object] = []
        torn = False
        try:
            frames.extend(decoder.feed(data))
        except DeltaFormatError as exc:
            # A corrupt length prefix or unparseable payload: keep what
            # decoded cleanly, flag the damage. Only the frame-decode
            # error type is "torn log" — a decoder *bug* (AttributeError
            # and friends) must propagate, not masquerade as corruption.
            torn = True
            logger.warning(
                "spill log %s: corrupt frame after %d recovered frame(s): %s",
                self.path,
                len(frames),
                exc,
            )
        if decoder.partial:
            torn = True
        return frames, torn

    def clear(self) -> None:
        """Delete the log (after a fully-acked replay)."""
        with contextlib.suppress(FileNotFoundError):
            os.unlink(self.path)

    def size_bytes(self) -> int:
        try:
            return os.path.getsize(self.path)
        except OSError:
            return 0

    def __len__(self) -> int:
        frames, _ = self.replay()
        return len(frames)

    def __repr__(self) -> str:
        return f"<SpillLog {self.path!r}: {self.size_bytes()} bytes>"
