"""The worker-side client: ship counter deltas to an aggregator.

A :class:`ProfileShipper` wraps the counter set an instrumented worker is
already bumping (typically a lock-free
:class:`~repro.core.counters.ShardedCounterSet`) and periodically flushes
the *increments since the last flush* as :class:`ProfileDelta`s to the
aggregation service. Design invariants:

* **The hot path is untouched** — instrumented code keeps incrementing
  its counter set; the shipper only ever *reads* snapshots.
* **Profile loss degrades, never crashes.** Every failure (unreachable
  aggregator, full queue, quarantined delta) routes through the standard
  :func:`repro.core.policy.degrade` choke point: ``strict`` raises,
  ``warn``/``ignore`` record the reason and keep the worker serving.
* **Delivery is at-least-once, counted exactly once.** Undeliverable
  deltas go to a bounded in-memory queue, overflow to a
  :class:`~repro.service.spill.SpillLog`, and are replayed after
  reconnecting; the aggregator's ledger drops duplicates.
* **Reconnects back off exponentially, with jitter.** The exponential
  schedule alone is synchronized: every worker that lost the same
  aggregator restart computes the same retry instants and the herd
  arrives as one thundering wave. A per-shipper random jitter factor
  (``backoff_jitter``, injectable RNG for tests) de-correlates them.
* **The wire is negotiated per connection.** A new connection opens with
  a v2 ``hello``; when the server answers with ``batch``/``zlib``
  capabilities the shipper drains its queue in compressed batch frames
  (one round trip and one ack for many deltas). A server that answers
  anything else — a v1 aggregator rejects the unknown frame type — gets
  the original lone-delta v1 protocol, unchanged.
"""

from __future__ import annotations

import os
import random
import socket
import threading
import time
from collections import deque
from collections.abc import Mapping

from repro.core.counters import BaseCounterSet
from repro.core.errors import BackpressureError, DeltaFormatError, ServiceError
from repro.core.policy import DegradationLog, ProfilePolicy, degrade
from repro.obs.logs import get_logger
from repro.profiling.reconstruct import confidence_for_counts
from repro.service.delta import (
    MAX_BATCH_DELTAS,
    DeltaBatch,
    ProfileDelta,
    hello_frame,
    negotiated_features,
    read_frame,
    write_frame,
)
from repro.service.spill import SpillLog
from repro.service.transport import ServiceAddress, connect, parse_address

logger = get_logger(__name__)

__all__ = ["ProfileShipper"]


def _default_shipper_id() -> str:
    return f"{socket.gethostname()}-{os.getpid()}-{os.urandom(4).hex()}"


class ProfileShipper:
    """Flush counter increments to an aggregator as idempotent deltas.

    May be driven manually (:meth:`flush` after each unit of work, or
    :meth:`maybe_flush` on the fast path) or as a background daemon
    (:meth:`start` / :meth:`close`) flushing every ``flush_interval``
    seconds and whenever ``flush_threshold`` new counts have accumulated.

    ``shipper_id`` names one *incarnation* of a worker: sequence numbers
    restart at 1 with every new shipper object, so a restarted worker must
    use a fresh id (the default includes random bytes). Spilled frames
    embed the id they were cut under, which keeps spill replay idempotent
    across restarts without any id coordination.
    """

    def __init__(
        self,
        counters: BaseCounterSet,
        address: str | ServiceAddress,
        *,
        dataset: str | None = None,
        fingerprints: Mapping[str, str] | None = None,
        shipper_id: str | None = None,
        flush_interval: float = 1.0,
        flush_threshold: int = 10_000,
        max_pending: int = 64,
        spill_path: str | os.PathLike[str] | None = None,
        policy: ProfilePolicy | str = ProfilePolicy.WARN,
        degradations: DegradationLog | None = None,
        backoff_base: float = 0.05,
        backoff_max: float = 5.0,
        backoff_jitter: float = 0.5,
        rng: random.Random | None = None,
        negotiate: bool = True,
        batch_size: int = 256,
        timeout: float = 5.0,
        sample_scale: float | None = None,
    ) -> None:
        self.counters = counters
        self.address = parse_address(address)
        self.dataset = dataset if dataset is not None else counters.name
        self.fingerprints = dict(fingerprints) if fingerprints else {}
        self.shipper_id = shipper_id or _default_shipper_id()
        self.flush_interval = float(flush_interval)
        self.flush_threshold = int(flush_threshold)
        self.max_pending = int(max_pending)
        self.policy = ProfilePolicy.coerce(policy)
        self.degradations = (
            degradations if degradations is not None else DegradationLog()
        )
        self.spill = SpillLog(spill_path) if spill_path is not None else None
        self.backoff_base = float(backoff_base)
        self.backoff_max = float(backoff_max)
        #: fraction of each backoff randomized (0 = the old deterministic
        #: schedule; 0.5 spreads retries over ±50% of the nominal delay)
        self.backoff_jitter = float(backoff_jitter)
        if not 0.0 <= self.backoff_jitter <= 1.0:
            raise ServiceError(
                f"backoff_jitter must be in [0, 1], got {self.backoff_jitter}"
            )
        self._rng = rng if rng is not None else random.Random()
        self.negotiate = bool(negotiate)
        self.batch_size = min(int(batch_size), MAX_BATCH_DELTAS)
        self.timeout = float(timeout)
        #: when the wrapped counters hold *sampled* data reconstructed at
        #: this scaling factor, every cut delta carries a matching
        #: confidence record so the aggregator can merge error bars.
        #: ``None`` (the default) ships plain exact deltas.
        self.sample_scale = None if sample_scale is None else float(sample_scale)
        if self.sample_scale is not None and self.sample_scale < 1.0:
            raise ServiceError(
                f"sample_scale must be >= 1, got {self.sample_scale}"
            )

        self._lock = threading.RLock()
        self._seq = 0
        self._baseline: dict[str, int] = {}
        self._queue: deque[ProfileDelta] = deque()
        self._sock: socket.socket | None = None
        self._stream = None
        self._features: set[str] = set()  # per-connection, from the hello
        self._failures = 0
        self._retry_at = 0.0
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()

        # -- delivery stats (for tests and ship-side reporting) ------------
        self.shipped_deltas = 0
        self.shipped_counts = 0
        self.duplicate_deltas = 0
        self.quarantined_deltas = 0
        self.rejected_deltas = 0
        self.spilled_deltas = 0
        self.replayed_deltas = 0
        self.dropped_deltas = 0

    # -- delta construction ------------------------------------------------

    def _diff_since_baseline(self) -> dict[str, int]:
        """Per-key increments between the baseline and a fresh snapshot."""
        now = self.counters.as_key_mapping()
        increments: dict[str, int] = {}
        rewound = []
        for key, count in now.items():
            before = self._baseline.get(key, 0)
            if count > before:
                increments[key] = count - before
            elif count < before:
                rewound.append(key)
        if rewound:
            # The counter set was cleared/replaced under us. Re-baseline on
            # the new values (shipping them as fresh increments) instead of
            # silently wedging on an impossible negative delta.
            degrade(
                "ship",
                f"counter set {self.counters.name!r} went backwards for "
                f"{len(rewound)} point(s) (cleared mid-flight?)",
                "re-baselining on the current counts",
                policy=self.policy,
                log=self.degradations,
            )
            for key in rewound:
                increments[key] = now[key]
        self._baseline = now
        return increments

    def pending_counts(self) -> int:
        """How many counts have accumulated since the last flush."""
        with self._lock:
            baseline_total = sum(self._baseline.values())
        return max(0, self.counters.total() - baseline_total)

    def flush(self) -> ProfileDelta | None:
        """Cut a delta from the counter increments since the last flush,
        queue it, and attempt delivery. Returns the delta (or ``None`` if
        nothing accumulated)."""
        with self._lock:
            increments = self._diff_since_baseline()
            delta = None
            if increments:
                self._seq += 1
                confidence = None
                if self.sample_scale is not None and self.sample_scale > 1.0:
                    confidence = confidence_for_counts(
                        increments, self.sample_scale
                    )
                delta = ProfileDelta(
                    shipper=self.shipper_id,
                    seq=self._seq,
                    dataset=self.dataset,
                    counts=increments,
                    fingerprints=self.fingerprints,
                    confidence=confidence,
                )
                self._enqueue(delta)
            self._drain()
            return delta

    def maybe_flush(self) -> ProfileDelta | None:
        """Flush only once ``flush_threshold`` new counts accumulated."""
        if self.pending_counts() >= self.flush_threshold:
            return self.flush()
        with self._lock:
            self._drain()
        return None

    # -- queueing and backpressure ----------------------------------------

    def _enqueue(self, delta: ProfileDelta) -> None:
        self._queue.append(delta)
        while len(self._queue) > self.max_pending:
            overflow = self._queue.popleft()
            if self.spill is not None:
                try:
                    self.spill.append(overflow.to_json_object())
                    self.spilled_deltas += 1
                    continue
                except OSError as exc:
                    degrade(
                        "ship",
                        f"spill to {self.spill.path} failed: {exc}",
                        f"dropping delta seq={overflow.seq} "
                        f"({overflow.total()} counts)",
                        error=BackpressureError(
                            f"delta queue overflowed ({self.max_pending}) and "
                            f"spilling failed: {exc}"
                        ),
                        policy=self.policy,
                        log=self.degradations,
                    )
            else:
                degrade(
                    "ship",
                    f"delta queue overflowed ({self.max_pending} pending, "
                    f"no spill path configured)",
                    f"dropping oldest delta seq={overflow.seq} "
                    f"({overflow.total()} counts)",
                    error=BackpressureError(
                        f"delta queue overflowed ({self.max_pending} pending) "
                        "and no spill path is configured"
                    ),
                    policy=self.policy,
                    log=self.degradations,
                )
            self.dropped_deltas += 1

    # -- connection management ---------------------------------------------

    def _connected(self) -> bool:
        return self._stream is not None

    def _disconnect(self) -> None:
        self._features = set()
        if self._stream is not None:
            try:
                self._stream.close()
            except OSError:
                pass
            self._stream = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def _note_failure(self, reason: str) -> None:
        self._disconnect()
        self._failures += 1
        backoff = min(
            self.backoff_max, self.backoff_base * (2 ** (self._failures - 1))
        )
        if self.backoff_jitter:
            # De-correlate retries: N workers that lost the same aggregator
            # at the same instant must not all reconnect at the same
            # instant (the thundering-herd bug). Spread each delay over
            # ±jitter of its nominal value, still capped at backoff_max.
            spread = 1.0 + self.backoff_jitter * (2.0 * self._rng.random() - 1.0)
            backoff = min(self.backoff_max, backoff * spread)
        self._retry_at = time.monotonic() + backoff
        degrade(
            "ship",
            f"aggregator {self.address} unreachable: {reason}",
            f"buffering deltas; retrying in {backoff:.2f}s "
            f"(attempt {self._failures})",
            policy=self.policy,
            log=self.degradations,
        )

    def _ensure_connection(self) -> bool:
        if self._connected():
            return True
        if time.monotonic() < self._retry_at:
            return False
        try:
            self._sock = connect(self.address, timeout=self.timeout)
            self._stream = self._sock.makefile("rwb")
            if self.negotiate:
                self._negotiate()
        except (OSError, ServiceError, DeltaFormatError) as exc:
            self._note_failure(str(exc))
            return False
        self._failures = 0
        self._retry_at = 0.0
        return True

    def _negotiate(self) -> None:
        """One hello round trip; records the capability intersection.

        A v1 aggregator answers the unknown frame with a rejection ack —
        ``negotiated_features`` maps that to the empty set and this
        connection simply speaks v1 (lone uncompressed deltas).
        """
        assert self._stream is not None
        write_frame(self._stream, hello_frame(peer=self.shipper_id))
        self._stream.flush()
        response = read_frame(self._stream)
        if response is None:
            raise ServiceError("aggregator closed the connection on hello")
        self._features = negotiated_features(response)

    # -- delivery ----------------------------------------------------------

    def _send_one(self, obj: dict) -> str:
        """Send one delta frame and wait for its ack; returns the status."""
        assert self._stream is not None
        write_frame(self._stream, obj, compress="zlib" in self._features)
        self._stream.flush()
        response = read_frame(self._stream)
        if not isinstance(response, dict) or response.get("type") != "ack":
            raise ServiceError(
                f"aggregator sent no ack (got {response!r})"
            )
        status = response.get("status")
        if status not in ("applied", "duplicate", "stale", "rejected"):
            raise ServiceError(f"aggregator sent unknown ack status {status!r}")
        return str(status)

    def _send_batch(self, deltas: list[ProfileDelta]) -> list[str]:
        """Send many deltas in one v2 batch frame; returns each status."""
        assert self._stream is not None
        frame = DeltaBatch(deltas=tuple(deltas)).to_json_object()
        write_frame(self._stream, frame, compress="zlib" in self._features)
        self._stream.flush()
        response = read_frame(self._stream)
        if (
            not isinstance(response, dict)
            or response.get("type") != "ack"
            or response.get("status") != "batch"
        ):
            raise ServiceError(
                f"aggregator sent no batch ack (got {response!r})"
            )
        acks = response.get("acks")
        if acks is None and response.get("applied") == len(deltas):
            # Condensed ack: every delta applied, no per-delta list.
            return ["applied"] * len(deltas)
        if not isinstance(acks, list) or len(acks) != len(deltas):
            raise ServiceError(
                f"batch ack carries {len(acks) if isinstance(acks, list) else 0}"
                f" statuses for {len(deltas)} deltas"
            )
        statuses = []
        for ack in acks:
            status = ack.get("status") if isinstance(ack, dict) else None
            if status not in ("applied", "duplicate", "stale", "rejected"):
                raise ServiceError(
                    f"batch ack carries unknown status {status!r}"
                )
            statuses.append(str(status))
        return statuses

    def _account(self, status: str, obj: dict, replayed: bool) -> None:
        total = sum(obj.get("counts", {}).values())
        if status == "applied":
            self.shipped_deltas += 1
            self.shipped_counts += total
            if replayed:
                self.replayed_deltas += 1
        elif status == "duplicate":
            self.duplicate_deltas += 1
        elif status == "stale":
            self.quarantined_deltas += 1
            degrade(
                "ship",
                f"aggregator quarantined delta seq={obj.get('seq')} as stale "
                "(source fingerprint mismatch)",
                "delta dropped; profile for the changed source is not merged",
                policy=self.policy,
                log=self.degradations,
            )
        else:  # rejected
            self.rejected_deltas += 1
            degrade(
                "ship",
                f"aggregator rejected delta seq={obj.get('seq')} as malformed",
                "delta dropped",
                policy=self.policy,
                log=self.degradations,
            )

    def _replay_spill(self) -> bool:
        """Deliver every spilled frame; returns True when the spill is clear."""
        if self.spill is None:
            return True
        frames, torn = self.spill.replay()
        if torn:
            degrade(
                "ship",
                f"spill log {self.spill.path} has a torn tail",
                f"recovered {len(frames)} complete delta(s); the torn tail "
                "is lost",
                policy=self.policy,
                log=self.degradations,
            )
        if not frames and not torn:
            self.spill.clear()
            return True
        delivered = 0
        try:
            for frame in frames:
                if not isinstance(frame, dict):
                    raise DeltaFormatError(f"spilled frame is not an object: {frame!r}")
                status = self._send_one(frame)
                self._account(status, frame, replayed=True)
                delivered += 1
        except (OSError, ServiceError) as exc:
            # Rewrite the spill to only the undelivered tail, then back off.
            remainder = frames[delivered:]
            self.spill.clear()
            for frame in remainder:
                self.spill.append(frame)
            self._note_failure(str(exc))
            return False
        except DeltaFormatError as exc:
            degrade(
                "ship",
                f"spill log {self.spill.path} held a corrupt frame: {exc}",
                "discarding the remainder of the spill",
                policy=self.policy,
                log=self.degradations,
            )
        self.spill.clear()
        return True

    def _drain(self) -> None:
        """Push spilled then queued deltas to the aggregator (best effort)."""
        if not self._queue and (self.spill is None or not self.spill.size_bytes()):
            return
        if not self._ensure_connection():
            return
        if not self._replay_spill():
            return
        while self._queue:
            if "batch" in self._features and len(self._queue) > 1:
                deltas = list(self._queue)[: self.batch_size]
                try:
                    statuses = self._send_batch(deltas)
                except (OSError, ServiceError) as exc:
                    # Nothing was dequeued: the whole batch stays queued
                    # and resends after reconnect; the aggregator's ledger
                    # settles any deltas it already applied.
                    self._note_failure(str(exc))
                    return
                for delta, status in zip(deltas, statuses):
                    self._queue.popleft()
                    self._account(status, delta.to_json_object(), replayed=False)
                continue
            delta = self._queue[0]
            obj = delta.to_json_object()
            try:
                status = self._send_one(obj)
            except (OSError, ServiceError) as exc:
                self._note_failure(str(exc))
                return
            self._queue.popleft()
            self._account(status, obj, replayed=False)

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "ProfileShipper":
        """Start the background flush thread (daemon)."""
        with self._lock:
            if self._thread is not None:
                return self
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, name=f"pgmp-shipper-{self.shipper_id}", daemon=True
            )
            self._thread.start()
        logger.info(
            "shipper %s started (flush every %.1fs -> %s)",
            self.shipper_id, self.flush_interval, self.address,
        )
        return self

    def _run(self) -> None:
        while not self._stop.wait(self.flush_interval):
            self.flush()

    def close(self) -> None:
        """Final flush + drain; spill whatever could not be delivered."""
        if self._thread is not None:
            self._stop.set()
            self._thread.join(timeout=max(5.0, self.flush_interval * 2))
            self._thread = None
        with self._lock:
            try:
                self.flush()
            finally:
                if self._queue and self.spill is not None:
                    while self._queue:
                        delta = self._queue.popleft()
                        try:
                            self.spill.append(delta.to_json_object())
                            self.spilled_deltas += 1
                        except OSError:
                            self.dropped_deltas += 1
                elif self._queue:
                    undelivered = len(self._queue)
                    self._queue.clear()
                    self.dropped_deltas += undelivered
                    degrade(
                        "ship",
                        f"{undelivered} delta(s) undelivered at close "
                        "(no spill path configured)",
                        "profile data for those deltas is lost",
                        policy=self.policy,
                        log=self.degradations,
                    )
                self._disconnect()
        logger.info(
            "shipper %s closed (shipped=%d spilled=%d dropped=%d)",
            self.shipper_id, self.shipped_deltas, self.spilled_deltas,
            self.dropped_deltas,
        )

    def __enter__(self) -> "ProfileShipper":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"<ProfileShipper {self.shipper_id!r} -> {self.address} "
            f"seq={self._seq} queued={len(self._queue)}>"
        )
