"""The online recompilation controller.

The batch workflow re-expands a program when a human re-runs the
compiler. In continuous operation the decision must be automatic: as the
aggregator merges fresh deltas, the merged weights *drift* away from the
weights the currently-deployed expansion was optimized against. The
controller measures that drift and, past a configurable threshold,
re-runs the meta-program optimization and atomically swaps the compiled
artifact.

Drift metric: **L∞ distance** over the union of point keys between the
merged weight mapping now and the mapping used for the last expansion.
Profile weights live in ``[0, 1]``, so drift does too; the threshold is
directly interpretable ("recompile when any point's weight moved by more
than X"). Against an empty baseline the drift of any non-empty profile is
1.0 (the hottest point went from 0 to 1), so the first profile data
always triggers the first optimization.

Every decision — recompile or not — is recorded in a
:class:`RecompilationLog`, so "why is production still running the old
expansion?" is always answerable.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable, Mapping
from dataclasses import dataclass
from typing import Any

from repro.core.database import ProfileDatabase
from repro.obs.logs import get_logger
from repro.obs.metrics import get_global_metrics
from repro.obs.tracer import DecisionRecord, Tracer, using_tracer
from repro.service.metrics import ServiceMetrics

__all__ = [
    "weight_drift",
    "decision_diff",
    "RecompilationDecision",
    "RecompilationLog",
    "RecompileController",
    "scheme_recompiler",
    "pyast_recompiler",
]

logger = get_logger(__name__)


def decision_diff(
    previous: list[DecisionRecord] | None, current: list[DecisionRecord]
) -> tuple[str, int]:
    """Summarize how this recompile's meta-program decisions differ from
    the previous artifact's: ``(summary, changed_count)``.

    Decisions are keyed by ``(construct, location)``; a decision *changed*
    when the chosen alternative at that site differs. ``previous=None``
    (the first recompile) reports every decision as new.
    """

    def keyed(records: list[DecisionRecord]) -> dict:
        return {
            (record.construct, record.location): record.chosen
            for record in records
        }

    now = keyed(current)
    if previous is None:
        return (f"first artifact: {len(now)} decision site(s)", len(now))
    before = keyed(previous)
    changed = [
        f"{construct}@{location}"
        for (construct, location), chosen in sorted(now.items())
        if (construct, location) in before
        and before[(construct, location)] != chosen
    ]
    new = sum(1 for key in now if key not in before)
    gone = sum(1 for key in before if key not in now)
    unchanged = sum(
        1
        for key, chosen in now.items()
        if key in before and before[key] == chosen
    )
    parts = [f"{len(changed)} changed", f"{unchanged} unchanged"]
    if new:
        parts.append(f"{new} new")
    if gone:
        parts.append(f"{gone} gone")
    summary = ", ".join(parts)
    if changed:
        summary += " [" + "; ".join(changed) + "]"
    return (summary, len(changed) + new + gone)


def weight_drift(
    before: Mapping[str, float], after: Mapping[str, float]
) -> float:
    """L∞ distance between two merged weight mappings (point key → weight).

    A point missing from a mapping has weight 0.0 — the same convention
    ``profile-query`` uses — so newly-hot and gone-cold points both count.
    """
    keys = before.keys() | after.keys()
    return max(
        (abs(before.get(k, 0.0) - after.get(k, 0.0)) for k in keys),
        default=0.0,
    )


@dataclass(frozen=True)
class RecompilationDecision:
    """One controller evaluation: the drift seen and what was done."""

    #: how many recompilations had happened before this decision
    generation: int
    #: L∞ drift of the merged weights against the last-compiled baseline
    drift: float
    #: the threshold in force
    threshold: float
    #: whether a recompile-and-swap was performed
    recompiled: bool
    #: human-readable explanation
    reason: str
    #: wall-clock seconds the recompile + swap took (0.0 when skipped)
    pause_seconds: float = 0.0
    #: how the meta-program decisions differ from the previous artifact's
    #: (empty when no recompile happened)
    decision_diff: str = ""
    #: decision sites whose outcome changed/appeared/disappeared vs the
    #: previous artifact
    decisions_changed: int = 0

    def __str__(self) -> str:
        verb = "recompiled" if self.recompiled else "kept"
        return (
            f"gen {self.generation}: drift {self.drift:.4f} "
            f"(threshold {self.threshold:.4f}) -> {verb} ({self.reason})"
        )

    def to_json_object(self) -> dict:
        return {
            "generation": self.generation,
            "drift": self.drift,
            "threshold": self.threshold,
            "recompiled": self.recompiled,
            "reason": self.reason,
            "pause_seconds": self.pause_seconds,
            "decision_diff": self.decision_diff,
            "decisions_changed": self.decisions_changed,
        }


class RecompilationLog:
    """Thread-safe append-only record of controller decisions."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: list[RecompilationDecision] = []

    def record(self, entry: RecompilationDecision) -> RecompilationDecision:
        with self._lock:
            self._entries.append(entry)
        return entry

    def entries(self) -> list[RecompilationDecision]:
        with self._lock:
            return list(self._entries)

    def recompilations(self) -> list[RecompilationDecision]:
        return [e for e in self.entries() if e.recompiled]

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __iter__(self):
        return iter(self.entries())

    def __repr__(self) -> str:
        return (
            f"<RecompilationLog: {len(self)} decisions, "
            f"{len(self.recompilations())} recompilations>"
        )


class RecompileController:
    """Drift-triggered optimization with an atomically-swapped artifact.

    ``recompile`` is the substrate-specific compile step: given the merged
    :class:`ProfileDatabase`, produce a new compiled artifact (a Scheme
    :class:`~repro.scheme.core_forms.Program`, a recompiled Python
    function, …). The controller guarantees:

    * :meth:`artifact` readers never observe a half-swapped state — the
      swap is a single reference assignment under the controller lock;
    * the baseline weights and the artifact move together: a decision to
      recompile updates both or (if ``recompile`` raises) neither;
    * decisions are serialized — concurrent :meth:`maybe_recompile` calls
      cannot both recompile for the same drift.
    """

    def __init__(
        self,
        recompile: Callable[[ProfileDatabase], Any],
        *,
        threshold: float = 0.05,
        log: RecompilationLog | None = None,
        metrics: ServiceMetrics | None = None,
    ) -> None:
        if not 0.0 <= float(threshold) <= 1.0:
            raise ValueError(
                f"drift threshold must be in [0, 1], got {threshold!r}"
            )
        self._recompile = recompile
        self.threshold = float(threshold)
        self.log = log if log is not None else RecompilationLog()
        self.metrics = metrics
        self._lock = threading.Lock()
        self._artifact: Any = None
        self._baseline: dict[str, float] | None = None
        self._generation = 0
        #: decision records of the currently-deployed artifact's expansion
        self._last_decisions: list[DecisionRecord] | None = None

    @property
    def generation(self) -> int:
        """How many recompile-and-swaps have happened."""
        with self._lock:
            return self._generation

    def artifact(self) -> Any:
        """The currently-deployed compiled artifact (``None`` before the
        first recompilation)."""
        with self._lock:
            return self._artifact

    def baseline_weights(self) -> dict[str, float] | None:
        """The merged weights the current artifact was optimized against."""
        with self._lock:
            return dict(self._baseline) if self._baseline is not None else None

    def maybe_recompile(self, db: ProfileDatabase) -> RecompilationDecision:
        """Evaluate drift of ``db``'s merged weights; recompile if needed."""
        merged = db.merged().as_key_mapping()
        with self._lock:
            if not merged and self._baseline is None:
                decision = RecompilationDecision(
                    generation=self._generation,
                    drift=0.0,
                    threshold=self.threshold,
                    recompiled=False,
                    reason="no profile data yet",
                )
                return self.log.record(decision)
            baseline = self._baseline if self._baseline is not None else {}
            drift = weight_drift(baseline, merged)
            if drift <= self.threshold:
                decision = RecompilationDecision(
                    generation=self._generation,
                    drift=drift,
                    threshold=self.threshold,
                    recompiled=False,
                    reason="drift within threshold",
                )
                return self.log.record(decision)
            started = time.perf_counter()
            # Trace the recompile's expansion so this decision can be
            # tagged with how the meta-programs' choices moved relative to
            # the previous artifact (the decision-provenance diff).
            tracer = Tracer()
            with using_tracer(tracer), tracer.span(
                "recompile", f"generation-{self._generation + 1}"
            ):
                artifact = self._recompile(db)
            pause = time.perf_counter() - started
            get_global_metrics().inc("traces_total")
            decisions = tracer.decisions()
            diff, changed = decision_diff(self._last_decisions, decisions)
            self._artifact = artifact
            self._baseline = dict(merged)
            self._last_decisions = decisions
            self._generation += 1
            decision = RecompilationDecision(
                generation=self._generation,
                drift=drift,
                threshold=self.threshold,
                recompiled=True,
                reason=(
                    "first optimization"
                    if not baseline
                    else "drift exceeded threshold"
                ),
                pause_seconds=pause,
                decision_diff=diff,
                decisions_changed=changed,
            )
        logger.info(
            "recompiled generation %d (drift %.4f): %s",
            decision.generation, decision.drift, decision.decision_diff,
        )
        if self.metrics is not None:
            self.metrics.inc("recompilations_total")
            self.metrics.observe_latency("recompile_pause", pause)
            self.metrics.set_gauge("recompile_generation", decision.generation)
            self.metrics.set_gauge(
                "recompile_decisions_changed", decision.decisions_changed
            )
        return self.log.record(decision)

    def __repr__(self) -> str:
        return (
            f"<RecompileController gen={self.generation} "
            f"threshold={self.threshold}>"
        )


def scheme_recompiler(
    system: Any, source: str, filename: str = "<service>"
) -> Callable[[ProfileDatabase], Any]:
    """A ``recompile`` step re-expanding Scheme ``source`` on a
    :class:`~repro.scheme.pipeline.SchemeSystem`.

    Each call hot-swaps the merged database into the system and goes
    through the profile-keyed artifact cache: a genuinely drifted profile
    changes the merged fingerprint and misses (meta-programs re-decide
    against the fresh weights — exactly the offline ``pgmp optimize``
    path, minus the restart), while a swap that didn't change effective
    weights — or a flap back to weights already compiled under — swaps
    the precompiled artifact in without re-expanding anything.
    """

    def recompile(db: ProfileDatabase) -> Any:
        system.hot_swap_profile(db)
        artifact = system.compile_cached(source, filename)
        if artifact.program is not None:
            return artifact.program
        # Disk-tier hit from an earlier process: the artifact is runnable
        # but carries no expanded Program object, which the controller's
        # artifact() contract requires — re-expand for it.
        return system.compile(source, filename)

    return recompile


def pyast_recompiler(
    system: Any,
    fn: Callable,
    registry: Any = None,
    extra_globals: dict | None = None,
) -> Callable[[ProfileDatabase], Any]:
    """A ``recompile`` step re-expanding a Python function on a
    :class:`~repro.pyast.system.PyAstSystem`."""

    def recompile(db: ProfileDatabase) -> Any:
        system.hot_swap_profile(db)
        return system.expand(fn, registry, extra_globals)

    return recompile
