"""The online recompilation controller.

The batch workflow re-expands a program when a human re-runs the
compiler. In continuous operation the decision must be automatic: as the
aggregator merges fresh deltas, the merged weights *drift* away from the
weights the currently-deployed expansion was optimized against. The
controller measures that drift and, past a configurable threshold,
re-runs the meta-program optimization and atomically swaps the compiled
artifact.

Drift metric: **L∞ distance** over the union of point keys between the
merged weight mapping now and the mapping used for the last expansion.
Profile weights live in ``[0, 1]``, so drift does too; the threshold is
directly interpretable ("recompile when any point's weight moved by more
than X"). Against an empty baseline the drift of any non-empty profile is
1.0 (the hottest point went from 0 to 1), so the first profile data
always triggers the first optimization.

Every decision — recompile or not — is recorded in a
:class:`RecompilationLog`, so "why is production still running the old
expansion?" is always answerable.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable, Mapping
from dataclasses import dataclass
from typing import Any

from repro.core.database import ProfileDatabase
from repro.obs.logs import get_logger
from repro.obs.metrics import get_global_metrics
from repro.obs.tracer import DecisionRecord, Tracer, using_tracer
from repro.service.metrics import ServiceMetrics
from repro.service.rollout import CanaryResult, RolloutGuard, StaticVerifyResult

__all__ = [
    "weight_drift",
    "decision_diff",
    "RecompilationDecision",
    "RecompilationLog",
    "RecompileController",
    "scheme_recompiler",
    "pyast_recompiler",
]

logger = get_logger(__name__)


def decision_diff(
    previous: list[DecisionRecord] | None, current: list[DecisionRecord]
) -> tuple[str, int]:
    """Summarize how this recompile's meta-program decisions differ from
    the previous artifact's: ``(summary, changed_count)``.

    Decisions are keyed by ``(construct, location)``; a decision *changed*
    when the chosen alternative at that site differs. ``previous=None``
    (the first recompile) reports every decision as new.
    """

    def keyed(records: list[DecisionRecord]) -> dict:
        return {
            (record.construct, record.location): record.chosen
            for record in records
        }

    now = keyed(current)
    if previous is None:
        return (f"first artifact: {len(now)} decision site(s)", len(now))
    before = keyed(previous)
    changed = [
        f"{construct}@{location}"
        for (construct, location), chosen in sorted(now.items())
        if (construct, location) in before
        and before[(construct, location)] != chosen
    ]
    new = sum(1 for key in now if key not in before)
    gone = sum(1 for key in before if key not in now)
    unchanged = sum(
        1
        for key, chosen in now.items()
        if key in before and before[key] == chosen
    )
    parts = [f"{len(changed)} changed", f"{unchanged} unchanged"]
    if new:
        parts.append(f"{new} new")
    if gone:
        parts.append(f"{gone} gone")
    summary = ", ".join(parts)
    if changed:
        summary += " [" + "; ".join(changed) + "]"
    return (summary, len(changed) + new + gone)


def weight_drift(
    before: Mapping[str, float], after: Mapping[str, float]
) -> float:
    """L∞ distance between two merged weight mappings (point key → weight).

    A point missing from a mapping has weight 0.0 — the same convention
    ``profile-query`` uses — so newly-hot and gone-cold points both count.
    """
    keys = before.keys() | after.keys()
    return max(
        (abs(before.get(k, 0.0) - after.get(k, 0.0)) for k in keys),
        default=0.0,
    )


@dataclass(frozen=True)
class RecompilationDecision:
    """One controller evaluation: the drift seen and what was done."""

    #: how many recompilations had happened before this decision
    generation: int
    #: L∞ drift of the merged weights against the last-compiled baseline
    drift: float
    #: the threshold in force
    threshold: float
    #: whether a recompile-and-swap was performed
    recompiled: bool
    #: human-readable explanation
    reason: str
    #: wall-clock seconds the recompile + swap took (0.0 when skipped)
    pause_seconds: float = 0.0
    #: how the meta-program decisions differ from the previous artifact's
    #: (empty when no recompile happened)
    decision_diff: str = ""
    #: decision sites whose outcome changed/appeared/disappeared vs the
    #: previous artifact
    decisions_changed: int = 0

    def __str__(self) -> str:
        verb = "recompiled" if self.recompiled else "kept"
        return (
            f"gen {self.generation}: drift {self.drift:.4f} "
            f"(threshold {self.threshold:.4f}) -> {verb} ({self.reason})"
        )

    def to_json_object(self) -> dict:
        return {
            "generation": self.generation,
            "drift": self.drift,
            "threshold": self.threshold,
            "recompiled": self.recompiled,
            "reason": self.reason,
            "pause_seconds": self.pause_seconds,
            "decision_diff": self.decision_diff,
            "decisions_changed": self.decisions_changed,
        }


class RecompilationLog:
    """Thread-safe append-only record of controller decisions."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: list[RecompilationDecision] = []

    def record(self, entry: RecompilationDecision) -> RecompilationDecision:
        with self._lock:
            self._entries.append(entry)
        return entry

    def entries(self) -> list[RecompilationDecision]:
        with self._lock:
            return list(self._entries)

    def recompilations(self) -> list[RecompilationDecision]:
        return [e for e in self.entries() if e.recompiled]

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __iter__(self):
        return iter(self.entries())

    def __repr__(self) -> str:
        return (
            f"<RecompilationLog: {len(self)} decisions, "
            f"{len(self.recompilations())} recompilations>"
        )


class RecompileController:
    """Drift-triggered optimization with an atomically-swapped artifact.

    ``recompile`` is the substrate-specific compile step: given the merged
    :class:`ProfileDatabase`, produce a new compiled artifact (a Scheme
    :class:`~repro.scheme.core_forms.Program`, a recompiled Python
    function, …). The controller guarantees:

    * :meth:`artifact` readers never observe a half-swapped state — the
      swap is a single reference assignment under the controller lock;
    * the baseline weights and the artifact move together: a decision to
      recompile updates both or (if ``recompile`` raises) neither;
    * decisions are serialized — concurrent :meth:`maybe_recompile` calls
      cannot both recompile for the same drift.

    With a :class:`~repro.service.rollout.RolloutGuard` attached, every
    swap additionally passes the guard's gates: quarantine check and
    circuit breaker before the recompile, canary validation after it,
    and a fsynced journal write *before* the in-memory swap — so
    :meth:`rollback` (manual, or automatic via :meth:`observe_health`)
    can restore the previous generation, and
    :meth:`resume_from_journal` can rebuild the journaled live
    generation after a crash.
    """

    def __init__(
        self,
        recompile: Callable[[ProfileDatabase], Any],
        *,
        threshold: float = 0.05,
        log: RecompilationLog | None = None,
        metrics: ServiceMetrics | None = None,
        guard: RolloutGuard | None = None,
    ) -> None:
        if not 0.0 <= float(threshold) <= 1.0:
            raise ValueError(
                f"drift threshold must be in [0, 1], got {threshold!r}"
            )
        self._recompile = recompile
        self.threshold = float(threshold)
        self.log = log if log is not None else RecompilationLog()
        self.metrics = metrics
        self.guard = guard
        self._lock = threading.Lock()
        self._artifact: Any = None
        self._baseline: dict[str, float] | None = None
        self._generation = 0
        #: decision records of the currently-deployed artifact's expansion
        self._last_decisions: list[DecisionRecord] | None = None

    @property
    def generation(self) -> int:
        """How many recompile-and-swaps have happened."""
        with self._lock:
            return self._generation

    def artifact(self) -> Any:
        """The currently-deployed compiled artifact (``None`` before the
        first recompilation)."""
        with self._lock:
            return self._artifact

    def baseline_weights(self) -> dict[str, float] | None:
        """The merged weights the current artifact was optimized against."""
        with self._lock:
            return dict(self._baseline) if self._baseline is not None else None

    def maybe_recompile(self, db: ProfileDatabase) -> RecompilationDecision:
        """Evaluate drift of ``db``'s merged weights; recompile if needed."""
        merged = db.merged().as_key_mapping()
        with self._lock:
            if not merged and self._baseline is None:
                decision = RecompilationDecision(
                    generation=self._generation,
                    drift=0.0,
                    threshold=self.threshold,
                    recompiled=False,
                    reason="no profile data yet",
                )
                return self.log.record(decision)
            baseline = self._baseline if self._baseline is not None else {}
            drift = weight_drift(baseline, merged)
            if drift <= self.threshold:
                decision = RecompilationDecision(
                    generation=self._generation,
                    drift=drift,
                    threshold=self.threshold,
                    recompiled=False,
                    reason="drift within threshold",
                )
                return self.log.record(decision)
            guard = self.guard
            if guard is not None:
                fingerprint = db.merged_fingerprint()
                if guard.is_quarantined(fingerprint):
                    decision = RecompilationDecision(
                        generation=self._generation,
                        drift=drift,
                        threshold=self.threshold,
                        recompiled=False,
                        reason=(
                            f"profile snapshot quarantined "
                            f"({fingerprint[:12]})"
                        ),
                    )
                    return self.log.record(decision)
                allowed, retry_in = guard.breaker.allow()
                if not allowed:
                    state = guard.breaker.state
                    reason = f"circuit breaker {state}"
                    if retry_in > 0:
                        reason += f" (retry in {retry_in:.1f}s)"
                    else:
                        reason += " (probe recompile in flight)"
                    decision = RecompilationDecision(
                        generation=self._generation,
                        drift=drift,
                        threshold=self.threshold,
                        recompiled=False,
                        reason=reason,
                    )
                    return self.log.record(decision)
            started = time.perf_counter()
            next_generation = self._generation + 1
            # Trace the recompile's expansion so this decision can be
            # tagged with how the meta-programs' choices moved relative to
            # the previous artifact (the decision-provenance diff).
            tracer = Tracer()
            canary: CanaryResult | None = None
            static: StaticVerifyResult | None = None
            try:
                with using_tracer(tracer), tracer.span(
                    "rollout" if guard is not None else "recompile",
                    f"generation-{next_generation}",
                ):
                    if guard is not None:
                        with tracer.span(
                            "recompile", f"generation-{next_generation}"
                        ):
                            artifact = self._recompile(db)
                        # Static gate first: a candidate that provably
                        # breaks a translation invariant never gets a
                        # canary probe spent on it.
                        static = guard.verify(artifact)
                        if static.passed:
                            canary = guard.validate(artifact)
                    else:
                        artifact = self._recompile(db)
            except Exception:
                if guard is not None:
                    guard.breaker.record_failure()
                raise
            pause = time.perf_counter() - started
            get_global_metrics().inc("traces_total")
            if static is not None and not static.passed:
                assert guard is not None
                guard.breaker.record_failure()
                decision = RecompilationDecision(
                    generation=self._generation,
                    drift=drift,
                    threshold=self.threshold,
                    recompiled=False,
                    reason=f"static verify failed: {static.summary()}",
                    pause_seconds=pause,
                )
                logger.warning(
                    "candidate generation %d rejected by static verification: %s",
                    next_generation, static.summary(),
                )
                return self.log.record(decision)
            if canary is not None and not canary.passed:
                # The candidate never goes live: keep the deployed
                # artifact, count the strike against the breaker.
                assert guard is not None
                guard.breaker.record_failure()
                decision = RecompilationDecision(
                    generation=self._generation,
                    drift=drift,
                    threshold=self.threshold,
                    recompiled=False,
                    reason=f"canary failed: {canary.summary()}",
                    pause_seconds=pause,
                )
                logger.warning(
                    "candidate generation %d rejected by canary: %s",
                    next_generation, canary.summary(),
                )
                return self.log.record(decision)
            decisions = tracer.decisions()
            diff, changed = decision_diff(self._last_decisions, decisions)
            if guard is not None:
                # Journal before the swap: a crash after this point
                # resumes on the new generation, a crash before it on
                # the old one — never on a half-deployed mixture.
                guard.commit(next_generation, db, merged)
            self._artifact = artifact
            self._baseline = dict(merged)
            self._last_decisions = decisions
            self._generation = next_generation
            if guard is not None:
                guard.breaker.record_success()
                guard.begin_watch(next_generation)
            decision = RecompilationDecision(
                generation=self._generation,
                drift=drift,
                threshold=self.threshold,
                recompiled=True,
                reason=(
                    "first optimization"
                    if not baseline
                    else "drift exceeded threshold"
                ),
                pause_seconds=pause,
                decision_diff=diff,
                decisions_changed=changed,
            )
        logger.info(
            "recompiled generation %d (drift %.4f): %s",
            decision.generation, decision.drift, decision.decision_diff,
        )
        if self.metrics is not None:
            self.metrics.inc("recompilations_total")
            self.metrics.observe_latency("recompile_pause", pause)
            self.metrics.set_gauge("recompile_generation", decision.generation)
            self.metrics.set_gauge(
                "recompile_decisions_changed", decision.decisions_changed
            )
        return self.log.record(decision)

    def rollback(self, reason: str = "manual rollback") -> RecompilationDecision:
        """Restore the previous journaled generation and quarantine the
        offending profile snapshot.

        Rebuilds the target artifact by re-running the recompiler
        against the journaled merged-profile snapshot — deterministic
        expansion plus the profile-keyed artifact cache make that
        reproduce (usually just re-fetch) the artifact that generation
        deployed. The offending generation's fingerprint is quarantined
        so the still-drifted merged profile cannot immediately
        re-trigger the same bad recompile (the ping-pong loop).
        Skips the canary and the breaker: the target generation already
        proved itself in production, and rolling back must work
        precisely when recompiles are failing.
        """
        with self._lock:
            guard = self.guard
            if guard is None:
                decision = RecompilationDecision(
                    generation=self._generation,
                    drift=0.0,
                    threshold=self.threshold,
                    recompiled=False,
                    reason="no rollout guard configured",
                )
                return self.log.record(decision)
            live = guard.journal.live()
            target = guard.journal.rollback_target()
            if live is None or target is None:
                decision = RecompilationDecision(
                    generation=self._generation,
                    drift=0.0,
                    threshold=self.threshold,
                    recompiled=False,
                    reason="nothing to roll back to",
                )
                return self.log.record(decision)
            started = time.perf_counter()
            snapshot = guard.journal.load_snapshot(target)
            tracer = Tracer()
            with using_tracer(tracer), tracer.span(
                "rollback",
                f"generation-{live.generation}->generation-{target.generation}",
                reason=reason,
            ):
                artifact = self._recompile(snapshot)
            pause = time.perf_counter() - started
            get_global_metrics().inc("traces_total")
            decisions = tracer.decisions()
            diff, changed = decision_diff(self._last_decisions, decisions)
            self._artifact = artifact
            self._baseline = dict(target.baseline)
            self._last_decisions = decisions
            guard.journal.quarantine(
                live.profile_fingerprint, live.generation, reason
            )
            guard.journal.roll_back(live.generation, target.generation)
            guard.end_watch()
            decision = RecompilationDecision(
                generation=target.generation,
                drift=0.0,
                threshold=self.threshold,
                recompiled=True,
                reason=(
                    f"rolled back generation {live.generation} -> "
                    f"{target.generation}: {reason}"
                ),
                pause_seconds=pause,
                decision_diff=diff,
                decisions_changed=changed,
            )
        logger.warning(
            "rolled back generation %d -> %d (%s); quarantined profile %s",
            live.generation, target.generation, reason,
            live.profile_fingerprint[:12],
        )
        if self.metrics is not None:
            self.metrics.inc("rollbacks_total")
            self.metrics.set_gauge("recompile_generation", target.generation)
            self.metrics.set_gauge("rollout_generation", target.generation)
        return self.log.record(decision)

    def observe_health(
        self, ok: bool, latency: float | None = None
    ) -> RecompilationDecision | None:
        """Feed one serving-path health sample to the guard's watch
        window; performs the automatic rollback when the window's error
        budget or latency SLO is blown. Returns the rollback decision
        when one happened."""
        if self.guard is None:
            return None
        trigger = self.guard.observe(ok, latency)
        if trigger is None:
            return None
        return self.rollback(reason=trigger)

    def resume_from_journal(self) -> RecompilationDecision | None:
        """Rebuild the journaled live generation after a restart.

        A crash between the journal write and the swap — or any crash
        after a rollout — leaves the journal naming a generation this
        process no longer holds in memory. Recompiling from that
        generation's profile snapshot reproduces its artifact (the
        journal write preceded the swap, so the journal is never behind
        the artifact that was serving). No-op without a guard, without
        journal history, or once an artifact is already deployed.
        """
        with self._lock:
            guard = self.guard
            if guard is None or self._artifact is not None:
                return None
            live = guard.journal.live()
            if live is None:
                return None
            started = time.perf_counter()
            snapshot = guard.journal.load_snapshot(live)
            tracer = Tracer()
            with using_tracer(tracer), tracer.span(
                "recompile", f"generation-{live.generation}-resume"
            ):
                artifact = self._recompile(snapshot)
            pause = time.perf_counter() - started
            get_global_metrics().inc("traces_total")
            decisions = tracer.decisions()
            diff, changed = decision_diff(None, decisions)
            self._artifact = artifact
            self._baseline = dict(live.baseline)
            self._last_decisions = decisions
            self._generation = live.generation
            decision = RecompilationDecision(
                generation=live.generation,
                drift=0.0,
                threshold=self.threshold,
                recompiled=True,
                reason=f"resumed generation {live.generation} from journal",
                pause_seconds=pause,
                decision_diff=diff,
                decisions_changed=changed,
            )
        logger.info(
            "resumed generation %d from the rollout journal",
            decision.generation,
        )
        if self.metrics is not None:
            self.metrics.set_gauge("recompile_generation", decision.generation)
            self.metrics.set_gauge("rollout_generation", decision.generation)
        return self.log.record(decision)

    def rollout_status(self) -> dict | None:
        """The guard's status block for ``stats``/``/healthz`` (``None``
        without a guard)."""
        if self.guard is None:
            return None
        return self.guard.status()

    def __repr__(self) -> str:
        return (
            f"<RecompileController gen={self.generation} "
            f"threshold={self.threshold}>"
        )


def scheme_recompiler(
    system: Any, source: str, filename: str = "<service>"
) -> Callable[[ProfileDatabase], Any]:
    """A ``recompile`` step re-expanding Scheme ``source`` on a
    :class:`~repro.scheme.pipeline.SchemeSystem`.

    Each call hot-swaps the merged database into the system and goes
    through the profile-keyed artifact cache: a genuinely drifted profile
    changes the merged fingerprint and misses (meta-programs re-decide
    against the fresh weights — exactly the offline ``pgmp optimize``
    path, minus the restart), while a swap that didn't change effective
    weights — or a flap back to weights already compiled under — swaps
    the precompiled artifact in without re-expanding anything.
    """

    def recompile(db: ProfileDatabase) -> Any:
        system.hot_swap_profile(db)
        artifact = system.compile_cached(source, filename)
        if artifact.program is not None:
            return artifact.program
        # Disk-tier hit from an earlier process: the artifact is runnable
        # but carries no expanded Program object, which the controller's
        # artifact() contract requires — re-expand for it.
        return system.compile(source, filename)

    return recompile


def pyast_recompiler(
    system: Any,
    fn: Callable,
    registry: Any = None,
    extra_globals: dict | None = None,
) -> Callable[[ProfileDatabase], Any]:
    """A ``recompile`` step re-expanding a Python function on a
    :class:`~repro.pyast.system.PyAstSystem`."""

    def recompile(db: ProfileDatabase) -> Any:
        system.hot_swap_profile(db)
        return system.expand(fn, registry, extra_globals)

    return recompile
