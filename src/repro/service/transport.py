"""Socket plumbing shared by the shipper and the aggregator.

Addresses are spelled one of two ways:

* ``host:port`` — TCP (``127.0.0.1:9901``; port ``0`` asks the OS for a
  free port, which the aggregator reports back after binding);
* ``unix:/path/to.sock`` — a Unix-domain stream socket.

Both sides speak the same length-prefixed frame protocol from
:mod:`repro.service.delta` over a buffered socket file.
"""

from __future__ import annotations

import socket
from dataclasses import dataclass

from repro.core.errors import ServiceError

__all__ = ["ServiceAddress", "parse_address", "connect"]


@dataclass(frozen=True)
class ServiceAddress:
    """A parsed service endpoint: TCP host/port or a Unix socket path."""

    family: str  # "tcp" | "unix"
    host: str = ""
    port: int = 0
    path: str = ""

    def __str__(self) -> str:
        if self.family == "unix":
            return f"unix:{self.path}"
        return f"{self.host}:{self.port}"


def parse_address(spec: "str | ServiceAddress") -> ServiceAddress:
    """Parse ``host:port`` or ``unix:/path`` into a :class:`ServiceAddress`."""
    if isinstance(spec, ServiceAddress):
        return spec
    spec = str(spec)
    if spec.startswith("unix:"):
        path = spec[len("unix:") :]
        if not path:
            raise ServiceError("unix address needs a socket path (unix:/path)")
        return ServiceAddress(family="unix", path=path)
    host, sep, port_text = spec.rpartition(":")
    if not sep or not host:
        raise ServiceError(
            f"service address must be host:port or unix:/path, got {spec!r}"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise ServiceError(f"invalid port in service address {spec!r}") from None
    if not 0 <= port <= 65535:
        raise ServiceError(f"port out of range in service address {spec!r}")
    return ServiceAddress(family="tcp", host=host, port=port)


def connect(address: "str | ServiceAddress", timeout: float = 5.0) -> socket.socket:
    """Open a stream connection to ``address`` (caller closes it)."""
    address = parse_address(address)
    if address.family == "unix":
        if not hasattr(socket, "AF_UNIX"):  # pragma: no cover - non-POSIX
            raise ServiceError("unix-domain sockets unavailable on this platform")
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            sock.settimeout(timeout)
            sock.connect(address.path)
        except BaseException:
            sock.close()
            raise
        return sock
    return socket.create_connection(
        (address.host, address.port), timeout=timeout
    )
