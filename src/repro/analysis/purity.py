"""Conservative effect analysis of clause tests, for both substrates.

§6.1's reordering transformations (``exclusive-cond``, ``case``, ``and-r``,
``or-r``, ``pycase``) are only semantics-preserving when the expressions
they reorder are effect-free: after reordering, a different *subset* of the
tests runs, in a different order. The analyses here are deliberately
conservative three-valued judgements:

* :attr:`Purity.PURE` — provably effect-free (literals, variable
  references, applications of known-pure primitives to pure arguments…);
* :attr:`Purity.IMPURE` — provably effectful (``set!``, mutation
  primitives, I/O, ``error``…) — reordering *will* change semantics;
* :attr:`Purity.UNKNOWN` — a call to a procedure the analyzer cannot see
  through. Sound meta-programming treats this as "the programmer asserted
  purity" (the paper's framing: ``exclusive-cond`` encodes programmer
  domain knowledge), so it rates a warning, not an error.

Raising is treated as an effect: reordering tests changes *which* error a
program signals, or whether it signals one at all.
"""

from __future__ import annotations

import ast
import enum
from dataclasses import dataclass

from repro.core.srcloc import SourceLocation
from repro.scheme.datum import Char, Pair, SchemeVector, Symbol
from repro.scheme.syntax import Syntax, syntax_pylist

__all__ = [
    "Purity",
    "EffectReport",
    "scheme_effect",
    "python_effect",
]


class Purity(enum.IntEnum):
    """Three-valued purity judgement; ordering is "worseness"."""

    PURE = 0
    UNKNOWN = 1
    IMPURE = 2


@dataclass(frozen=True)
class EffectReport:
    """The verdict for one expression, with the first offending witness."""

    purity: Purity
    reason: str = ""
    location: SourceLocation | None = None

    @property
    def pure(self) -> bool:
        return self.purity is Purity.PURE


_PURE = EffectReport(Purity.PURE)


def _combine(reports: "list[EffectReport]") -> EffectReport:
    """The worst sub-verdict wins; the first witness of that rank is kept."""
    worst = _PURE
    for report in reports:
        if report.purity > worst.purity:
            worst = report
            if worst.purity is Purity.IMPURE:
                break
    return worst


# -- Scheme substrate ----------------------------------------------------------

#: Primitives that only inspect or construct values. Applying one of these
#: to pure arguments is pure.
SCHEME_PURE_PRIMITIVES: frozenset[str] = frozenset(
    """
    + - * / sqr abs min max quotient remainder modulo expt sqrt
    exact->inexact inexact->exact floor ceiling round truncate gcd lcm
    add1 sub1 zero? positive? negative? even? odd? number? integer?
    number->string string->number not boolean? procedure? eq? eqv? equal?
    < <= > >= =
    cons car cdr pair? null? list? list length append reverse list-ref
    list-tail last-pair list-copy iota memq memv member assq assv assoc
    take drop
    symbol? symbol->string string->symbol
    char? char->integer integer->char char=? char<? char-alphabetic?
    char-numeric? char-whitespace? char-upcase char-downcase
    string? string-length string-ref substring string-append string=?
    string<? string-upcase string-downcase string->list list->string
    string-contains? string-split string-join
    vector? make-vector vector vector-length vector-ref vector->list
    list->vector vector-copy vector-append
    make-eq-hashtable hashtable? hashtable-ref hashtable-contains?
    hashtable-size hashtable-keys
    values void key-in?
    """.split()
)

#: Primitives that mutate state, perform I/O, or raise: applying one is an
#: effect no matter the arguments.
SCHEME_IMPURE_PRIMITIVES: frozenset[str] = frozenset(
    """
    set-car! set-cdr! vector-set! vector-fill! hashtable-set!
    hashtable-delete! display write newline printf error assert gensym
    store-profile load-profile
    """.split()
)

#: Higher-order primitives: themselves effect-free, but they *call* their
#: procedure argument, which the analyzer cannot see through.
SCHEME_HIGHER_ORDER_PRIMITIVES: frozenset[str] = frozenset(
    """
    map for-each filter fold-left fold-right sort find remove partition
    for-all exists memp assp list-index filter-map apply curry vector-map
    vector-for-each call-with-values make-case-lambda
    """.split()
)

#: Special forms whose subexpressions simply combine.
_SCHEME_TRANSPARENT_FORMS: frozenset[str] = frozenset(
    {"if", "and", "or", "when", "unless", "begin", "not"}
)

_SCHEME_PURE_HEADS: frozenset[str] = frozenset({"quote", "lambda", "case-lambda",
                                                "syntax", "quasisyntax"})

_SCHEME_LET_FORMS: frozenset[str] = frozenset({"let", "let*", "letrec", "letrec*"})


def _loc(stx: Syntax) -> SourceLocation | None:
    if stx.srcloc.filename == "<unknown>":
        return None
    return stx.srcloc


def scheme_effect(stx: Syntax) -> EffectReport:
    """Conservative purity of one surface Scheme expression.

    Operates on *read* syntax (before expansion), because the reorderable
    constructs this feeds (``exclusive-cond`` clauses and friends) are
    macros that vanish during expansion.
    """
    datum = stx.datum
    if isinstance(datum, Symbol):
        return _PURE  # a variable reference
    if isinstance(datum, (int, float, str, bool, Char)) or datum is None:
        return _PURE
    if isinstance(datum, SchemeVector):
        return _combine(
            [scheme_effect(x) for x in datum if isinstance(x, Syntax)]
        )
    if not isinstance(datum, Pair):
        return _PURE  # NIL, fractions, other self-evaluating data

    try:
        items = syntax_pylist(stx)
    except TypeError:
        return EffectReport(
            Purity.UNKNOWN, "improper list form", _loc(stx)
        )
    if not items:
        return _PURE
    head = stx.head_symbol()
    if head is not None:
        name = head.name
        if name in _SCHEME_PURE_HEADS:
            return _PURE
        if name == "set!":
            return EffectReport(Purity.IMPURE, "set! mutates a variable", _loc(stx))
        if name in _SCHEME_TRANSPARENT_FORMS:
            return _combine([scheme_effect(x) for x in items[1:]])
        if name in _SCHEME_LET_FORMS and len(items) >= 2:
            parts: list[EffectReport] = []
            bindings = items[1]
            if bindings.is_pair() or bindings.is_null():
                try:
                    for binding in syntax_pylist(bindings):
                        pair = syntax_pylist(binding) if binding.is_pair() else []
                        if len(pair) == 2:
                            parts.append(scheme_effect(pair[1]))
                except TypeError:
                    parts.append(
                        EffectReport(Purity.UNKNOWN, "unrecognized binding form",
                                     _loc(bindings))
                    )
            parts.extend(scheme_effect(x) for x in items[2:])
            return _combine(parts)
        if name == "quasiquote":
            return _quasiquote_effect(items[1]) if len(items) > 1 else _PURE
        if name in SCHEME_IMPURE_PRIMITIVES:
            return EffectReport(
                Purity.IMPURE,
                f"calls effectful primitive {name!r}",
                _loc(stx),
            )
        if name in SCHEME_PURE_PRIMITIVES:
            return _combine([scheme_effect(x) for x in items[1:]])
        if name in SCHEME_HIGHER_ORDER_PRIMITIVES:
            args = _combine([scheme_effect(x) for x in items[1:]])
            if args.purity is Purity.IMPURE:
                return args
            return EffectReport(
                Purity.UNKNOWN,
                f"{name!r} calls a procedure the analyzer cannot see through",
                _loc(stx),
            )
        # An application of a user-defined (or unknown) procedure.
        args = _combine([scheme_effect(x) for x in items[1:]])
        if args.purity is Purity.IMPURE:
            return args
        return EffectReport(
            Purity.UNKNOWN,
            f"calls {name!r}, which cannot be proved effect-free",
            _loc(stx),
        )
    # Applying a computed procedure: conservative.
    parts = [scheme_effect(x) for x in items]
    worst = _combine(parts)
    if worst.purity is Purity.IMPURE:
        return worst
    return EffectReport(
        Purity.UNKNOWN, "applies a computed procedure", _loc(stx)
    )


def _quasiquote_effect(template: Syntax) -> EffectReport:
    """A quasiquote template is pure except for its unquoted holes."""
    head = template.head_symbol() if template.is_pair() else None
    if head is not None and head.name in ("unquote", "unquote-splicing"):
        items = syntax_pylist(template)
        return _combine([scheme_effect(x) for x in items[1:]])
    if template.is_pair():
        try:
            return _combine([_quasiquote_effect(x) for x in syntax_pylist(template)])
        except TypeError:
            return EffectReport(Purity.UNKNOWN, "improper quasiquote template",
                                _loc(template))
    return _PURE


# -- Python substrate ----------------------------------------------------------

#: Builtins that only inspect or construct values.
PYTHON_PURE_CALLS: frozenset[str] = frozenset(
    """
    abs all any ascii bin bool bytes callable chr complex dict divmod
    enumerate float format frozenset getattr hasattr hash hex id int
    isinstance issubclass len list max min oct ord pow range repr
    reversed round set slice sorted str sum tuple type zip
    """.split()
)

#: Builtins whose very invocation is an effect (I/O, dynamic execution,
#: mutation, or state advancement).
PYTHON_IMPURE_CALLS: frozenset[str] = frozenset(
    """
    print input open exec eval compile setattr delattr next breakpoint
    exit quit globals vars
    """.split()
)

#: Method names that conventionally mutate their receiver or do I/O.
PYTHON_MUTATING_METHODS: frozenset[str] = frozenset(
    """
    append extend insert remove pop clear sort reverse add discard
    update setdefault popitem write writelines read readline readlines
    seek flush close send put get acquire release
    """.split()
)


def _py_loc(node: ast.AST, filename: str) -> SourceLocation | None:
    from repro.pyast.srcloc import node_location

    return node_location(node, filename)


def python_effect(node: ast.AST, filename: str = "<python>") -> EffectReport:
    """Conservative purity of one Python expression AST.

    Attribute and subscript *loads* are treated as pure (descriptors and
    ``__getitem__`` could observeably misbehave, but flagging every
    ``self.x`` would drown the real findings); calls are where the
    analysis is strict.
    """
    if isinstance(node, (ast.Constant, ast.Name, ast.Lambda)):
        return _PURE
    if isinstance(node, ast.NamedExpr):
        return EffectReport(
            Purity.IMPURE, "assignment expression mutates a variable",
            _py_loc(node, filename),
        )
    if isinstance(node, (ast.Await, ast.Yield, ast.YieldFrom)):
        return EffectReport(
            Purity.IMPURE, "suspension point inside a reorderable test",
            _py_loc(node, filename),
        )
    if isinstance(node, ast.Call):
        arg_reports = [python_effect(a, filename) for a in node.args]
        arg_reports += [python_effect(kw.value, filename) for kw in node.keywords]
        args = _combine(arg_reports)
        if args.purity is Purity.IMPURE:
            return args
        func = node.func
        if isinstance(func, ast.Name):
            if func.id in PYTHON_IMPURE_CALLS:
                return EffectReport(
                    Purity.IMPURE,
                    f"calls effectful builtin {func.id!r}",
                    _py_loc(node, filename),
                )
            if func.id in PYTHON_PURE_CALLS:
                return args
            return EffectReport(
                Purity.UNKNOWN,
                f"calls {func.id!r}, which cannot be proved effect-free",
                _py_loc(node, filename),
            )
        if isinstance(func, ast.Attribute):
            if func.attr in PYTHON_MUTATING_METHODS:
                return EffectReport(
                    Purity.IMPURE,
                    f"calls mutating method .{func.attr}()",
                    _py_loc(node, filename),
                )
            return EffectReport(
                Purity.UNKNOWN,
                f"calls method .{func.attr}(), which cannot be proved effect-free",
                _py_loc(node, filename),
            )
        return EffectReport(
            Purity.UNKNOWN, "applies a computed callable", _py_loc(node, filename)
        )
    if isinstance(
        node,
        (
            ast.BoolOp, ast.BinOp, ast.UnaryOp, ast.Compare, ast.IfExp,
            ast.Tuple, ast.List, ast.Set, ast.Dict, ast.Starred,
            ast.Attribute, ast.Subscript, ast.Slice, ast.JoinedStr,
            ast.FormattedValue,
        ),
    ):
        return _combine(
            [python_effect(child, filename) for child in ast.iter_child_nodes(node)
             if isinstance(child, ast.expr)]
        )
    if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
        parts: list[EffectReport] = []
        for child in ast.walk(node):
            if isinstance(child, (ast.Call, ast.NamedExpr, ast.Await,
                                  ast.Yield, ast.YieldFrom)):
                parts.append(python_effect(child, filename))
        return _combine(parts)
    if isinstance(node, (ast.operator, ast.boolop, ast.unaryop, ast.cmpop,
                         ast.expr_context, ast.keyword, ast.comprehension)):
        return _PURE
    return EffectReport(
        Purity.UNKNOWN,
        f"unrecognized expression form {type(node).__name__}",
        _py_loc(node, filename),
    )
