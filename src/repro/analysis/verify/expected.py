"""Re-derive the interpreter-order instrumentation events of a program.

The compiled backend's contract pins *where* budget charges (``C()``) and
profile bumps (``H[i]()``) appear in the generated Python: one prologue
per evaluated core-form node, in the exact order the interpreter's
wrapper scheme would fire them (charge, then bump, then the node's
effect). ``pgmp verify`` needs that order *independently* of codegen —
re-running codegen and diffing its own output against itself would prove
nothing — so this module re-derives it by structural recursion over the
core forms alone.

The derivation exploits an invariant of the translation: although codegen
picks among several emission strategies per application (beta-inline,
direct call, guarded primitive, self-tail ``continue``, generic
``RT.app_at``), every strategy emits the *same* prologue sequence —
application node first, then the operator, then the arguments left to
right. The expected event stream therefore depends only on the core-form
tree, never on codegen's scope/purity analyses, which is exactly what
makes it an independent oracle.

One event is recorded per ``node_prologue`` the translation performs:

* for **budget** flavors, every event is one ``C()`` charge — the event
  count is the expected charge count;
* for **instr** flavors, events whose node carries a profile point are
  ``H[i]()`` hook sites, in order — the expected ``hook_sites`` list.
"""

from __future__ import annotations

from repro.core.profile_point import ProfilePoint
from repro.scheme.compile_py.codegen import UnsupportedFormError, _inlinable_beta
from repro.scheme.core_forms import (
    App,
    Begin,
    Const,
    CoreExpr,
    Define,
    If,
    Lambda,
    Program,
    Ref,
    SetBang,
)

__all__ = ["ExpectedEvents", "expected_events"]


class ExpectedEvents:
    """The interpreter-order prologue events of one expanded program."""

    def __init__(self, events: list[tuple[ProfilePoint | None, bool]]) -> None:
        #: one ``(profile point or None, node is an application)`` per
        #: node prologue, in emission order
        self.events = events

    @property
    def charge_count(self) -> int:
        """How many ``C()`` charges a budget-flavored artifact must emit."""
        return len(self.events)

    @property
    def hook_sites(self) -> list[tuple[ProfilePoint, bool]]:
        """The ``hook_sites`` an instr-flavored artifact must record."""
        return [
            (point, is_app) for point, is_app in self.events if point is not None
        ]


def expected_events(program: Program) -> ExpectedEvents:
    """Walk ``program`` in the translation's traversal order.

    Raises :class:`UnsupportedFormError` for programs the backend cannot
    translate (those artifacts are interpreter fallbacks — PGMP506 —
    and carry no generated code to validate).
    """
    events: list[tuple[ProfilePoint | None, bool]] = []

    def prologue(e: CoreExpr) -> None:
        events.append((e.profile_point, isinstance(e, App)))

    def walk(e: CoreExpr) -> None:
        if isinstance(e, (Const, Ref)):
            prologue(e)
        elif isinstance(e, SetBang):
            prologue(e)
            walk(e.expr)
        elif isinstance(e, If):
            # Both branches are compiled (and prologued) unconditionally;
            # at run time only the taken branch fires its events.
            prologue(e)
            walk(e.test)
            walk(e.then)
            walk(e.otherwise)
        elif isinstance(e, Begin):
            prologue(e)
            for sub in e.exprs:
                walk(sub)
        elif isinstance(e, Lambda):
            prologue(e)
            for body_expr in e.body:
                walk(body_expr)
        elif isinstance(e, App):
            prologue(e)
            if _inlinable_beta(e):
                # Beta-inlined let: the lambda never becomes a function,
                # but its prologue still fires before the arguments.
                prologue(e.fn)
                for arg in e.args:
                    walk(arg)
                assert isinstance(e.fn, Lambda)
                for body_expr in e.fn.body:
                    walk(body_expr)
            else:
                # Operator before operands — every emission strategy
                # (direct, primitive, self-tail, generic) preserves the
                # interpreter's lookup-then-evaluate order.
                walk(e.fn)
                for arg in e.args:
                    walk(arg)
        elif isinstance(e, Define):
            raise UnsupportedFormError("nested define")
        else:
            raise UnsupportedFormError(f"core form {type(e).__name__}")

    for form in program.forms:
        if isinstance(form, Define):
            walk(form.expr)
        else:
            walk(form)
    return ExpectedEvents(events)
