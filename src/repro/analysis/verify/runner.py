"""File- and cache-level driver for ``pgmp verify``.

Mirrors :mod:`repro.analysis.runner` (the ``pgmp lint`` driver), but
instead of analyzing source it *compiles* each program through the
backend and translation-validates every artifact flavor:

* Scheme files expand + compile in a throwaway
  :class:`~repro.scheme.pipeline.SchemeSystem` (same library loading as
  lint);
* ``.py`` files are scanned for embedded Scheme programs, each verified
  under a ``file.py#L<line>`` pseudo-filename;
* cache directories are verified module-by-module, checksums first —
  a tampered artifact body is refused *before* it is ever executed.
"""

from __future__ import annotations

import ast
import os
from collections.abc import Iterable, Sequence
from typing import cast

from repro.analysis.diagnostics import AnalysisReport
from repro.analysis.pyast_passes import _embedded_scheme_strings
from repro.analysis.runner import _guess_kind, expand_source_paths
from repro.analysis.verify.passes import PASS_NAME, verify_artifact
from repro.core.database import ProfileDatabase
from repro.core.srcloc import SourceLocation
from repro.scheme.compile_py.artifact import (
    _META_MARKER,
    CompiledArtifact,
    artifact_checksum,
    compile_program,
)
from repro.scheme.compile_py.codegen import CODEGEN_VERSION
from repro.scheme.core_forms import Program

__all__ = [
    "ALL_FLAVORS",
    "verify_cache_dir",
    "verify_path",
    "verify_paths",
    "verify_program",
    "verify_source",
]

#: Every artifact flavor the pipeline can request.
ALL_FLAVORS: tuple[str, ...] = ("plain", "instr", "budget", "instr+budget")


def verify_program(
    program: Program,
    filename: str = "<program>",
    flavors: Sequence[str] = ALL_FLAVORS,
) -> AnalysisReport:
    """Translation-validate every flavor of one expanded program.

    Reuses artifacts already memoized on ``program.artifacts`` (the
    pipeline's per-flavor cache) — so a poisoned in-memory artifact is
    *verified as-is*, not silently recompiled into innocence — and
    memoizes any flavor it has to compile itself.
    """
    report = AnalysisReport()
    for flavor in flavors:
        artifact = program.artifacts.get(flavor)
        if artifact is None:
            artifact = compile_program(program, filename, flavor)
            program.artifacts[flavor] = artifact
        report.extend(verify_artifact(artifact, program=program, filename=filename))
    return report


def _verify_unit(
    report: AnalysisReport,
    source: str,
    filename: str,
    library_sources: Sequence[tuple[str, str]],
    db: ProfileDatabase | None,
    policy: str,
) -> None:
    from repro.scheme.pipeline import SchemeSystem

    system = SchemeSystem(profile_db=db, policy=policy)
    try:
        for lib_source, lib_filename in library_sources:
            system.load_library(lib_source, lib_filename)
        program = system.compile(source, filename)
    except Exception as exc:
        report.emit(
            "PGMP001",
            f"program could not be expanded; artifact verification "
            f"skipped ({type(exc).__name__}: {exc})",
            SourceLocation(filename, 0, 0),
            PASS_NAME,
        )
        return
    report.extend(verify_program(program, filename))


def verify_source(
    source: str,
    filename: str,
    kind: str | None = None,
    library_sources: Sequence[tuple[str, str]] = (),
    db: ProfileDatabase | None = None,
    policy: str = "strict",
) -> AnalysisReport:
    """Verify one program given as text (``kind`` as in ``lint_source``)."""
    if kind is None:
        kind = _guess_kind(filename, source)
    report = AnalysisReport()
    if kind == "python":
        try:
            tree = ast.parse(source, filename)
        except SyntaxError as exc:
            report.emit(
                "PGMP001",
                f"could not parse Python source: {exc}",
                SourceLocation(filename, 0, 0),
                PASS_NAME,
            )
            return report
        for text, constant in _embedded_scheme_strings(tree):
            pseudo = f"{filename}#L{constant.lineno}"
            _verify_unit(report, text, pseudo, library_sources, db, policy)
        return report
    _verify_unit(report, source, filename, library_sources, db, policy)
    return report


def verify_path(
    path: str | os.PathLike[str],
    library_sources: Sequence[tuple[str, str]] = (),
    db: ProfileDatabase | None = None,
    policy: str = "strict",
) -> AnalysisReport:
    """Verify one file from disk."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    return verify_source(
        source,
        str(path),
        library_sources=library_sources,
        db=db,
        policy=policy,
    )


def verify_paths(
    paths: Iterable[str | os.PathLike[str]],
    library_sources: Sequence[tuple[str, str]] = (),
    db: ProfileDatabase | None = None,
    policy: str = "strict",
) -> AnalysisReport:
    """Verify several files, concatenating diagnostics in path order.

    Directories recurse over their ``*.py`` and Scheme files (see
    :func:`repro.analysis.runner.expand_source_paths`).
    """
    combined = AnalysisReport()
    for path in expand_source_paths(paths):
        combined.extend(
            verify_path(
                path, library_sources=library_sources, db=db, policy=policy
            )
        )
    return combined


def _verify_cached_module(text: str, filename: str) -> AnalysisReport:
    """Verify one on-disk cache module without trusting its loader.

    Unlike ``load_artifact_source`` this checks the checksum *before*
    executing anything: the metadata literal is parsed with
    ``ast.literal_eval``, so a module whose body was modified after it
    was written is rejected without ever running the tampered code.
    """
    from repro.scheme.compile_py.artifact import _exec_module

    report = AnalysisReport()
    anchor = SourceLocation(filename, 0, 0)
    marker = text.rfind(_META_MARKER)
    if marker < 0:
        report.emit(
            "PGMP503",
            "not a pgmp artifact module (no __pgmp_meta__ literal)",
            anchor,
            PASS_NAME,
        )
        return report
    body = text[: marker + 1]  # include the trailing newline
    try:
        meta = ast.literal_eval(text[marker + len(_META_MARKER) :].strip())
        if not isinstance(meta, dict):
            raise ValueError("metadata is not a dict")
    except Exception as exc:
        report.emit(
            "PGMP503",
            f"unreadable __pgmp_meta__ literal: {exc}",
            anchor,
            PASS_NAME,
        )
        return report
    if meta.get("checksum") != artifact_checksum(body):
        report.emit(
            "PGMP503",
            "artifact checksum mismatch: module body was modified after "
            "it was written (refusing to execute it)",
            anchor,
            PASS_NAME,
        )
        return report
    key = meta.get("key")
    flavor = key[2] if isinstance(key, list) and len(key) == 4 else "plain"
    version = key[3] if isinstance(key, list) and len(key) == 4 else CODEGEN_VERSION
    try:
        namespace = _exec_module(text, filename)
    except Exception as exc:
        report.emit(
            "PGMP503",
            f"artifact module failed to execute: {type(exc).__name__}: {exc}",
            anchor,
            PASS_NAME,
        )
        return report
    artifact = CompiledArtifact(
        python_source=text,
        filename=filename,
        flavor=str(flavor),
        hook_sites=[],
        expansion_text=str(meta.get("expansion_text", "")),
        compile_output=str(meta.get("compile_output", "")),
        key=cast(
            "tuple[str, str, str, int] | None",
            tuple(key) if isinstance(key, list) and len(key) == 4 else None,
        ),
        program=None,
        main=namespace.get("_pgmp_main"),
        unsupported_reason=str(meta.get("unsupported_reason", "")),
        codegen_version=int(version),
        charge_count=int(meta.get("charge_count", -1)),
    )
    if artifact.codegen_version != CODEGEN_VERSION:
        report.emit(
            "PGMP503",
            f"artifact was generated by codegen version "
            f"{artifact.codegen_version}, current is {CODEGEN_VERSION}; "
            "its invariants cannot be validated",
            anchor,
            PASS_NAME,
        )
        return report
    report.extend(verify_artifact(artifact, filename=filename))
    return report


def verify_cache_dir(directory: str | os.PathLike[str]) -> AnalysisReport:
    """Verify every artifact module in an ``ArtifactCache`` directory."""
    report = AnalysisReport()
    root = os.fspath(directory)
    names = sorted(
        name
        for name in os.listdir(root)
        if name.endswith(".py") and not name.startswith(".")
    )
    for name in names:
        path = os.path.join(root, name)
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
        report.extend(_verify_cached_module(text, path))
    return report
