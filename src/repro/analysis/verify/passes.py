"""Translation-validation passes over one compiled artifact (PGMP5xx).

Given a :class:`~repro.scheme.compile_py.artifact.CompiledArtifact`,
:func:`verify_artifact` statically checks the generated Python AST
against the properties the compiled backend's observational-equality
contract rests on — without executing the artifact:

* **PGMP501** — ``H[i]()`` instrumentation sites appear exactly once per
  recorded hook site, with sequential indices in textual order, and
  (when the expanded program is available) the recorded sites match the
  interpreter-order sites re-derived from the core forms;
* **PGMP502** — ``C()`` step-budget charges are present in the expected
  count for budget flavors, absent otherwise, and each profile bump is
  immediately preceded by its charge (the interpreter's charge-then-bump
  order);
* **PGMP503** — every name the generated module reads resolves through
  the lexical environment codegen established (function scopes, the
  runtime import, a tiny builtin whitelist), and a runnable artifact
  actually defines the ``_pgmp_main(GB, H, C)`` entry point;
* **PGMP504** — parameter rebinding before a ``continue`` in a
  self-tail-call ``while`` loop is a single parallel (tuple) assignment,
  never a sequential one that could read an already-clobbered parameter;
* **PGMP505** — every inlined primitive fast path (int arithmetic and
  comparisons, ``car``/``cdr`` field access) sits under an identity
  guard (``... is RT.P_x``) so a redefined primitive falls back to the
  generic call;
* **PGMP506** (info) — artifacts the backend could not translate are
  enumerated with their fallback reason instead of failing silently.

All diagnostics use ``pass_name="verify"`` and anchor to the artifact's
filename, with generated-source line numbers where the finding has one.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.diagnostics import AnalysisReport, Severity
from repro.analysis.verify.expected import ExpectedEvents, expected_events
from repro.core.srcloc import SourceLocation
from repro.scheme.compile_py.artifact import CompiledArtifact
from repro.scheme.core_forms import Program

__all__ = ["PASS_NAME", "verify_artifact"]

PASS_NAME = "verify"

#: Builtins the generated code is allowed to read (arity checks, inline
#: type guards, the recursion backstop); anything else outside the
#: module/function scopes is a PGMP503 finding.
_ALLOWED_BUILTINS = frozenset({"len", "type", "int", "RecursionError"})

_ARITH_OPS = (ast.Add, ast.Sub, ast.Mult)
_ORDER_OPS = (ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq, ast.NotEq)


def _anchor(filename: str, node: ast.AST | None = None) -> SourceLocation:
    line = getattr(node, "lineno", 0) if node is not None else 0
    column = getattr(node, "col_offset", 0) if node is not None else 0
    return SourceLocation(filename, 0, 0, line=line, column=column)


# -- AST helpers -------------------------------------------------------------


def _hook_index(stmt: ast.stmt) -> int | None:
    """The ``i`` of an ``H[i]()`` statement, or None."""
    if not isinstance(stmt, ast.Expr) or not isinstance(stmt.value, ast.Call):
        return None
    call = stmt.value
    if call.args or call.keywords:
        return None
    func = call.func
    if (
        isinstance(func, ast.Subscript)
        and isinstance(func.value, ast.Name)
        and func.value.id == "H"
        and isinstance(func.slice, ast.Constant)
        and isinstance(func.slice.value, int)
    ):
        return func.slice.value
    return None


def _is_charge(stmt: ast.stmt) -> bool:
    """Whether ``stmt`` is a bare ``C()`` budget charge."""
    return (
        isinstance(stmt, ast.Expr)
        and isinstance(stmt.value, ast.Call)
        and isinstance(stmt.value.func, ast.Name)
        and stmt.value.func.id == "C"
        and not stmt.value.args
        and not stmt.value.keywords
    )


def _ordered_statements(stmts: list[ast.stmt]) -> Iterator[ast.stmt]:
    """Every statement, in source (line) order."""
    for stmt in stmts:
        yield stmt
        for field in ("body", "orelse", "finalbody"):
            sub = getattr(stmt, field, None)
            if sub:
                yield from _ordered_statements(sub)
        for handler in getattr(stmt, "handlers", None) or []:
            yield from _ordered_statements(handler.body)


def _statement_lists(stmts: list[ast.stmt]) -> Iterator[list[ast.stmt]]:
    """Every block (list of sibling statements), outermost first."""
    yield stmts
    for stmt in stmts:
        for field in ("body", "orelse", "finalbody"):
            sub = getattr(stmt, field, None)
            if sub:
                yield from _statement_lists(sub)
        for handler in getattr(stmt, "handlers", None) or []:
            yield from _statement_lists(handler.body)


# -- PGMP501: instrumentation-site order -------------------------------------


def _check_hooks(
    report: AnalysisReport,
    tree: ast.Module,
    artifact: CompiledArtifact,
    expected: ExpectedEvents | None,
    prefix: str,
    filename: str,
) -> None:
    hooks = [
        (stmt, index)
        for stmt in _ordered_statements(tree.body)
        if (index := _hook_index(stmt)) is not None
    ]
    instrumented = "instr" in artifact.flavor
    if not instrumented:
        if hooks:
            stmt, index = hooks[0]
            report.emit(
                "PGMP501",
                prefix + f"non-instrumented flavor emits hook call H[{index}]",
                _anchor(filename, stmt),
                PASS_NAME,
            )
        return
    for position, (stmt, index) in enumerate(hooks):
        if index != position:
            report.emit(
                "PGMP501",
                prefix
                + f"hook call #{position} in textual order has index "
                f"{index}; emission order must match traversal order",
                _anchor(filename, stmt),
                PASS_NAME,
            )
            return
    if len(hooks) != len(artifact.hook_sites):
        report.emit(
            "PGMP501",
            prefix
            + f"generated source contains {len(hooks)} hook call(s) but the "
            f"artifact records {len(artifact.hook_sites)} hook site(s)",
            _anchor(filename),
            PASS_NAME,
        )
        return
    if expected is None:
        return
    derived = expected.hook_sites
    recorded = [tuple(site) for site in artifact.hook_sites]
    if len(recorded) != len(derived):
        report.emit(
            "PGMP501",
            prefix
            + f"artifact records {len(recorded)} hook site(s) but the "
            f"interpreter traversal produces {len(derived)}",
            _anchor(filename),
            PASS_NAME,
        )
        return
    for index, (got, want) in enumerate(zip(recorded, derived)):
        if got != want:
            report.emit(
                "PGMP501",
                prefix
                + f"hook site #{index} diverges from interpreter order: "
                f"recorded point {got[0]} (is_app={got[1]}), expected "
                f"{want[0]} (is_app={want[1]})",
                _anchor(filename),
                PASS_NAME,
            )
            return


# -- PGMP502: step-budget charge sites ---------------------------------------


def _check_charges(
    report: AnalysisReport,
    tree: ast.Module,
    artifact: CompiledArtifact,
    expected: ExpectedEvents | None,
    prefix: str,
    filename: str,
) -> None:
    charges = [
        stmt for stmt in _ordered_statements(tree.body) if _is_charge(stmt)
    ]
    budgeted = "budget" in artifact.flavor
    if not budgeted:
        if charges:
            report.emit(
                "PGMP502",
                prefix + "non-budget flavor emits a C() charge",
                _anchor(filename, charges[0]),
                PASS_NAME,
            )
        return
    if artifact.charge_count >= 0 and len(charges) != artifact.charge_count:
        report.emit(
            "PGMP502",
            prefix
            + f"generated source contains {len(charges)} C() charge(s) but "
            f"codegen recorded {artifact.charge_count}",
            _anchor(filename),
            PASS_NAME,
        )
        return
    if expected is not None and len(charges) != expected.charge_count:
        report.emit(
            "PGMP502",
            prefix
            + f"generated source contains {len(charges)} C() charge(s) but "
            f"the interpreter traversal evaluates {expected.charge_count} "
            f"node(s)",
            _anchor(filename),
            PASS_NAME,
        )
        return
    if "instr" not in artifact.flavor:
        return
    # Charge-then-bump: in instr+budget artifacts every hook call must be
    # immediately preceded by its node's charge, as sibling statements.
    for block in _statement_lists(tree.body):
        for position, stmt in enumerate(block):
            if _hook_index(stmt) is None:
                continue
            if position == 0 or not _is_charge(block[position - 1]):
                report.emit(
                    "PGMP502",
                    prefix
                    + "hook call is not immediately preceded by its C() "
                    "charge (interpreter order is charge, then bump)",
                    _anchor(filename, stmt),
                    PASS_NAME,
                )
                return


# -- PGMP503: lexical environment --------------------------------------------


def _check_entry_point(
    report: AnalysisReport, tree: ast.Module, prefix: str, filename: str
) -> bool:
    for stmt in tree.body:
        if isinstance(stmt, ast.FunctionDef) and stmt.name == "_pgmp_main":
            params = [arg.arg for arg in stmt.args.args]
            if params != ["GB", "H", "C"] or stmt.args.vararg is not None:
                report.emit(
                    "PGMP503",
                    prefix
                    + f"_pgmp_main has parameters ({', '.join(params)}); "
                    "the execution contract requires (GB, H, C)",
                    _anchor(filename, stmt),
                    PASS_NAME,
                )
                return False
            return True
    report.emit(
        "PGMP503",
        prefix
        + "runnable artifact's source defines no _pgmp_main(GB, H, C) "
        "entry point — the callable cannot be the code it claims to be",
        _anchor(filename),
        PASS_NAME,
    )
    return False


def _local_names(fn: ast.FunctionDef) -> set[str]:
    """Names bound inside ``fn`` (excluding nested function bodies)."""
    names = {arg.arg for arg in fn.args.args}
    if fn.args.vararg is not None:
        names.add(fn.args.vararg.arg)
    stack: list[ast.AST] = list(fn.body)
    while stack:
        node = stack.pop()
        if isinstance(node, ast.FunctionDef):
            names.add(node.name)
            continue  # its body is a separate scope
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            names.add(node.id)
        if isinstance(node, ast.ExceptHandler) and node.name:
            names.add(node.name)
        stack.extend(ast.iter_child_nodes(node))
    return names


def _check_scope(
    report: AnalysisReport, tree: ast.Module, prefix: str, filename: str
) -> None:
    module_names: set[str] = set()
    for stmt in tree.body:
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                module_names.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(stmt, ast.ImportFrom):
            for alias in stmt.names:
                module_names.add(alias.asname or alias.name)
        elif isinstance(stmt, ast.FunctionDef):
            module_names.add(stmt.name)
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                for node in ast.walk(target):
                    if isinstance(node, ast.Name):
                        module_names.add(node.id)

    def visit(fn: ast.FunctionDef, enclosing: tuple[set[str], ...]) -> bool:
        frames = enclosing + (_local_names(fn),)
        stack: list[ast.AST] = list(fn.body)
        while stack:
            node = stack.pop()
            if isinstance(node, ast.FunctionDef):
                if not visit(node, frames):
                    return False
                continue
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                name = node.id
                if (
                    not any(name in frame for frame in frames)
                    and name not in module_names
                    and name not in _ALLOWED_BUILTINS
                ):
                    report.emit(
                        "PGMP503",
                        prefix
                        + f"generated code reads {name!r}, which is bound in "
                        "no enclosing scope of the core-form lexical "
                        "environment",
                        _anchor(filename, node),
                        PASS_NAME,
                    )
                    return False
            stack.extend(ast.iter_child_nodes(node))
        return True

    for stmt in tree.body:
        if isinstance(stmt, ast.FunctionDef):
            if not visit(stmt, ()):
                return


# -- PGMP504: self-tail-call loop rebinding ----------------------------------


def _function_params(fn: ast.FunctionDef) -> set[str]:
    """The loop variables of a generated function: names bound from the
    ``*_a`` argument tuple at the top of the body."""
    params: set[str] = set()
    for stmt in fn.body:
        if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
            continue
        target = stmt.targets[0]
        if not isinstance(target, ast.Name):
            continue
        if any(
            isinstance(node, ast.Name) and node.id == "_a"
            for node in ast.walk(stmt.value)
        ):
            params.add(target.id)
    return params


def _is_param_assign(stmt: ast.stmt, params: set[str]) -> bool:
    if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
        return False
    target = stmt.targets[0]
    if isinstance(target, ast.Name):
        return target.id in params
    if isinstance(target, ast.Tuple):
        return all(isinstance(elt, ast.Name) for elt in target.elts) and any(
            elt.id in params
            for elt in target.elts
            if isinstance(elt, ast.Name)
        )
    return False


def _check_tail_loops(
    report: AnalysisReport, tree: ast.Module, prefix: str, filename: str
) -> None:
    for fn in (n for n in ast.walk(tree) if isinstance(n, ast.FunctionDef)):
        params = _function_params(fn)
        loops = [
            node
            for node in ast.walk(fn)
            if isinstance(node, ast.While)
            and isinstance(node.test, ast.Constant)
            and node.test.value is True
        ]
        for loop in loops:
            for block in _statement_lists(loop.body):
                for position, stmt in enumerate(block):
                    if not isinstance(stmt, ast.Continue):
                        continue
                    if not _check_continue(
                        report, block, position, params, prefix, filename
                    ):
                        return


def _check_continue(
    report: AnalysisReport,
    block: list[ast.stmt],
    position: int,
    params: set[str],
    prefix: str,
    filename: str,
) -> bool:
    run: list[ast.Assign] = []
    index = position - 1
    while index >= 0 and _is_param_assign(block[index], params):
        assign = block[index]
        assert isinstance(assign, ast.Assign)
        run.append(assign)
        index -= 1
    if len(run) > 1:
        report.emit(
            "PGMP504",
            prefix
            + f"self-tail-call rebinds loop parameters in {len(run)} "
            "sequential assignments before continue; a later assignment "
            "can read an already-rebound parameter",
            _anchor(filename, run[0]),
            PASS_NAME,
        )
        return False
    if not run:
        return True  # zero-parameter loop: bare continue is fine
    assign = run[0]
    target = assign.targets[0]
    if isinstance(target, ast.Name):
        return True  # one variable: nothing to clobber
    assert isinstance(target, ast.Tuple)
    value = assign.value
    if not isinstance(value, ast.Tuple) or len(value.elts) != len(target.elts):
        report.emit(
            "PGMP504",
            prefix
            + "self-tail-call rebinding is not a parallel tuple assignment "
            "of matching arity",
            _anchor(filename, assign),
            PASS_NAME,
        )
        return False
    names = [elt.id for elt in target.elts if isinstance(elt, ast.Name)]
    if len(set(names)) != len(target.elts):
        report.emit(
            "PGMP504",
            prefix
            + "self-tail-call rebinding assigns the same loop parameter "
            "twice in one tuple assignment",
            _anchor(filename, assign),
            PASS_NAME,
        )
        return False
    return True


# -- PGMP505: inline-primitive identity guards -------------------------------


def _guard_kinds(test: ast.expr) -> tuple[bool, bool]:
    """``(has identity guard, has dynamic type test)`` for an if-test."""
    identity = False
    typed = False
    for node in ast.walk(test):
        if (
            isinstance(node, ast.Compare)
            and len(node.ops) == 1
            and isinstance(node.ops[0], ast.Is)
            and isinstance(node.comparators[0], ast.Attribute)
            and isinstance(node.comparators[0].value, ast.Name)
            and node.comparators[0].value.id == "RT"
            and node.comparators[0].attr.startswith("P_")
        ):
            identity = True
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "type"
        ):
            typed = True
    return identity, typed


def _is_arity_check(node: ast.Compare) -> bool:
    left = node.left
    return (
        isinstance(left, ast.Call)
        and isinstance(left.func, ast.Name)
        and left.func.id == "len"
    )


def _check_inline_guards(
    report: AnalysisReport, tree: ast.Module, prefix: str, filename: str
) -> None:
    def visit(node: ast.AST, identity: bool, typed: bool) -> bool:
        if isinstance(node, ast.If):
            guard_identity, guard_typed = _guard_kinds(node.test)
            if not visit(node.test, identity, typed):
                return False
            for stmt in node.body:
                if not visit(
                    stmt, identity or guard_identity, typed or guard_typed
                ):
                    return False
            # The else branch is the generic fallback: the guard does NOT
            # cover it, so fast ops there are findings.
            for stmt in node.orelse:
                if not visit(stmt, identity, typed):
                    return False
            return True
        if (
            isinstance(node, ast.BinOp)
            and isinstance(node.op, _ARITH_OPS)
            and not (identity and typed)
        ):
            report.emit(
                "PGMP505",
                prefix
                + "inlined arithmetic fast path is not protected by an "
                "identity guard plus int type test",
                _anchor(filename, node),
                PASS_NAME,
            )
            return False
        if (
            isinstance(node, ast.Compare)
            and any(isinstance(op, _ORDER_OPS) for op in node.ops)
            and not _is_arity_check(node)
            and not (identity and typed)
        ):
            report.emit(
                "PGMP505",
                prefix
                + "inlined comparison fast path is not protected by an "
                "identity guard plus int type test",
                _anchor(filename, node),
                PASS_NAME,
            )
            return False
        if (
            isinstance(node, ast.Attribute)
            and node.attr in ("car", "cdr")
            and isinstance(node.ctx, ast.Load)
            and not (isinstance(node.value, ast.Name) and node.value.id == "RT")
            and not identity
        ):
            report.emit(
                "PGMP505",
                prefix
                + f"inlined .{node.attr} field access is not protected by "
                "a primitive identity guard",
                _anchor(filename, node),
                PASS_NAME,
            )
            return False
        for child in ast.iter_child_nodes(node):
            if not visit(child, identity, typed):
                return False
        return True

    visit(tree, False, False)


# -- the per-artifact entry point --------------------------------------------


def verify_artifact(
    artifact: CompiledArtifact,
    program: Program | None = None,
    filename: str | None = None,
) -> AnalysisReport:
    """Statically validate one compiled artifact (PGMP5xx diagnostics).

    ``program`` is the expanded program the artifact claims to implement;
    it defaults to the artifact's own carried Program. Without one (e.g.
    a disk-loaded cache entry) the expected-order comparison degrades to
    the source-level invariants, which still catch swapped indices,
    missing charges, scope escapes, unsafe rebinding, and unguarded fast
    paths.
    """
    report = AnalysisReport()
    name = filename if filename is not None else artifact.filename
    prefix = f"artifact[{artifact.flavor}]: "
    if not artifact.runnable:
        report.emit(
            "PGMP506",
            prefix
            + "interpreter fallback: "
            + (artifact.unsupported_reason or "artifact is expansion-only"),
            _anchor(name),
            PASS_NAME,
        )
        return report
    source = artifact.python_source
    if not source:
        # Mirrors CompiledArtifact.self_check: instr flavors legitimately
        # drop their source; a plain/budget runnable artifact must not.
        if "instr" not in artifact.flavor:
            report.emit(
                "PGMP503",
                prefix
                + "runnable artifact carries no generated source to verify",
                _anchor(name),
                PASS_NAME,
            )
        return report
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        report.emit(
            "PGMP503",
            prefix + f"generated source does not parse: {exc}",
            _anchor(name),
            PASS_NAME,
        )
        return report
    target = program if program is not None else artifact.program
    expected: ExpectedEvents | None = None
    if target is not None:
        try:
            expected = expected_events(target)
        except Exception as exc:
            report.emit(
                "PGMP501",
                prefix
                + f"could not re-derive expected instrumentation sites: "
                f"{type(exc).__name__}: {exc}",
                _anchor(name),
                PASS_NAME,
                severity=Severity.WARNING,
            )
    _check_entry_point(report, tree, prefix, name)
    _check_hooks(report, tree, artifact, expected, prefix, name)
    _check_charges(report, tree, artifact, expected, prefix, name)
    _check_scope(report, tree, prefix, name)
    _check_tail_loops(report, tree, prefix, name)
    _check_inline_guards(report, tree, prefix, name)
    return report
