"""Static translation validation of compiled artifacts (``pgmp verify``).

The PGMP5xx pass family: :func:`verify_artifact` checks one
:class:`~repro.scheme.compile_py.artifact.CompiledArtifact` against the
core forms it claims to implement; the runner-level entry points verify
whole programs, files, and artifact-cache directories. See
``docs/analysis.md`` for the code catalog and rationale.
"""

from repro.analysis.verify.expected import ExpectedEvents, expected_events
from repro.analysis.verify.passes import PASS_NAME, verify_artifact
from repro.analysis.verify.runner import (
    ALL_FLAVORS,
    verify_cache_dir,
    verify_path,
    verify_paths,
    verify_program,
    verify_source,
)

__all__ = [
    "ALL_FLAVORS",
    "ExpectedEvents",
    "PASS_NAME",
    "expected_events",
    "verify_artifact",
    "verify_cache_dir",
    "verify_path",
    "verify_paths",
    "verify_program",
    "verify_source",
]
