"""Static soundness and profile-hygiene analysis (``pgmp lint``).

The paper's meta-program optimizers are only sound under assumptions they
never check:

* §6.1 — ``exclusive-cond`` (and everything layered on it) may *reorder*
  clauses, which is only semantics-preserving when the clause tests are
  effect-free and mutually exclusive;
* §3.1 — every expression carries *at most one* profile point, and two
  expressions share a counter only when that is intended;
* §4.1 — freshly manufactured profile points must be generated
  deterministically, or the next compile reads back someone else's data;
* §3.3/§4.4 — a loaded profile is only useful while its points still map
  to live source locations.

This package turns those implicit contracts into machine-checked
diagnostics over *both* substrates: the Scheme syntax-object substrate
(:mod:`repro.scheme`) and the Python-AST substrate (:mod:`repro.pyast`).

Entry points:

* :func:`repro.analysis.runner.lint_path` — file-level analysis behind the
  ``pgmp lint`` CLI subcommand;
* :meth:`repro.scheme.pipeline.SchemeSystem.analyze` and
  :meth:`repro.pyast.system.PyAstSystem.analyze` — opt-in programmatic
  analysis against a system's ambient profile database;
* :mod:`repro.analysis.verify` — static translation validation of
  compiled artifacts (the PGMP5xx family behind ``pgmp verify``).
"""

from __future__ import annotations

from repro.analysis.diagnostics import (
    CODE_CATALOG,
    AnalysisReport,
    Diagnostic,
    Severity,
    render_json,
    render_text,
)
from repro.analysis.purity import EffectReport, Purity
from repro.analysis.pyast_passes import analyze_python_function, analyze_python_source
from repro.analysis.runner import (
    expand_source_paths,
    lint_path,
    lint_paths,
    lint_source,
)
from repro.analysis.scheme_passes import analyze_scheme_source
from repro.analysis.verify import (
    verify_artifact,
    verify_cache_dir,
    verify_path,
    verify_paths,
    verify_program,
    verify_source,
)

__all__ = [
    "AnalysisReport",
    "CODE_CATALOG",
    "Diagnostic",
    "EffectReport",
    "Purity",
    "Severity",
    "analyze_python_function",
    "analyze_python_source",
    "analyze_scheme_source",
    "expand_source_paths",
    "lint_path",
    "lint_paths",
    "lint_source",
    "render_json",
    "render_text",
    "verify_artifact",
    "verify_cache_dir",
    "verify_path",
    "verify_paths",
    "verify_program",
    "verify_source",
]
