"""PGMP4xx — staleness checks for loaded profile databases.

A profile database is only useful while (a) the source it was collected
against has not changed (checked here via the format-v2 per-data-set
fingerprints) and (b) its profile points still map to *live* source
locations — expressions that the current program would actually
re-associate with a counter. Both substrates feed this module the same
inputs: a database and a map from filename to the set of live profile-point
keys that file can produce today (implicit location points plus
deterministically re-manufactured generated points).
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.analysis.diagnostics import AnalysisReport
from repro.core.database import ProfileDatabase, source_fingerprint
from repro.core.profile_point import GENERATED_MARKER

__all__ = ["check_staleness"]

PASS_NAME = "staleness"


def _base_filename(filename: str) -> str:
    """Strip the deterministic generated-point suffix (``…%pgmpN``)."""
    return filename.split(GENERATED_MARKER, 1)[0]


def check_staleness(
    report: AnalysisReport,
    db: ProfileDatabase,
    sources: Mapping[str, str],
    live_points: Mapping[str, frozenset[str] | set[str]],
    include_generated: bool = True,
) -> None:
    """Emit PGMP401/PGMP402 for ``db`` against the current ``sources``.

    ``live_points`` maps each analyzed filename to the set of profile-point
    *keys* that file can still produce; database points attributed to an
    analyzed file but absent from its live set are dead (PGMP401). Points
    from files the caller did not analyze are left alone — the analyzer
    only judges what it can see. Fingerprint mismatches (PGMP402) reuse the
    format-v2 staleness machinery of :mod:`repro.core.database`.

    Callers that could not *expand* the analyzed file pass
    ``include_generated=False``: without an expansion the deterministically
    re-manufactured generated points are unknowable, so only implicit
    (location-derived) points are judged for liveness.
    """
    # PGMP402 — data sets collected against source that has since changed.
    current = {name: source_fingerprint(text) for name, text in sources.items()}
    tables = db.datasets()
    for index, fps in enumerate(db.dataset_fingerprints()):
        name = tables[index].name if index < len(tables) else f"dataset-{index}"
        changed = sorted(
            filename
            for filename, digest in fps.items()
            if filename in current and current[filename] != digest
        )
        if changed:
            report.emit(
                "PGMP402",
                f"data set #{index} ({name!r}) was collected against different "
                f"source for {', '.join(changed)}; its weights mis-attribute "
                f"to the current code",
                pass_name=PASS_NAME,
            )

    # PGMP401 — points that no longer map to any live source location.
    for point in db.merged().points():
        if point.generated and not include_generated:
            continue
        base = _base_filename(point.location.filename)
        live = live_points.get(base)
        if live is None:
            continue  # a file the caller did not analyze
        if point.key() not in live:
            kind = "generated point" if point.generated else "point"
            report.emit(
                "PGMP401",
                f"profile {kind} {point.location} does not map to any live "
                f"source location in {base}; its data can never be queried",
                location=point.location,
                pass_name=PASS_NAME,
            )
