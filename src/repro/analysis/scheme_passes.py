"""The four analysis pass families over the Scheme substrate.

Surface passes (effects/exclusivity, coverage) run over *read* syntax,
because the constructs they judge — ``exclusive-cond``, ``case``,
``if-r``, ``and-r``, ``or-r`` — are macros that vanish during expansion.
Detection is textual-by-head-symbol and deliberately conservative: a
shadowed ``case`` binding would still be analyzed, which is the right
trade-off for a linter.

Expansion passes (profile-point hygiene, fresh-point determinism) run
over the expanded core program, where every node's profile point is
finally settled; determinism is checked the only way it can be — by
expanding twice and diffing the generated point sets (§4.1's contract
that ``make-profile-point`` output is reproducible across compiles).
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping
from typing import Protocol

from repro.analysis.diagnostics import AnalysisReport
from repro.analysis.purity import Purity, scheme_effect
from repro.analysis.staleness import check_staleness
from repro.core.database import ProfileDatabase
from repro.core.errors import PgmpError
from repro.core.profile_point import ProfilePoint
from repro.core.srcloc import SourceLocation
from repro.scheme.core_forms import (
    App,
    Begin,
    CoreExpr,
    Define,
    If,
    Lambda,
    Program,
    SetBang,
    SyntaxCaseExpr,
    TemplateExpr,
)
from repro.scheme.datum import Pair, SchemeVector, write_datum
from repro.scheme.reader import read_string
from repro.scheme.syntax import Syntax, syntax_pylist, syntax_to_datum

__all__ = [
    "OPTIMIZABLE_HEADS",
    "analyze_scheme_source",
    "analyze_scheme_forms",
    "iter_syntax_nodes",
    "live_scheme_points",
]

#: Head symbols of the constructs the shipped meta-programs may reorder or
#: specialize. ``case`` layers on ``exclusive-cond`` (Figure 6), ``if-r``
#: is Figure 1, ``and-r``/``or-r`` are the short-circuit extension.
OPTIMIZABLE_HEADS: frozenset[str] = frozenset(
    {"exclusive-cond", "case", "if-r", "and-r", "or-r"}
)

#: Heads whose clause *tests* are reordered and therefore must be pure.
#: (``if-r`` evaluates its test exactly once in both expansions, and
#: ``case`` tests are membership checks against quoted constants.)
_REORDERED_TEST_HEADS = frozenset({"exclusive-cond", "and-r", "or-r"})


class SchemeSystemLike(Protocol):
    """What the expansion passes need from :class:`SchemeSystem`."""

    profile_db: ProfileDatabase

    def compile(self, source: str, filename: str = ...) -> Program: ...


def _baseline_expansion(
    system: SchemeSystemLike, source: str, filename: str
) -> Program | None:
    """Expand against an *empty* database — the instrumented expansion.

    Generated profile points live only in this expansion (meta-programs
    drop their instrumentation once they have data), so liveness judgments
    about generated points must consult it, not the optimized expansion.
    """
    saved = system.profile_db
    try:
        system.profile_db = ProfileDatabase()
        return system.compile(source, filename)
    except PgmpError:
        return None
    finally:
        system.profile_db = saved


# -- syntax traversal ---------------------------------------------------------


def iter_syntax_nodes(stx: Syntax) -> Iterator[Syntax]:
    """Depth-first iteration over every syntax node, including ``stx``."""
    stack: list[Syntax] = [stx]
    while stack:
        node = stack.pop()
        yield node
        datum = node.datum
        if isinstance(datum, Pair):
            spine: object = datum
            while isinstance(spine, Pair):
                if isinstance(spine.car, Syntax):
                    stack.append(spine.car)
                spine = spine.cdr
            if isinstance(spine, Syntax):
                stack.append(spine)
        elif isinstance(datum, SchemeVector):
            stack.extend(x for x in datum if isinstance(x, Syntax))


def _constructs(forms: list[Syntax]) -> Iterator[tuple[str, Syntax]]:
    """Every optimizable construct in ``forms``, outermost first."""
    for form in forms:
        for node in iter_syntax_nodes(form):
            head = node.head_symbol()
            if head is not None and head.name in OPTIMIZABLE_HEADS:
                yield head.name, node


def _loc(stx: Syntax) -> SourceLocation | None:
    if stx.srcloc.filename == "<unknown>":
        return None
    return stx.srcloc


def _datum_text(stx: Syntax) -> str:
    return write_datum(syntax_to_datum(stx))


def _is_else_clause(clause: Syntax) -> bool:
    head = clause.head_symbol()
    return head is not None and head.name == "else"


def _clause_list(construct: Syntax) -> list[Syntax]:
    try:
        return [item for item in syntax_pylist(construct) if item.is_pair()]
    except TypeError:
        return []


def _exclusive_cond_parts(clause: Syntax) -> tuple[Syntax | None, Syntax | None]:
    """(test, weight-carrying branch) of one ``exclusive-cond`` clause."""
    try:
        items = syntax_pylist(clause)
    except TypeError:
        return None, None
    if not items or _is_else_clause(clause):
        return None, None
    test = items[0]
    if len(items) >= 3 and items[1].is_symbol() and items[1].symbol_name == "=>":
        return test, items[2]
    if len(items) == 1:
        return test, test  # test-only clause: the test is the branch
    return test, items[1]


def _case_parts(clause: Syntax) -> tuple[list[Syntax], Syntax | None]:
    """(constant list, weight-carrying branch) of one ``case`` clause."""
    try:
        items = syntax_pylist(clause)
    except TypeError:
        return [], None
    if not items or _is_else_clause(clause):
        return [], None
    constants: list[Syntax] = []
    if items[0].is_pair() or items[0].is_null():
        try:
            constants = syntax_pylist(items[0])
        except TypeError:
            constants = []
    return constants, (items[1] if len(items) > 1 else None)


# -- pass 1: effects / exclusivity (PGMP1xx) ----------------------------------


def _check_test_effect(report: AnalysisReport, head: str, test: Syntax) -> None:
    verdict = scheme_effect(test)
    if verdict.purity is Purity.IMPURE:
        report.emit(
            "PGMP101",
            f"({head} …) may reorder its tests, but {_datum_text(test)} has a "
            f"side effect: {verdict.reason}; reordering changes the program's "
            f"behaviour",
            location=verdict.location or _loc(test),
            pass_name="effects",
        )
    elif verdict.purity is Purity.UNKNOWN:
        report.emit(
            "PGMP103",
            f"({head} …) asserts its tests are effect-free, but "
            f"{_datum_text(test)} {verdict.reason}",
            location=verdict.location or _loc(test),
            pass_name="effects",
        )


def _check_effects_and_exclusivity(
    report: AnalysisReport, head: str, construct: Syntax
) -> None:
    if head in _REORDERED_TEST_HEADS:
        if head == "exclusive-cond":
            tests = [
                test
                for clause in _clause_list(construct)
                if (test := _exclusive_cond_parts(clause)[0]) is not None
            ]
        else:  # and-r / or-r operands are the reordered tests
            try:
                tests = syntax_pylist(construct)[1:]
            except TypeError:
                tests = []
        for test in tests:
            _check_test_effect(report, head, test)
        if head == "exclusive-cond":
            seen: dict[str, Syntax] = {}
            for test in tests:
                text = _datum_text(test)
                if text in seen:
                    report.emit(
                        "PGMP102",
                        f"(exclusive-cond …) declares its clauses mutually "
                        f"exclusive, but the test {text} appears more than "
                        f"once; after reordering a different clause wins",
                        location=_loc(test),
                        pass_name="effects",
                    )
                else:
                    seen[text] = test
    elif head == "case":
        owners: dict[str, int] = {}
        for number, clause in enumerate(_clause_list(construct), start=1):
            constants, _branch = _case_parts(clause)
            shared = sorted(
                {
                    _datum_text(const)
                    for const in constants
                    if _datum_text(const) in owners
                    and owners[_datum_text(const)] != number
                }
            )
            if shared:
                report.emit(
                    "PGMP102",
                    f"(case …) clauses are exclusive by construction only if "
                    f"their constants are disjoint; clause #{number} repeats "
                    f"{', '.join(shared)} from an earlier clause — after "
                    f"reordering the later clause can win",
                    location=_loc(clause),
                    pass_name="effects",
                )
            for const in constants:
                owners.setdefault(_datum_text(const), number)


# -- pass 3: coverage (PGMP3xx) ------------------------------------------------


def _branches(head: str, construct: Syntax) -> list[Syntax]:
    """The weight-carrying expressions a profile must cover to guide
    ``construct``."""
    if head == "exclusive-cond":
        return [
            branch
            for clause in _clause_list(construct)
            if (branch := _exclusive_cond_parts(clause)[1]) is not None
        ]
    if head == "case":
        return [
            branch
            for clause in _clause_list(construct)
            if (branch := _case_parts(clause)[1]) is not None
        ]
    try:
        items = syntax_pylist(construct)
    except TypeError:
        return []
    if head == "if-r":
        return items[2:4]
    return items[1:]  # and-r / or-r operands


def _check_coverage(
    report: AnalysisReport,
    head: str,
    construct: Syntax,
    db: ProfileDatabase | None,
) -> None:
    branches = _branches(head, construct)
    points: list[ProfilePoint] = []
    for branch in branches:
        point = branch.profile_point
        if point is None:
            report.emit(
                "PGMP301",
                f"branch {_datum_text(branch)} of ({head} …) carries no "
                f"profile point (no usable source location); profiling can "
                f"never weight it, so this construct cannot be optimized",
                location=_loc(branch) or _loc(construct),
                pass_name="coverage",
            )
        else:
            points.append(point)
    if db is not None and db.has_data() and points:
        if not any(db.known(point) for point in points):
            report.emit(
                "PGMP302",
                f"the loaded profile has no data for any branch of this "
                f"({head} …); it was collected before this construct existed "
                f"or never exercised it, so the source order is kept",
                location=_loc(construct),
                pass_name="coverage",
            )


# -- pass 2: profile-point hygiene (PGMP2xx) -----------------------------------


def iter_core_nodes(expr: CoreExpr | Program) -> Iterator[CoreExpr]:
    """Depth-first iteration over a core program's expression nodes."""
    stack: list[CoreExpr] = (
        list(expr.forms) if isinstance(expr, Program) else [expr]
    )
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (SetBang, Define)):
            stack.append(node.expr)
        elif isinstance(node, If):
            stack.extend((node.test, node.then, node.otherwise))
        elif isinstance(node, Lambda):
            stack.extend(node.body)
        elif isinstance(node, Begin):
            stack.extend(node.exprs)
        elif isinstance(node, App):
            stack.append(node.fn)
            stack.extend(node.args)
        elif isinstance(node, SyntaxCaseExpr):
            stack.append(node.subject)
            for clause in node.clauses:
                if clause.fender is not None:
                    stack.append(clause.fender)
                stack.append(clause.body)
        elif isinstance(node, TemplateExpr):
            stack.extend(hole for hole, _splice in node.holes.values())


def _check_hygiene(report: AnalysisReport, program: Program) -> None:
    explicit_sites: dict[ProfilePoint, set[SourceLocation]] = {}
    points_by_loc: dict[SourceLocation, set[ProfilePoint]] = {}
    for node in iter_core_nodes(program):
        stx = node.stx
        if stx is None:
            continue
        point = stx.profile_point
        if point is None:
            continue
        if stx.explicit_point is not None:
            explicit_sites.setdefault(point, set()).add(stx.srcloc)
        if stx.srcloc.filename != "<unknown>":
            points_by_loc.setdefault(stx.srcloc, set()).add(point)

    for point, sites in sorted(
        explicit_sites.items(), key=lambda kv: kv[0].key()
    ):
        real_sites = {loc for loc in sites if loc.filename != "<unknown>"}
        if len(real_sites) >= 2:
            where = ", ".join(str(loc) for loc in sorted(
                real_sites, key=lambda loc: loc.key()
            ))
            report.emit(
                "PGMP201",
                f"profile point {point.location} is annotated onto expressions "
                f"at {len(real_sites)} distinct locations ({where}); their "
                f"counters alias, so profile-guided decisions cannot tell "
                f"them apart",
                location=min(real_sites, key=lambda loc: loc.key()),
                pass_name="hygiene",
            )

    for loc, points in sorted(points_by_loc.items(), key=lambda kv: kv[0].key()):
        if len(points) < 2:
            continue
        implicit = ProfilePoint.for_location(loc)
        if implicit in points:
            others = [p for p in points if p != implicit]
            report.emit(
                "PGMP202",
                f"the expression at {loc} occurs both with its implicit "
                f"profile point and re-annotated as "
                f"{', '.join(str(p.location) for p in sorted(others, key=lambda p: p.key()))}; "
                f"its execution counts are split across {len(points)} counters "
                f"(§3.1 allows at most one point per expression)",
                location=loc,
                pass_name="hygiene",
            )


def _generated_point_keys(program: Program) -> frozenset[str]:
    keys = set()
    for node in iter_core_nodes(program):
        point = node.profile_point
        if point is not None and point.generated:
            keys.add(point.key())
    return frozenset(keys)


def _all_point_keys(program: Program) -> frozenset[str]:
    keys = set()
    for node in iter_core_nodes(program):
        point = node.profile_point
        if point is not None:
            keys.add(point.key())
    return frozenset(keys)


# -- pass 4 helper: live points ------------------------------------------------


def live_scheme_points(
    forms: list[Syntax], expansions: list[Program] | None = None
) -> frozenset[str]:
    """Every profile-point key the current source can still produce:
    implicit location points of all read syntax, plus any point that an
    actual expansion associates with a node (covering deterministically
    re-manufactured generated points)."""
    keys = {
        ProfilePoint.for_location(node.srcloc).key()
        for form in forms
        for node in iter_syntax_nodes(form)
        if node.srcloc.filename != "<unknown>"
    }
    for program in expansions or []:
        keys |= _all_point_keys(program)
    return frozenset(keys)


# -- driver -------------------------------------------------------------------


def analyze_scheme_forms(
    forms: list[Syntax],
    report: AnalysisReport | None = None,
    db: ProfileDatabase | None = None,
) -> AnalysisReport:
    """Run the surface passes (effects/exclusivity + coverage) over read
    syntax. This is all the analysis that is possible without being able
    to expand the program (e.g. for Scheme embedded in Python strings)."""
    report = report if report is not None else AnalysisReport()
    for head, construct in _constructs(forms):
        _check_effects_and_exclusivity(report, head, construct)
        _check_coverage(report, head, construct, db)
    return report


def analyze_scheme_source(
    source: str,
    filename: str = "<scheme>",
    system: SchemeSystemLike | None = None,
    db: ProfileDatabase | None = None,
    sources: Mapping[str, str] | None = None,
) -> AnalysisReport:
    """Full analysis of one Scheme program.

    Surface passes always run. When ``system`` is provided (anything with
    ``compile``, e.g. a :class:`~repro.scheme.pipeline.SchemeSystem` with
    the right libraries loaded), the program is expanded **twice** for the
    hygiene and determinism passes; if expansion fails — say the file uses
    macros whose library was not loaded — the analysis degrades to
    surface-only with a PGMP001 note instead of failing.

    ``db`` defaults to the system's ambient database; when it holds data,
    the staleness pass checks it against ``sources`` (defaulting to the
    analyzed file itself).
    """
    report = AnalysisReport()
    forms = read_string(source, filename)
    if db is None and system is not None:
        db = system.profile_db
    analyze_scheme_forms(forms, report, db)

    expansions: list[Program] = []
    if system is not None:
        try:
            first = system.compile(source, filename)
            second = system.compile(source, filename)
            expansions = [first, second]
        except PgmpError as exc:
            report.emit(
                "PGMP001",
                f"could not expand {filename}: {exc}; profile-point hygiene "
                f"and determinism passes were skipped (load the construct's "
                f"library with --library to enable them)",
                pass_name="analysis",
            )
        else:
            _check_hygiene(report, first)
            before, after = (
                _generated_point_keys(first),
                _generated_point_keys(second),
            )
            if before != after:
                only_first = sorted(before - after)[:3]
                only_second = sorted(after - before)[:3]
                details = []
                if only_first:
                    details.append(f"only in expansion 1: {', '.join(only_first)}")
                if only_second:
                    details.append(f"only in expansion 2: {', '.join(only_second)}")
                report.emit(
                    "PGMP203",
                    f"two independent expansions of {filename} manufactured "
                    f"different fresh profile points "
                    f"({len(before)} vs {len(after)}; {'; '.join(details)}); "
                    f"§4.1 requires deterministic generation or the next "
                    f"compile cannot read back this compile's data",
                    pass_name="hygiene",
                )

    if db is not None and db.has_data():
        effective_sources = dict(sources) if sources is not None else {filename: source}
        effective_sources.setdefault(filename, source)
        if system is not None:
            baseline = _baseline_expansion(system, source, filename)
            if baseline is not None:
                expansions = expansions + [baseline]
        live = {filename: live_scheme_points(forms, expansions)}
        check_staleness(
            report,
            db,
            effective_sources,
            live,
            include_generated=bool(expansions),
        )
    return report
