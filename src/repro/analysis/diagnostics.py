"""The diagnostics framework behind ``pgmp lint``.

A :class:`Diagnostic` is one finding of one analysis pass: a stable code
(``PGMP101`` …), a severity, a human-readable message, and an optional
:class:`~repro.core.srcloc.SourceLocation` anchor. Diagnostics accumulate
in an :class:`AnalysisReport`, which the CLI renders as text (one
``file:line:col: severity: code: message`` line each, the format editors
and CI annotators already parse) or as JSON (stable keys, for tooling).

Codes are grouped by pass family:

* ``PGMP1xx`` — effects / exclusivity of reorderable clause tests (§6.1);
* ``PGMP2xx`` — profile-point hygiene (§3.1, §4.1);
* ``PGMP3xx`` — profiling coverage of optimizable constructs;
* ``PGMP4xx`` — staleness of loaded profile data (format v2 fingerprints);
* ``PGMP5xx`` — translation validation of compiled artifacts
  (``pgmp verify``, :mod:`repro.analysis.verify`);
* ``PGMP0xx`` — meta-diagnostics about the analysis itself.

Every code has a fixed default severity recorded in :data:`CODE_CATALOG`;
emitting a diagnostic with an unknown code is a programming error, so the
set of codes in documentation, tests, and implementation cannot drift
apart silently.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field

from repro.core.srcloc import SourceLocation

__all__ = [
    "Severity",
    "Diagnostic",
    "AnalysisReport",
    "CODE_CATALOG",
    "CodeInfo",
    "render_text",
    "render_json",
    "JSON_RENDER_VERSION",
]

#: Schema version of every versioned-JSON document the pgmp CLI emits
#: (``pgmp lint --format json`` *and* ``pgmp report --format json`` share
#: it), so downstream tooling can parse both with one version check.
JSON_RENDER_VERSION = 1


class Severity(enum.IntEnum):
    """How bad a finding is; ordering is meaningful (ERROR is highest)."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @classmethod
    def coerce(cls, value: "Severity | str") -> "Severity":
        if isinstance(value, Severity):
            return value
        try:
            return cls[value.upper()]
        except KeyError:
            raise ValueError(
                f"unknown severity {value!r} (expected info, warning, or error)"
            ) from None

    def __str__(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class CodeInfo:
    """Catalog entry for one diagnostic code."""

    code: str
    severity: Severity
    title: str


#: Every diagnostic ``pgmp lint`` can emit, with its default severity.
#: ``docs/analysis.md`` documents the rationale for each code.
CODE_CATALOG: dict[str, CodeInfo] = {
    info.code: info
    for info in (
        # -- PGMP0xx: analysis meta-diagnostics --------------------------------
        CodeInfo("PGMP001", Severity.INFO,
                 "program could not be expanded; expansion-dependent passes skipped"),
        # -- PGMP1xx: effects / exclusivity (§6.1) -----------------------------
        CodeInfo("PGMP101", Severity.ERROR,
                 "side-effecting test in a reorderable construct"),
        CodeInfo("PGMP102", Severity.ERROR,
                 "provably overlapping clauses in a construct declared exclusive"),
        CodeInfo("PGMP103", Severity.WARNING,
                 "test of a reorderable construct cannot be proved effect-free"),
        # -- PGMP2xx: profile-point hygiene (§3.1, §4.1) -----------------------
        CodeInfo("PGMP201", Severity.WARNING,
                 "one profile point attached to expressions at multiple locations"),
        CodeInfo("PGMP202", Severity.WARNING,
                 "one source expression carries multiple profile points"),
        CodeInfo("PGMP203", Severity.ERROR,
                 "fresh profile points are not generated deterministically"),
        # -- PGMP3xx: coverage --------------------------------------------------
        CodeInfo("PGMP301", Severity.WARNING,
                 "branch of an optimizable construct carries no profile point"),
        CodeInfo("PGMP302", Severity.INFO,
                 "loaded profile has no data for any branch of this construct"),
        # -- PGMP4xx: staleness (profile format v2) ----------------------------
        CodeInfo("PGMP401", Severity.WARNING,
                 "profile point no longer maps to any live source location"),
        CodeInfo("PGMP402", Severity.ERROR,
                 "profile data set was collected against different source"),
        # -- PGMP5xx: translation validation of compiled artifacts -------------
        CodeInfo("PGMP501", Severity.ERROR,
                 "instrumentation sites diverge from the interpreter's "
                 "traversal order"),
        CodeInfo("PGMP502", Severity.ERROR,
                 "step-budget charge sites are missing or out of "
                 "interpreter order"),
        CodeInfo("PGMP503", Severity.ERROR,
                 "generated code references names outside the core-form "
                 "lexical environment"),
        CodeInfo("PGMP504", Severity.ERROR,
                 "self-tail-call loop rebinds parameters without "
                 "parallel-assignment safety"),
        CodeInfo("PGMP505", Severity.ERROR,
                 "inlined primitive fast path is not protected by an "
                 "identity guard"),
        CodeInfo("PGMP506", Severity.INFO,
                 "artifact falls back to the interpreter"),
    )
}


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one analysis pass."""

    code: str
    message: str
    location: SourceLocation | None = None
    #: which pass family produced this ("effects", "hygiene", "coverage",
    #: "staleness", or "analysis" for meta-diagnostics)
    pass_name: str = "analysis"
    #: severity, defaulting to the catalog entry for ``code``
    severity: Severity = field(default=Severity.WARNING)

    @classmethod
    def make(
        cls,
        code: str,
        message: str,
        location: SourceLocation | None = None,
        pass_name: str = "analysis",
        severity: Severity | None = None,
    ) -> "Diagnostic":
        """Build a diagnostic, defaulting severity from :data:`CODE_CATALOG`."""
        try:
            info = CODE_CATALOG[code]
        except KeyError:
            raise ValueError(f"unknown diagnostic code {code!r}") from None
        return cls(
            code=code,
            message=message,
            location=location,
            pass_name=pass_name,
            severity=severity if severity is not None else info.severity,
        )

    @property
    def title(self) -> str:
        return CODE_CATALOG[self.code].title

    def anchor(self) -> str:
        """``file:line:col`` (or a placeholder) for the text renderer."""
        if self.location is None:
            return "<no location>"
        loc = self.location
        if loc.line:
            return f"{loc.filename}:{loc.line}:{loc.column}"
        return f"{loc.filename}[{loc.start}:{loc.end}]"

    def to_json_object(self) -> dict:
        obj: dict = {
            "code": self.code,
            "severity": str(self.severity),
            "pass": self.pass_name,
            "message": self.message,
        }
        if self.location is not None:
            obj["location"] = {
                "filename": self.location.filename,
                "line": self.location.line,
                "column": self.location.column,
                "start": self.location.start,
                "end": self.location.end,
            }
        return obj

    def __str__(self) -> str:
        return f"{self.anchor()}: {self.severity}: {self.code}: {self.message}"


class AnalysisReport:
    """All diagnostics one analysis run produced, in emission order."""

    def __init__(self, diagnostics: list[Diagnostic] | None = None) -> None:
        self.diagnostics: list[Diagnostic] = list(diagnostics or [])

    def emit(
        self,
        code: str,
        message: str,
        location: SourceLocation | None = None,
        pass_name: str = "analysis",
        severity: Severity | None = None,
    ) -> Diagnostic:
        diag = Diagnostic.make(code, message, location, pass_name, severity)
        self.diagnostics.append(diag)
        return diag

    def extend(self, other: "AnalysisReport") -> None:
        self.diagnostics.extend(other.diagnostics)

    def at_least(self, severity: Severity | str) -> list[Diagnostic]:
        """Diagnostics at or above ``severity``, in emission order."""
        threshold = Severity.coerce(severity)
        return [d for d in self.diagnostics if d.severity >= threshold]

    def errors(self) -> list[Diagnostic]:
        return self.at_least(Severity.ERROR)

    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    def by_code(self, code: str) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.code == code]

    def codes(self) -> list[str]:
        """The distinct codes present, sorted."""
        return sorted({d.code for d in self.diagnostics})

    def max_severity(self) -> Severity | None:
        if not self.diagnostics:
            return None
        return max(d.severity for d in self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self):
        return iter(self.diagnostics)

    def __bool__(self) -> bool:
        return bool(self.diagnostics)

    def __repr__(self) -> str:
        return f"<AnalysisReport: {len(self.diagnostics)} diagnostics>"


def _summary_counts(diagnostics: list[Diagnostic]) -> dict[str, int]:
    counts = {"error": 0, "warning": 0, "info": 0}
    for diag in diagnostics:
        counts[str(diag.severity)] += 1
    return counts


def render_text(report: AnalysisReport, min_severity: Severity | str = Severity.INFO) -> str:
    """One ``file:line:col: severity: code: message`` line per diagnostic,
    plus a one-line summary — empty-report output is a single "clean" line.
    """
    shown = report.at_least(min_severity)
    if not shown:
        return "pgmp lint: no findings"
    lines = [str(diag) for diag in shown]
    counts = _summary_counts(shown)
    lines.append(
        f"pgmp lint: {counts['error']} error(s), {counts['warning']} warning(s), "
        f"{counts['info']} info"
    )
    return "\n".join(lines)


def render_json(report: AnalysisReport, min_severity: Severity | str = Severity.INFO) -> str:
    """The report as a stable JSON document (for editors and CI tooling)."""
    shown = report.at_least(min_severity)
    payload = {
        "format": "pgmp-lint",
        "version": JSON_RENDER_VERSION,
        "diagnostics": [diag.to_json_object() for diag in shown],
        "summary": _summary_counts(shown),
    }
    return json.dumps(payload, indent=2, sort_keys=True)
