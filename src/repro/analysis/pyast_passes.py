"""The four analysis pass families over the Python-AST substrate.

:func:`analyze_python_source` is purely static — ``ast.parse`` only, the
analyzed file is **never executed** — which is what ``pgmp lint`` needs to
run safely over arbitrary ``examples/``. It judges ``pycase``/``if_r``
call sites and, because the shipped examples drive the Scheme substrate
from Python strings, also reads embedded Scheme program literals and runs
the surface Scheme passes over them.

:func:`analyze_python_function` is the opt-in programmatic entry point
(behind :meth:`repro.pyast.system.PyAstSystem.analyze`): it *does* expand
the function — twice — which unlocks the hygiene and determinism passes
over the instrumented AST, where explicit profile points finally exist.

One substrate-specific subtlety: ``annotate_expr_ast`` wraps the original
expression (which keeps its implicit location point) inside a profiling
call at the *same* location carrying the explicit point. Implicit/explicit
coexistence at one location is therefore the normal instrumentation shape
here, not a bug — the pyast hygiene pass compares **explicit** points
only: two *different explicit* points on one location means a macro
double-annotated the expression and split its counters (PGMP202).
"""

from __future__ import annotations

import ast
from collections.abc import Callable

from repro.analysis.diagnostics import AnalysisReport
from repro.analysis.purity import Purity, python_effect
from repro.analysis.scheme_passes import analyze_scheme_forms
from repro.analysis.staleness import check_staleness
from repro.core.database import ProfileDatabase
from repro.core.errors import PgmpError, SchemeError
from repro.core.profile_point import ProfilePoint
from repro.core.srcloc import SourceLocation
from repro.pyast.srcloc import POINT_ATTR, node_location, node_point
from repro.scheme.reader import read_string

__all__ = [
    "PY_OPTIMIZABLE_CALLS",
    "analyze_python_function",
    "analyze_python_source",
]

#: Call-site names of the Python substrate's profile-guided macros.
PY_OPTIMIZABLE_CALLS: frozenset[str] = frozenset({"if_r", "pycase"})

#: Substrings that make a Python string literal a candidate embedded
#: Scheme program worth reading and surface-analyzing.
_EMBEDDED_SCHEME_MARKERS = (
    "(exclusive-cond",
    "(case ",
    "(case\n",
    "(if-r",
    "(and-r",
    "(or-r",
    "(class ",
    "(method ",
)


def _call_name(node: ast.Call) -> str | None:
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def _pycase_clauses(node: ast.Call) -> list[tuple[ast.expr, ast.expr]]:
    clauses = []
    for arg in node.args[1:]:
        if isinstance(arg, ast.Tuple) and len(arg.elts) == 2:
            clauses.append((arg.elts[0], arg.elts[1]))
    return clauses


def _literal_constants(constants: ast.expr) -> list[object] | None:
    """The constant values of a literal tuple/list/set, or None when the
    clause's constants are computed (nothing provable about overlap then)."""
    if not isinstance(constants, (ast.Tuple, ast.List, ast.Set)):
        return None
    values = []
    for element in constants.elts:
        if not isinstance(element, ast.Constant):
            return None
        values.append(element.value)
    return values


# -- pass 1: effects / exclusivity (PGMP1xx) ----------------------------------


def _check_pycase(
    report: AnalysisReport,
    node: ast.Call,
    filename: str,
    db: ProfileDatabase | None,
) -> None:
    clauses = _pycase_clauses(node)

    # Effects: the constants expressions are membership-tested in clause
    # order after reordering, so any effect in them is order-dependent.
    for constants, _result in clauses:
        verdict = python_effect(constants, filename)
        if verdict.purity is Purity.IMPURE:
            report.emit(
                "PGMP101",
                f"pycase(…) may reorder its clauses, but a clause's constants "
                f"expression has a side effect: {verdict.reason}; reordering "
                f"changes the program's behaviour",
                location=verdict.location or node_location(constants, filename),
                pass_name="effects",
            )
        elif verdict.purity is Purity.UNKNOWN:
            report.emit(
                "PGMP103",
                f"pycase(…) asserts its clause constants are effect-free, but "
                f"this expression {verdict.reason}",
                location=verdict.location or node_location(constants, filename),
                pass_name="effects",
            )

    # Exclusivity: literal constant tuples must be pairwise disjoint.
    owners: dict[object, int] = {}
    for number, (constants, _result) in enumerate(clauses, start=1):
        values = _literal_constants(constants)
        if values is None:
            continue
        shared = sorted(
            {repr(v) for v in values if v in owners and owners[v] != number}
        )
        if shared:
            report.emit(
                "PGMP102",
                f"pycase(…) clauses are exclusive by construction only if "
                f"their constants are disjoint; clause #{number} repeats "
                f"{', '.join(shared)} from an earlier clause — after "
                f"reordering the later clause can win",
                location=node_location(constants, filename),
                pass_name="effects",
            )
        for value in values:
            owners.setdefault(value, number)

    _check_py_coverage(report, "pycase", node,
                       [result for _constants, result in clauses],
                       filename, db)


def _check_if_r(
    report: AnalysisReport,
    node: ast.Call,
    filename: str,
    db: ProfileDatabase | None,
) -> None:
    # if_r's test runs exactly once in both expansions and its branches are
    # lazily selected, so there is no effects obligation — only coverage.
    _check_py_coverage(report, "if_r", node, list(node.args[1:3]), filename, db)


# -- pass 3: coverage (PGMP3xx) ------------------------------------------------


def _check_py_coverage(
    report: AnalysisReport,
    head: str,
    construct: ast.Call,
    branches: list[ast.expr],
    filename: str,
    db: ProfileDatabase | None,
) -> None:
    points: list[ProfilePoint] = []
    for branch in branches:
        point = node_point(branch, filename)
        if point is None:
            report.emit(
                "PGMP301",
                f"branch {ast.unparse(branch)} of {head}(…) carries no "
                f"profile point (no source position); profiling can never "
                f"weight it, so this construct cannot be optimized",
                location=node_location(branch, filename)
                or node_location(construct, filename),
                pass_name="coverage",
            )
        else:
            points.append(point)
    if db is not None and db.has_data() and points:
        if not any(db.known(point) for point in points):
            report.emit(
                "PGMP302",
                f"the loaded profile has no data for any branch of this "
                f"{head}(…); it was collected before this construct existed "
                f"or never exercised it, so the source order is kept",
                location=node_location(construct, filename),
                pass_name="coverage",
            )


# -- embedded Scheme ----------------------------------------------------------


def _embedded_scheme_strings(tree: ast.AST) -> list[tuple[str, ast.Constant]]:
    """Plain string literals that look like Scheme programs using the
    optimizable constructs. F-string pieces are skipped — they are source
    *templates*, not programs."""
    fstring_parts = {
        id(value)
        for node in ast.walk(tree)
        if isinstance(node, ast.JoinedStr)
        for value in node.values
    }
    found = []
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Constant)
            and isinstance(node.value, str)
            and id(node) not in fstring_parts
            and any(marker in node.value for marker in _EMBEDDED_SCHEME_MARKERS)
        ):
            found.append((node.value, node))
    return found


# -- pass 2: hygiene + determinism over instrumented ASTs ----------------------


def _explicit_points(tree: ast.AST, filename: str) -> list[tuple[ProfilePoint, SourceLocation | None]]:
    out = []
    for node in ast.walk(tree):
        point = getattr(node, POINT_ATTR, None)
        if isinstance(point, ProfilePoint):
            out.append((point, node_location(node, filename)))
    return out


def _check_py_hygiene(report: AnalysisReport, tree: ast.AST, filename: str) -> None:
    explicit = _explicit_points(tree, filename)

    sites: dict[ProfilePoint, set[SourceLocation]] = {}
    points_by_loc: dict[SourceLocation, set[ProfilePoint]] = {}
    for point, loc in explicit:
        if loc is None:
            continue
        sites.setdefault(point, set()).add(loc)
        points_by_loc.setdefault(loc, set()).add(point)

    for point, locs in sorted(sites.items(), key=lambda kv: kv[0].key()):
        if len(locs) >= 2:
            where = ", ".join(
                str(loc) for loc in sorted(locs, key=lambda loc: loc.key())
            )
            report.emit(
                "PGMP201",
                f"profile point {point.location} is annotated onto "
                f"expressions at {len(locs)} distinct locations ({where}); "
                f"their counters alias, so profile-guided decisions cannot "
                f"tell them apart",
                location=min(locs, key=lambda loc: loc.key()),
                pass_name="hygiene",
            )

    for loc, points in sorted(points_by_loc.items(), key=lambda kv: kv[0].key()):
        if len(points) >= 2:
            report.emit(
                "PGMP202",
                f"the expression at {loc} was annotated with "
                f"{len(points)} different explicit profile points "
                f"({', '.join(str(p.location) for p in sorted(points, key=lambda p: p.key()))}); "
                f"its execution counts are split across that many counters "
                f"(§3.1 allows at most one point per expression)",
                location=loc,
                pass_name="hygiene",
            )


def _generated_keys(tree: ast.AST, filename: str) -> frozenset[str]:
    return frozenset(
        point.key()
        for point, _loc in _explicit_points(tree, filename)
        if point.generated
    )


def _live_python_points(tree: ast.AST, filename: str) -> frozenset[str]:
    keys = set()
    for node in ast.walk(tree):
        point = node_point(node, filename)
        if point is not None:
            keys.add(point.key())
    return frozenset(keys)


# -- drivers -------------------------------------------------------------------


def analyze_python_source(
    source: str,
    filename: str = "<python>",
    db: ProfileDatabase | None = None,
    staleness: bool = True,
) -> AnalysisReport:
    """Statically analyze one Python file (never executing it).

    Runs effects/exclusivity and coverage over ``pycase``/``if_r`` call
    sites, surface-analyzes embedded Scheme program literals, and — when
    ``db`` holds data — checks it for staleness against this file.
    Expansion-dependent passes need a live function object; see
    :func:`analyze_python_function`.
    """
    report = AnalysisReport()
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        report.emit(
            "PGMP001",
            f"could not parse {filename}: {exc}; analysis skipped",
            pass_name="analysis",
        )
        return report

    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            name = _call_name(node)
            if name == "pycase":
                _check_pycase(report, node, filename, db)
            elif name == "if_r" and len(node.args) == 3:
                _check_if_r(report, node, filename, db)

    for text, constant in _embedded_scheme_strings(tree):
        loc = node_location(constant, filename)
        pseudo = f"{filename}#L{constant.lineno}" if loc else filename
        try:
            forms = read_string(text, pseudo)
        except SchemeError:
            continue  # looked like Scheme, is not — not this linter's problem
        # Surface passes only: an embedded program cannot be expanded here,
        # and its pseudo-filename points can never match the database.
        analyze_scheme_forms(forms, report, None)

    if staleness and db is not None and db.has_data():
        live = {filename: _live_python_points(tree, filename)}
        check_staleness(
            report,
            db,
            {filename: source},
            live,
            include_generated=False,
        )
    return report


def analyze_python_function(
    fn: Callable,
    db: ProfileDatabase | None = None,
    expand: Callable[[Callable], Callable] | None = None,
) -> AnalysisReport:
    """Fully analyze one Python function, expansion passes included.

    ``expand`` performs one macro expansion of ``fn`` (defaulting to a
    plain :func:`repro.pyast.macros.expand_function` against ``db``); it is
    called **twice** so the determinism pass can diff the generated point
    sets, exactly like the Scheme side. Expansion failure degrades to the
    static source analysis plus a PGMP001 note.
    """
    import inspect
    import textwrap

    from repro.core.api import using_profile_information
    from repro.pyast.macros import expand_function

    try:
        source_lines, start_line = inspect.getsourcelines(fn)
        source = textwrap.dedent("".join(source_lines))
        filename = inspect.getsourcefile(fn) or "<python>"
    except (OSError, TypeError):
        source, filename, start_line = "", "<python>", 1

    report = AnalysisReport()
    if source:
        # Pad to the function's real line so implicit points computed here
        # key identically to the ones `expand_function` instruments (it
        # dedents, then realigns with ast.increment_lineno). Staleness is
        # deferred until after expansion, when the live point set
        # (including re-manufactured generated points) is complete.
        padded = "\n" * (start_line - 1) + source
        static = analyze_python_source(padded, filename, db=db, staleness=False)
        report.extend(static)

    expander = expand
    if expander is None:
        database = db if db is not None else ProfileDatabase()

        def _default_expand(target: Callable) -> Callable:
            with using_profile_information(database):
                return expand_function(target)

        expander = _default_expand

    try:
        first = expander(fn)
        second = expander(fn)
    except PgmpError as exc:
        report.emit(
            "PGMP001",
            f"could not expand {getattr(fn, '__name__', fn)!r}: {exc}; "
            f"profile-point hygiene and determinism passes were skipped",
            pass_name="analysis",
        )
        return report

    tree_1 = getattr(first, "__pgmp_ast__", None)
    tree_2 = getattr(second, "__pgmp_ast__", None)
    if tree_1 is None or tree_2 is None:
        return report

    _check_py_hygiene(report, tree_1, filename)
    before, after = _generated_keys(tree_1, filename), _generated_keys(tree_2, filename)
    if before != after:
        only_first = sorted(before - after)[:3]
        only_second = sorted(after - before)[:3]
        details = []
        if only_first:
            details.append(f"only in expansion 1: {', '.join(only_first)}")
        if only_second:
            details.append(f"only in expansion 2: {', '.join(only_second)}")
        report.emit(
            "PGMP203",
            f"two independent expansions of "
            f"{getattr(fn, '__name__', fn)!r} manufactured different fresh "
            f"profile points ({len(before)} vs {len(after)}; "
            f"{'; '.join(details)}); §4.1 requires deterministic generation "
            f"or the next compile cannot read back this compile's data",
            pass_name="hygiene",
        )

    if db is not None and db.has_data() and source:
        live = {filename: _live_python_points(tree_1, filename) | _all_keys(tree_1, filename)}
        check_staleness(report, db, {filename: source}, live)
    return report


def _all_keys(tree: ast.AST, filename: str) -> frozenset[str]:
    return frozenset(
        point.key() for point, _loc in _explicit_points(tree, filename)
    )
