"""File-level analysis driver — the engine behind ``pgmp lint``.

Dispatches each path to the right substrate analyzer: ``.py`` files get the
static (never-executed) Python analysis, Scheme files get the full
surface + expansion analysis against a throwaway
:class:`~repro.scheme.pipeline.SchemeSystem` loaded with the requested
macro libraries. A shared profile database (from ``--profile-file``) flows
into every file's coverage and staleness passes.
"""

from __future__ import annotations

import os
from collections.abc import Iterable, Sequence

from repro.analysis.diagnostics import AnalysisReport
from repro.analysis.pyast_passes import analyze_python_source
from repro.analysis.scheme_passes import analyze_scheme_source
from repro.core.database import ProfileDatabase

__all__ = [
    "SCHEME_SUFFIXES",
    "expand_source_paths",
    "lint_path",
    "lint_paths",
    "lint_source",
]

#: File suffixes treated as Scheme programs.
SCHEME_SUFFIXES: frozenset[str] = frozenset({".ss", ".scm", ".sls", ".sps", ".sch"})


def _guess_kind(filename: str, source: str) -> str:
    suffix = os.path.splitext(filename)[1].lower()
    if suffix == ".py":
        return "python"
    if suffix in SCHEME_SUFFIXES:
        return "scheme"
    # No recognizable suffix (e.g. stdin): Scheme programs start with a
    # paren or a comment; anything else is most plausibly Python.
    head = source.lstrip()
    if head.startswith(("(", ";", "#")) or not head:
        return "scheme"
    return "python"


def expand_source_paths(
    paths: Iterable[str | os.PathLike[str]],
) -> list[str]:
    """Expand directories into the analyzable files they contain.

    A directory argument recurses (sorted, deterministic order) over
    every ``*.py`` and Scheme-suffixed file, skipping hidden and dunder
    directories (``.git``, ``__pycache__`` …); plain file arguments pass
    through untouched, so a nonexistent path still errors at open time
    with a normal message.
    """
    expanded: list[str] = []
    for path in paths:
        name = os.fspath(path)
        if not os.path.isdir(name):
            expanded.append(name)
            continue
        for root, dirs, files in os.walk(name):
            dirs[:] = sorted(
                d for d in dirs if not d.startswith((".", "__"))
            )
            for filename in sorted(files):
                suffix = os.path.splitext(filename)[1].lower()
                if suffix == ".py" or suffix in SCHEME_SUFFIXES:
                    expanded.append(os.path.join(root, filename))
    return expanded


def lint_source(
    source: str,
    filename: str,
    kind: str | None = None,
    library_sources: Sequence[tuple[str, str]] = (),
    db: ProfileDatabase | None = None,
    policy: str = "strict",
) -> AnalysisReport:
    """Analyze one program given as text (``kind`` is "python", "scheme",
    or None to guess from the filename/content)."""
    if kind is None:
        kind = _guess_kind(filename, source)
    if kind == "python":
        return analyze_python_source(source, filename, db=db)

    from repro.scheme.pipeline import SchemeSystem

    system = SchemeSystem(profile_db=db, policy=policy)
    for lib_source, lib_filename in library_sources:
        system.load_library(lib_source, lib_filename)
    return analyze_scheme_source(
        source, filename, system=system, db=system.profile_db
    )


def lint_path(
    path: str | os.PathLike[str],
    library_sources: Sequence[tuple[str, str]] = (),
    db: ProfileDatabase | None = None,
    policy: str = "strict",
) -> AnalysisReport:
    """Analyze one file from disk."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    return lint_source(
        source,
        str(path),
        library_sources=library_sources,
        db=db,
        policy=policy,
    )


def lint_paths(
    paths: Iterable[str | os.PathLike[str]],
    library_sources: Sequence[tuple[str, str]] = (),
    db: ProfileDatabase | None = None,
    policy: str = "strict",
) -> AnalysisReport:
    """Analyze several files, concatenating their diagnostics in path order.

    Directories recurse over their ``*.py`` and Scheme files (see
    :func:`expand_source_paths`).
    """
    combined = AnalysisReport()
    for path in expand_source_paths(paths):
        combined.extend(
            lint_path(path, library_sources=library_sources, db=db, policy=policy)
        )
    return combined
