"""Source locations ("source objects" in Chez Scheme terminology).

The paper's Chez Scheme implementation realizes profile points as *source
objects*: a filename plus starting and ending character positions (Section
4.1). The Racket implementation uses the equivalent source-location
information the Racket reader attaches to every syntax object (Section 4.2).

:class:`SourceLocation` is the shared, substrate-neutral representation used
throughout this library. It is immutable and hashable so it can key counter
tables, and it serializes to/from a compact string form used in stored
profile files.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import ProfileFormatError

__all__ = ["SourceLocation", "UNKNOWN_LOCATION"]


@dataclass(frozen=True, slots=True)
class SourceLocation:
    """A region of a source file: ``filename`` + character offsets.

    ``start`` and ``end`` are 0-based character offsets into the file
    (half-open: the region covers ``text[start:end]``). ``line`` and
    ``column`` locate ``start`` for human-readable messages; they do not
    participate in equality-relevant serialization beyond round-tripping.
    """

    filename: str
    start: int
    end: int
    line: int = 0
    column: int = 0

    def __post_init__(self) -> None:
        if self.start < 0 or self.end < self.start:
            raise ValueError(
                f"invalid source span [{self.start}, {self.end}) in {self.filename!r}"
            )

    @property
    def span(self) -> int:
        """Number of characters covered by this location."""
        return self.end - self.start

    def contains(self, other: "SourceLocation") -> bool:
        """True when ``other`` lies within this location in the same file."""
        return (
            self.filename == other.filename
            and self.start <= other.start
            and other.end <= self.end
        )

    def overlaps(self, other: "SourceLocation") -> bool:
        """True when the two locations share at least one character."""
        return (
            self.filename == other.filename
            and self.start < other.end
            and other.start < self.end
        )

    def key(self) -> str:
        """Compact, unambiguous string form used to key stored profiles.

        The filename may itself contain ``:`` so offsets are appended at the
        *end*; parsing splits from the right.
        """
        return f"{self.filename}:{self.start}-{self.end}:{self.line}.{self.column}"

    @classmethod
    def from_key(cls, key: str) -> "SourceLocation":
        """Inverse of :meth:`key`. Raises :class:`ProfileFormatError` on bad input."""
        try:
            head, linecol = key.rsplit(":", 1)
            filename, span = head.rsplit(":", 1)
            start_s, end_s = span.split("-", 1)
            line_s, col_s = linecol.split(".", 1)
            return cls(
                filename=filename,
                start=int(start_s),
                end=int(end_s),
                line=int(line_s),
                column=int(col_s),
            )
        except (ValueError, TypeError) as exc:
            raise ProfileFormatError(f"malformed source-location key: {key!r}") from exc

    def __str__(self) -> str:
        if self.line:
            return f"{self.filename}:{self.line}:{self.column}"
        return f"{self.filename}[{self.start}:{self.end}]"


#: Placeholder for syntax with no known origin (e.g. datum->syntax output).
UNKNOWN_LOCATION = SourceLocation("<unknown>", 0, 0)
