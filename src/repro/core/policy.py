"""Degradation policy — how the library behaves when profile data is bad.

The paper's central contract is that profile data is *advisory*: a
meta-program must produce correct (if unoptimized) code whether the profile
is present, partial, stale, or garbage. This module makes that contract
operational:

* :class:`ProfilePolicy` — what to do when profile data is missing, stale,
  corrupt, or a budgeted pass runs out of fuel:

  - ``STRICT``: raise, exactly as the pre-policy library did. For tests and
    batch pipelines that want corruption to be loud.
  - ``WARN``: degrade (fall back to the unoptimized behaviour), record the
    reason, and print a one-line warning to stderr.
  - ``IGNORE``: degrade and record the reason silently.

* :class:`DegradationLog` — an append-only, thread-safe record of every
  degradation taken, so "the optimizer silently did nothing" is never the
  story: callers can always ask *which* fallback fired and *why*.

* :func:`degrade` — the single choke point every subsystem routes its
  failures through; policy and log are ambient (:mod:`contextvars`), so a
  ``profile-query`` deep inside an expansion degrades under the policy of
  the :class:`~repro.scheme.pipeline.SchemeSystem` that started the compile.

* :class:`StepBudget` — interpreter/VM fuel, the timeout mechanism of the
  resumable three-pass workflow (a pass that exceeds its budget raises
  :class:`~repro.core.errors.StepBudgetExceeded` and the workflow falls
  down its degradation chain instead of hanging).
"""

from __future__ import annotations

import contextlib
import contextvars
import enum
import sys
import threading
from dataclasses import dataclass

from repro.core.errors import ProfileError, StepBudgetExceeded
from repro.obs.tracer import active_tracer

__all__ = [
    "ProfilePolicy",
    "Degradation",
    "DegradationLog",
    "StepBudget",
    "current_profile_policy",
    "current_degradation_log",
    "using_profile_policy",
    "degrade",
]


class ProfilePolicy(enum.Enum):
    """What to do when profile data cannot be used as intended."""

    STRICT = "strict"
    WARN = "warn"
    IGNORE = "ignore"

    @classmethod
    def coerce(cls, value: "ProfilePolicy | str") -> "ProfilePolicy":
        """Accept a policy or its string name (for CLI flags and configs)."""
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value).lower())
        except ValueError:
            names = ", ".join(p.value for p in cls)
            raise ProfileError(
                f"unknown profile policy {value!r} (expected one of: {names})"
            ) from None


@dataclass(frozen=True)
class Degradation:
    """One fallback the library took instead of crashing."""

    #: which subsystem degraded ("load-profile", "profile-query", "expand",
    #: "three-pass", ...)
    stage: str
    #: what was wrong with the profile data (or the run)
    reason: str
    #: what was done instead
    fallback: str

    def __str__(self) -> str:
        text = f"{self.stage}: {self.reason}"
        if self.fallback:
            text += f" — {self.fallback}"
        return text


class DegradationLog:
    """Thread-safe append-only record of degradations taken."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: list[Degradation] = []

    def record(self, entry: Degradation) -> Degradation:
        with self._lock:
            self._entries.append(entry)
        return entry

    def entries(self) -> list[Degradation]:
        with self._lock:
            return list(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def reasons(self) -> list[str]:
        return [str(entry) for entry in self.entries()]

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __iter__(self):
        return iter(self.entries())

    def __bool__(self) -> bool:
        return len(self) > 0

    def __repr__(self) -> str:
        return f"<DegradationLog: {len(self)} entries>"


class StepBudget:
    """Interpreter/VM fuel: a mutable countdown of evaluation steps.

    Exhaustion raises :class:`StepBudgetExceeded` (a
    :class:`~repro.core.errors.PgmpError`), which the three-pass workflow's
    degradation chain treats like any other profile-lifecycle failure. A
    budget is single-use and not thread-safe — create one per pass.
    """

    __slots__ = ("initial", "remaining")

    def __init__(self, steps: int) -> None:
        steps = int(steps)
        if steps < 0:
            raise ValueError(f"step budget must be non-negative, got {steps}")
        self.initial = steps
        self.remaining = steps

    def charge(self, steps: int = 1) -> None:
        """Spend ``steps`` units of fuel; raise when the tank runs dry."""
        self.remaining -= steps
        if self.remaining < 0:
            self.remaining = 0
            raise StepBudgetExceeded(
                f"step budget of {self.initial} steps exhausted"
            )

    @property
    def exhausted(self) -> bool:
        return self.remaining <= 0

    def __repr__(self) -> str:
        return f"<StepBudget {self.remaining}/{self.initial}>"


# -- ambient policy + log -----------------------------------------------------
#
# Like the ambient profile database in repro.core.api, the active policy and
# degradation log are context-local so concurrent compiles with different
# policies never bleed into each other.

_POLICY_VAR: contextvars.ContextVar[ProfilePolicy | None] = contextvars.ContextVar(
    "pgmp_profile_policy", default=None
)
_LOG_VAR: contextvars.ContextVar[DegradationLog | None] = contextvars.ContextVar(
    "pgmp_degradation_log", default=None
)


def current_profile_policy() -> ProfilePolicy:
    """The ambient policy; :attr:`ProfilePolicy.STRICT` when none is scoped.

    Strict is the default so library behaviour outside any
    ``using_profile_policy`` scope is byte-for-byte what it was before
    policies existed: corrupt data raises.
    """
    policy = _POLICY_VAR.get()
    return policy if policy is not None else ProfilePolicy.STRICT


def current_degradation_log() -> DegradationLog | None:
    """The ambient degradation log, if any scope installed one."""
    return _LOG_VAR.get()


@contextlib.contextmanager
def using_profile_policy(
    policy: ProfilePolicy | str, log: DegradationLog | None = None
):
    """Scope the ambient policy (and optionally a log) for the current context."""
    policy_token = _POLICY_VAR.set(ProfilePolicy.coerce(policy))
    log_token = _LOG_VAR.set(log) if log is not None else None
    try:
        yield
    finally:
        if log_token is not None:
            _LOG_VAR.reset(log_token)
        _POLICY_VAR.reset(policy_token)


def degrade(
    stage: str,
    reason: str,
    fallback: str,
    *,
    error: BaseException | None = None,
    policy: ProfilePolicy | None = None,
    log: DegradationLog | None = None,
) -> Degradation:
    """Take (or refuse) a degradation, per policy.

    Under ``STRICT`` this re-raises ``error`` (or a fresh
    :class:`ProfileError`) — the caller's fallback code never runs. Under
    ``WARN``/``IGNORE`` it records a :class:`Degradation` in ``log`` (or
    the ambient log) and returns it; ``WARN`` additionally prints the entry
    as a one-line warning on stderr.
    """
    active = policy if policy is not None else current_profile_policy()
    if active is ProfilePolicy.STRICT:
        if error is not None:
            raise error
        raise ProfileError(f"{stage}: {reason}")
    entry = Degradation(stage=stage, reason=reason, fallback=fallback)
    sink = log if log is not None else current_degradation_log()
    if sink is not None:
        sink.record(entry)
    tracer = active_tracer()
    if tracer is not None:
        tracer.event("degradation", stage, reason=reason, fallback=fallback)
    if active is ProfilePolicy.WARN:
        print(f"pgmp: warning: {entry}", file=sys.stderr)
    return entry
