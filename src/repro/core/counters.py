"""Raw execution counters, as maintained by the underlying profiler.

The paper's design deliberately separates the *profiler's* view (absolute
counts per profile point, one data set per instrumented run) from the
*meta-program's* view (profile weights in ``[0, 1]``, merged across data
sets — see :mod:`repro.core.weights`). :class:`CounterSet` is the profiler
side: a mutable multiset of profile points that instrumented code bumps at
run time.
"""

from __future__ import annotations

import threading
from collections.abc import Iterator, Mapping

from repro.core.profile_point import ProfilePoint

__all__ = ["CounterSet"]


class CounterSet:
    """A mutable map from :class:`ProfilePoint` to execution count.

    Instances are cheap; instrumented evaluators keep one per profiled run
    ("data set" in the paper's terminology). The increment path is kept as
    lean as possible because it sits inside the interpreter's hot loop.

    Thread safety: increments use a lock only when ``threadsafe=True``;
    single-threaded interpreters skip it (the common case, matching the
    paper's single-threaded Scheme systems).
    """

    __slots__ = ("_counts", "_lock", "name")

    def __init__(self, name: str = "dataset", threadsafe: bool = False) -> None:
        self._counts: dict[ProfilePoint, int] = {}
        self._lock: threading.Lock | None = threading.Lock() if threadsafe else None
        self.name = name

    # -- profiler-facing mutation ------------------------------------------

    def increment(self, point: ProfilePoint, by: int = 1) -> None:
        """Bump the counter for ``point``. The instrumented-code hot path."""
        if self._lock is None:
            self._counts[point] = self._counts.get(point, 0) + by
        else:
            with self._lock:
                self._counts[point] = self._counts.get(point, 0) + by

    def incrementer(self, point: ProfilePoint):
        """Return a zero-argument closure that bumps ``point``.

        Instrumentation passes pre-bind the point so the per-execution cost
        is one dict update — the analogue of the single memory increment a
        Ball–Larus counter costs in Chez Scheme.
        """
        counts = self._counts
        if self._lock is None:
            def bump() -> None:
                counts[point] = counts.get(point, 0) + 1
        else:
            lock = self._lock

            def bump() -> None:
                with lock:
                    counts[point] = counts.get(point, 0) + 1

        return bump

    def clear(self) -> None:
        """Forget all counts (start a new data set in place)."""
        if self._lock is None:
            self._counts.clear()
        else:
            with self._lock:
                self._counts.clear()

    # -- meta-program-facing queries ---------------------------------------

    def count(self, point: ProfilePoint) -> int:
        """The absolute count for ``point`` (0 when never executed)."""
        return self._counts.get(point, 0)

    def max_count(self) -> int:
        """The count of the most-executed point (0 for an empty set).

        This is the normalization denominator for profile weights.
        """
        return max(self._counts.values(), default=0)

    def total(self) -> int:
        """Sum of all counts — the data-set size used in weighted merging."""
        return sum(self._counts.values())

    def snapshot(self) -> dict[ProfilePoint, int]:
        """An immutable-by-convention copy of the current counts."""
        if self._lock is None:
            return dict(self._counts)
        with self._lock:
            return dict(self._counts)

    def points(self) -> Iterator[ProfilePoint]:
        yield from self._counts

    def as_key_mapping(self) -> dict[str, int]:
        """Counts keyed by serialized point keys (for storage)."""
        return {point.key(): count for point, count in self._counts.items()}

    @classmethod
    def from_key_mapping(
        cls, mapping: Mapping[str, int], name: str = "dataset"
    ) -> "CounterSet":
        """Rebuild a counter set from its stored form."""
        cs = cls(name=name)
        for key, count in mapping.items():
            cs._counts[ProfilePoint.from_key(key)] = int(count)
        return cs

    # -- dunder conveniences -------------------------------------------------

    def __len__(self) -> int:
        return len(self._counts)

    def __contains__(self, point: object) -> bool:
        return point in self._counts

    def __iter__(self) -> Iterator[ProfilePoint]:
        return iter(self._counts)

    def __repr__(self) -> str:
        return f"<CounterSet {self.name!r}: {len(self._counts)} points, total {self.total()}>"
