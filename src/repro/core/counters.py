"""Raw execution counters, as maintained by the underlying profiler.

The paper's design deliberately separates the *profiler's* view (absolute
counts per profile point, one data set per instrumented run) from the
*meta-program's* view (profile weights in ``[0, 1]``, merged across data
sets — see :mod:`repro.core.weights`). :class:`CounterSet` is the profiler
side: a mutable multiset of profile points that instrumented code bumps at
run time.

Two concrete counter implementations share one interface
(:class:`BaseCounterSet`), so instrumenters are parametric over *how*
counts are kept, just as the Figure-4 API is parametric over the syntax
substrate:

* :class:`CounterSet` — a single dict, optionally guarded by a lock. The
  right choice for the paper's single-threaded Scheme systems.
* :class:`ShardedCounterSet` — one shard (plain dict) per thread, merged
  at :meth:`~BaseCounterSet.snapshot` time. The increment hot path takes
  no lock at all (PROMPT-style per-thread counters), so instrumented code
  can run inside a ``ThreadPoolExecutor`` without serializing on a single
  mutex or losing counts.
"""

from __future__ import annotations

import threading
from collections.abc import Iterator, Mapping

from repro.core.errors import ProfileError
from repro.core.profile_point import ProfilePoint

__all__ = ["BaseCounterSet", "CounterSet", "ShardedCounterSet"]


class BaseCounterSet:
    """The shared incrementer interface instrumenters program against.

    Concrete subclasses provide storage (:meth:`increment`,
    :meth:`incrementer`, :meth:`snapshot`, :meth:`clear`, :meth:`count`);
    every read-side query is defined here in terms of :meth:`snapshot`, so
    reads are always computed over a *consistent* copy of the counts — no
    query ever iterates live storage that another thread may be resizing.
    """

    __slots__ = ("name",)

    def __init__(self, name: str = "dataset") -> None:
        self.name = name

    # -- profiler-facing mutation (storage-specific) -----------------------

    def increment(self, point: ProfilePoint, by: int = 1) -> None:
        """Bump the counter for ``point``. The instrumented-code hot path."""
        raise NotImplementedError

    def incrementer(self, point: ProfilePoint):
        """Return a zero-argument closure that bumps ``point``.

        Instrumentation passes pre-bind the point so the per-execution cost
        is one dict update — the analogue of the single memory increment a
        Ball–Larus counter costs in Chez Scheme.
        """
        raise NotImplementedError

    def clear(self) -> None:
        """Forget all counts (start a new data set in place)."""
        raise NotImplementedError

    def snapshot(self) -> dict[ProfilePoint, int]:
        """A consistent, immutable-by-convention copy of the current counts."""
        raise NotImplementedError

    def count(self, point: ProfilePoint) -> int:
        """The absolute count for ``point`` (0 when never executed)."""
        raise NotImplementedError

    # -- delta application (continuous-profiling support) ------------------

    def apply_increments(self, increments: Mapping[ProfilePoint, int]) -> None:
        """Add a batch of counter increments (a *delta*) to this set.

        The bulk-apply path used by the :mod:`repro.service` aggregator:
        applying the same counters a worker accumulated locally must yield
        the same totals as if the worker had incremented this set directly.
        Increments must be non-negative — deltas carry counts *since the
        last flush*, never corrections.
        """
        for point, by in increments.items():
            by = int(by)
            if by < 0:
                raise ProfileError(
                    f"delta increment must be non-negative, got {by} for {point}"
                )
            if by:
                self.increment(point, by)

    def apply_key_increments(self, increments: Mapping[str, int]) -> None:
        """:meth:`apply_increments` over serialized point keys (wire form)."""
        self.apply_increments(
            {ProfilePoint.from_key(key): by for key, by in increments.items()}
        )

    # -- meta-program-facing queries (snapshot-based, race-free) -----------

    def max_count(self) -> int:
        """The count of the most-executed point (0 for an empty set).

        This is the normalization denominator for profile weights.
        """
        return max(self.snapshot().values(), default=0)

    def total(self) -> int:
        """Sum of all counts — the data-set size used in weighted merging."""
        return sum(self.snapshot().values())

    def points(self) -> Iterator[ProfilePoint]:
        yield from self.snapshot()

    def as_key_mapping(self) -> dict[str, int]:
        """Counts keyed by serialized point keys (for storage)."""
        return {point.key(): count for point, count in self.snapshot().items()}

    # -- dunder conveniences -----------------------------------------------

    def __len__(self) -> int:
        return len(self.snapshot())

    def __contains__(self, point: object) -> bool:
        return point in self.snapshot()

    def __iter__(self) -> Iterator[ProfilePoint]:
        return iter(self.snapshot())

    def __repr__(self) -> str:
        snap = self.snapshot()
        return (
            f"<{type(self).__name__} {self.name!r}: "
            f"{len(snap)} points, total {sum(snap.values())}>"
        )


class CounterSet(BaseCounterSet):
    """A mutable map from :class:`ProfilePoint` to execution count.

    Instances are cheap; instrumented evaluators keep one per profiled run
    ("data set" in the paper's terminology). The increment path is kept as
    lean as possible because it sits inside the interpreter's hot loop.

    Thread safety: with ``threadsafe=True`` every access (increments *and*
    reads) takes the lock, so snapshots taken mid-run are consistent;
    single-threaded interpreters skip the lock entirely (the common case,
    matching the paper's single-threaded Scheme systems). For concurrent
    workloads where lock contention matters, prefer
    :class:`ShardedCounterSet`.
    """

    __slots__ = ("_counts", "_lock")

    def __init__(self, name: str = "dataset", threadsafe: bool = False) -> None:
        super().__init__(name=name)
        self._counts: dict[ProfilePoint, int] = {}
        self._lock: threading.Lock | None = threading.Lock() if threadsafe else None

    # -- profiler-facing mutation ------------------------------------------

    def increment(self, point: ProfilePoint, by: int = 1) -> None:
        if self._lock is None:
            self._counts[point] = self._counts.get(point, 0) + by
        else:
            with self._lock:
                self._counts[point] = self._counts.get(point, 0) + by

    def incrementer(self, point: ProfilePoint):
        counts = self._counts
        if self._lock is None:
            def bump() -> None:
                counts[point] = counts.get(point, 0) + 1
        else:
            lock = self._lock

            def bump() -> None:
                with lock:
                    counts[point] = counts.get(point, 0) + 1

        return bump

    def clear(self) -> None:
        if self._lock is None:
            self._counts.clear()
        else:
            with self._lock:
                self._counts.clear()

    def apply_increments(self, increments: Mapping[ProfilePoint, int]) -> None:
        # Bulk apply under a single lock acquisition (not one per point),
        # and never half-applied from a locked reader's point of view.
        for by in increments.values():
            if int(by) < 0:
                raise ProfileError(
                    f"delta increment must be non-negative, got {by}"
                )
        if self._lock is None:
            for point, by in increments.items():
                if by:
                    self._counts[point] = self._counts.get(point, 0) + int(by)
        else:
            with self._lock:
                for point, by in increments.items():
                    if by:
                        self._counts[point] = self._counts.get(point, 0) + int(by)

    # -- meta-program-facing queries ---------------------------------------

    def count(self, point: ProfilePoint) -> int:
        # A single-key dict read needs no iteration; still take the lock in
        # threadsafe mode so a read never observes a half-applied update.
        if self._lock is None:
            return self._counts.get(point, 0)
        with self._lock:
            return self._counts.get(point, 0)

    def snapshot(self) -> dict[ProfilePoint, int]:
        if self._lock is None:
            return dict(self._counts)
        with self._lock:
            return dict(self._counts)

    @classmethod
    def from_key_mapping(
        cls, mapping: Mapping[str, int], name: str = "dataset"
    ) -> "CounterSet":
        """Rebuild a counter set from its stored form."""
        cs = cls(name=name)
        for key, count in mapping.items():
            cs._counts[ProfilePoint.from_key(key)] = int(count)
        return cs


class ShardedCounterSet(BaseCounterSet):
    """Per-thread sharded counters: lock-free increments, merge on snapshot.

    Each thread gets its own shard (a plain dict) the first time it
    increments; the hot path is then a single un-locked dict update on
    thread-private storage. :meth:`snapshot` merges all shards — the only
    lock in the design guards the shard *registry*, taken once per thread
    lifetime plus once per snapshot, never per increment.

    Merging is additive, so N threads × M increments always sums to exactly
    N×M: increments cannot be lost to a read-modify-write race the way they
    can on a shared dict without a lock.
    """

    __slots__ = ("_local", "_registry", "_registry_lock")

    def __init__(self, name: str = "dataset") -> None:
        super().__init__(name=name)
        self._local = threading.local()
        #: Every shard ever handed out, including those of finished threads
        #: (their counts must survive the thread).
        self._registry: list[dict[ProfilePoint, int]] = []
        self._registry_lock = threading.Lock()

    def _shard(self) -> dict[ProfilePoint, int]:
        try:
            return self._local.shard
        except AttributeError:
            shard: dict[ProfilePoint, int] = {}
            with self._registry_lock:
                self._registry.append(shard)
            self._local.shard = shard
            return shard

    # -- profiler-facing mutation ------------------------------------------

    def increment(self, point: ProfilePoint, by: int = 1) -> None:
        shard = self._shard()
        shard[point] = shard.get(point, 0) + by

    def incrementer(self, point: ProfilePoint):
        local = self._local
        make_shard = self._shard

        def bump() -> None:
            try:
                shard = local.shard
            except AttributeError:
                shard = make_shard()
            shard[point] = shard.get(point, 0) + 1

        return bump

    def clear(self) -> None:
        """Forget all counts. Best-effort under concurrency: increments
        racing with ``clear`` may land either side of it."""
        with self._registry_lock:
            for shard in self._registry:
                shard.clear()

    # -- meta-program-facing queries ---------------------------------------

    def snapshot(self) -> dict[ProfilePoint, int]:
        with self._registry_lock:
            shards = list(self._registry)
        merged: dict[ProfilePoint, int] = {}
        for shard in shards:
            items = self._copy_shard(shard)
            for point, count in items:
                merged[point] = merged.get(point, 0) + count
        return merged

    @staticmethod
    def _copy_shard(shard: dict[ProfilePoint, int]):
        # The owning thread may insert a new key mid-copy; retry until we
        # get a clean pass (resizes are rare — bounded by distinct points).
        while True:
            try:
                return list(shard.items())
            except RuntimeError:
                continue

    def count(self, point: ProfilePoint) -> int:
        with self._registry_lock:
            shards = list(self._registry)
        return sum(shard.get(point, 0) for shard in shards)

    @property
    def shard_count(self) -> int:
        """How many per-thread shards exist (diagnostics / tests)."""
        with self._registry_lock:
            return len(self._registry)
