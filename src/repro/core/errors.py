"""Exception hierarchy for the PGMP (profile-guided meta-programming) library.

Every exception raised deliberately by this library derives from
:class:`PgmpError`, so callers can catch library failures with a single
``except`` clause while letting genuine bugs (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class PgmpError(Exception):
    """Base class for all errors raised by the repro library."""


class ProfileError(PgmpError):
    """Base class for errors in the profiling subsystem."""


class MissingProfileError(ProfileError):
    """A profile query was made against a point with no recorded data.

    The Figure-4 API treats missing data as weight ``0.0`` by default; this
    exception is raised only when the caller explicitly asks for strict
    behaviour (``profile_query(..., strict=True)``).
    """


class ProfileFormatError(ProfileError):
    """A stored profile file could not be parsed or failed validation."""


class StaleProfileError(ProfileFormatError):
    """A stored data set's source fingerprint no longer matches the source.

    Profiles collected against old source would silently mis-weight the new
    one; strict loading refuses them, lenient loading quarantines them.
    """


class StepBudgetExceeded(PgmpError):
    """An interpreter or VM run exceeded its step budget (fuel).

    The resumable three-pass workflow uses budgets as per-pass timeouts; a
    pass that exhausts its budget triggers the degradation chain instead of
    hanging the whole compile.
    """


class ProfilePointError(PgmpError):
    """A profile point was constructed or used incorrectly."""


class ServiceError(PgmpError):
    """Base class for errors in the continuous-profiling service layer
    (:mod:`repro.service`): delta shipping, aggregation, recompilation."""


class DeltaFormatError(ServiceError):
    """A profile delta (or wire frame) could not be parsed or validated.

    The aggregator treats these like corrupt profile data sets: the frame
    is rejected (and counted) rather than crashing the server, because
    profile data is advisory."""


class BackpressureError(ServiceError):
    """A shipper's bounded delta queue overflowed and spilling was
    impossible or disabled.

    Raised only under a ``STRICT`` profile policy; ``warn``/``ignore``
    degrade by dropping the oldest delta with a recorded reason."""


class SubstrateError(PgmpError):
    """An operation required a meta-programming substrate that was not active,
    or an expression type the active substrate does not understand."""


class SchemeError(PgmpError):
    """Base class for errors in the Scheme substrate."""


class ReaderError(SchemeError):
    """The S-expression reader encountered malformed input.

    Carries the source location of the offending text when available.
    """

    def __init__(self, message: str, filename: str = "<unknown>", line: int = 0, column: int = 0):
        super().__init__(f"{filename}:{line}:{column}: {message}")
        self.filename = filename
        self.line = line
        self.column = column


class ExpandError(SchemeError):
    """Macro expansion failed (unbound syntax, bad form, pattern mismatch)."""


class PatternError(ExpandError):
    """A ``syntax-case`` pattern was ill-formed (not a match failure)."""


class TemplateError(ExpandError):
    """A syntax template was ill-formed or used a variable at the wrong
    ellipsis depth."""


class EvalError(SchemeError):
    """A run-time error in the Scheme interpreter."""


class SchemeRecursionError(EvalError):
    """Deep non-tail recursion exhausted the Python stack.

    Mirrors :class:`StepBudgetExceeded`: a resource-exhaustion failure the
    program caused, reported as a structured Scheme error carrying the
    innermost known source location instead of escaping as a raw Python
    ``RecursionError``. Both evaluator backends raise this type.
    """

    def __init__(self, message: str, srcloc: object | None = None) -> None:
        super().__init__(message)
        self.srcloc = srcloc

    @classmethod
    def at(cls, srcloc: object | None) -> "SchemeRecursionError":
        message = "maximum recursion depth exceeded (deep non-tail recursion)"
        if srcloc is not None:
            error = cls(f"{message} (at {srcloc})", srcloc)
            # The innermost frame located it; outer call sites must not
            # re-attach their own locations (same convention as EvalError).
            error.located = True  # type: ignore[attr-defined]
            return error
        return cls(message)


class SchemeUserError(EvalError):
    """Raised by the Scheme ``error`` primitive (a user-level error)."""

    def __init__(self, who: object, message: str, irritants: tuple = ()):
        self.who = who
        self.message = message
        self.irritants = irritants
        parts = [str(message)]
        if who:
            parts.insert(0, f"{who}:")
        if irritants:
            parts.append(" ".join(repr(x) for x in irritants))
        super().__init__(" ".join(parts))


class CompileError(PgmpError):
    """The block-level compiler rejected a core form."""


class VMError(PgmpError):
    """The block-level virtual machine hit an invalid state."""


class MacroError(PgmpError):
    """The Python-AST macro expander failed."""
