"""The paper's Figure-4 API, parametric over the meta-programming substrate.

Figure 4 of the paper sketches five operations plus an ambient
``(current-profile-information)`` object::

    (make-profile-point)      -> ProfilePoint
    (annotate-expr e pp)      -> SyntaxObject
    (profile-query e)         -> ProfileWeight
    (store-profile f)         -> Null
    (load-profile f)          -> ProfileInformation

The design is *parametric over the meta-programming system*: ``SyntaxObject``
"stands for the type of source expressions on which meta-programs operate".
This module realizes that parametricity with a small
:class:`SyntaxSubstrate` protocol — each substrate (the Scheme syntax objects
of :mod:`repro.scheme`, the Python ``ast`` nodes of :mod:`repro.pyast`)
registers how to read and replace the profile point of *its* expression
type. The five API functions then work unchanged on either kind of
expression, which is exactly the generality claim of the paper's Section 3.
"""

from __future__ import annotations

import contextlib
import os
from typing import IO, Protocol, runtime_checkable

from repro.core.database import ProfileDatabase
from repro.core.errors import SubstrateError
from repro.core.profile_point import (
    ProfilePoint,
    make_profile_point,
    reset_generated_points,
)
from repro.core.srcloc import SourceLocation

__all__ = [
    "SyntaxSubstrate",
    "register_substrate",
    "current_profile_information",
    "set_profile_information",
    "using_profile_information",
    "make_profile_point",
    "reset_generated_points",
    "annotate_expr",
    "profile_query",
    "point_of_expr",
    "store_profile",
    "load_profile",
]


@runtime_checkable
class SyntaxSubstrate(Protocol):
    """What a meta-programming system must provide to host the Figure-4 API.

    The profiler side (how counters actually get bumped) is the substrate's
    own business; the API only needs to map expressions to profile points.
    """

    def handles(self, expr: object) -> bool:
        """Whether ``expr`` is this substrate's expression type."""
        ...

    def point_of(self, expr: object) -> ProfilePoint | None:
        """The profile point currently associated with ``expr``, if any."""
        ...

    def with_point(self, expr: object, point: ProfilePoint) -> object:
        """A copy of ``expr`` associated with ``point`` (replacing any prior
        point — expressions carry at most one)."""
        ...


_SUBSTRATES: list[SyntaxSubstrate] = []


def register_substrate(substrate: SyntaxSubstrate) -> None:
    """Register a meta-programming substrate with the generic API.

    Substrates are consulted in registration order; registering the same
    object twice is a no-op.
    """
    if substrate not in _SUBSTRATES:
        _SUBSTRATES.append(substrate)


def _substrate_for(expr: object) -> SyntaxSubstrate:
    for substrate in _SUBSTRATES:
        if substrate.handles(expr):
            return substrate
    raise SubstrateError(
        f"no registered meta-programming substrate understands expressions "
        f"of type {type(expr).__name__}"
    )


# -- (current-profile-information) ------------------------------------------

_CURRENT_PROFILE = ProfileDatabase()


def current_profile_information() -> ProfileDatabase:
    """The ambient profile database, per the paper's Section 3.3."""
    return _CURRENT_PROFILE


def set_profile_information(db: ProfileDatabase) -> ProfileDatabase:
    """Replace the ambient profile database; returns the previous one."""
    global _CURRENT_PROFILE
    previous = _CURRENT_PROFILE
    _CURRENT_PROFILE = db
    return previous


@contextlib.contextmanager
def using_profile_information(db: ProfileDatabase):
    """Scoped replacement of the ambient database (tests, nested compiles)."""
    previous = set_profile_information(db)
    try:
        yield db
    finally:
        set_profile_information(previous)


# -- the five Figure-4 operations ---------------------------------------------
# make_profile_point is re-exported from repro.core.profile_point unchanged.


def annotate_expr(expr: object, point: ProfilePoint) -> object:
    """``(annotate-expr e pp)``: associate ``e`` with ``pp``.

    The returned expression is associated with ``pp``, *replacing* any other
    profile point ``e`` carried (the at-most-one-point invariant of Section
    3.1). The underlying profiler will increment the counter for ``pp``
    whenever the returned expression is executed.
    """
    return _substrate_for(expr).with_point(expr, point)


def point_of_expr(expr: object) -> ProfilePoint | None:
    """The profile point associated with ``expr``, or ``None``.

    Not part of Figure 4 as such, but both implementations need it (it is
    how ``profile-query`` resolves an expression to a counter).
    """
    if isinstance(expr, ProfilePoint):
        return expr
    if isinstance(expr, SourceLocation):
        return ProfilePoint.for_location(expr)
    return _substrate_for(expr).point_of(expr)


def profile_query(expr: object, strict: bool = False) -> float:
    """``(profile-query e)``: the profile weight of ``e``'s profile point.

    Accepts a syntax object of any registered substrate, a bare
    :class:`ProfilePoint`, or a :class:`SourceLocation`. Expressions with no
    associated point — and points with no recorded data — read as 0.0, so
    meta-programs degrade gracefully when run before any profiling.
    """
    point = point_of_expr(expr)
    if point is None:
        return 0.0
    return current_profile_information().query(point, strict=strict)


def store_profile(file: str | os.PathLike[str] | IO[str]) -> None:
    """``(store-profile f)``: persist the ambient profile information."""
    current_profile_information().store(file)


def load_profile(file: str | os.PathLike[str] | IO[str]) -> ProfileDatabase:
    """``(load-profile f)``: load stored profile information and install it
    as the ambient database (returning it)."""
    db = ProfileDatabase.load(file)
    set_profile_information(db)
    return db
