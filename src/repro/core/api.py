"""The paper's Figure-4 API, parametric over the meta-programming substrate.

Figure 4 of the paper sketches five operations plus an ambient
``(current-profile-information)`` object::

    (make-profile-point)      -> ProfilePoint
    (annotate-expr e pp)      -> SyntaxObject
    (profile-query e)         -> ProfileWeight
    (store-profile f)         -> Null
    (load-profile f)          -> ProfileInformation

The design is *parametric over the meta-programming system*: ``SyntaxObject``
"stands for the type of source expressions on which meta-programs operate".
This module realizes that parametricity with a small
:class:`SyntaxSubstrate` protocol — each substrate (the Scheme syntax objects
of :mod:`repro.scheme`, the Python ``ast`` nodes of :mod:`repro.pyast`)
registers how to read and replace the profile point of *its* expression
type. The five API functions then work unchanged on either kind of
expression, which is exactly the generality claim of the paper's Section 3.
"""

from __future__ import annotations

import contextlib
import contextvars
import os
from typing import IO, Protocol, runtime_checkable

from repro.core.database import ProfileDatabase
from repro.core.errors import ProfileError, SubstrateError
from repro.core.policy import degrade
from repro.core.profile_point import (
    ProfilePoint,
    make_profile_point,
    reset_generated_points,
)
from repro.core.srcloc import SourceLocation
from repro.obs.tracer import active_tracer
from repro.profiling.confidence import DEFAULT_ERROR_BAR_THRESHOLD

__all__ = [
    "SyntaxSubstrate",
    "register_substrate",
    "current_profile_information",
    "set_profile_information",
    "using_profile_information",
    "make_profile_point",
    "reset_generated_points",
    "annotate_expr",
    "profile_query",
    "point_of_expr",
    "store_profile",
    "load_profile",
]


@runtime_checkable
class SyntaxSubstrate(Protocol):
    """What a meta-programming system must provide to host the Figure-4 API.

    The profiler side (how counters actually get bumped) is the substrate's
    own business; the API only needs to map expressions to profile points.
    """

    def handles(self, expr: object) -> bool:
        """Whether ``expr`` is this substrate's expression type."""
        ...

    def point_of(self, expr: object) -> ProfilePoint | None:
        """The profile point currently associated with ``expr``, if any."""
        ...

    def with_point(self, expr: object, point: ProfilePoint) -> object:
        """A copy of ``expr`` associated with ``point`` (replacing any prior
        point — expressions carry at most one)."""
        ...


_SUBSTRATES: list[SyntaxSubstrate] = []


def register_substrate(substrate: SyntaxSubstrate) -> None:
    """Register a meta-programming substrate with the generic API.

    Substrates are consulted in registration order; registering the same
    object twice is a no-op.
    """
    if substrate not in _SUBSTRATES:
        _SUBSTRATES.append(substrate)


def _substrate_for(expr: object) -> SyntaxSubstrate:
    for substrate in _SUBSTRATES:
        if substrate.handles(expr):
            return substrate
    raise SubstrateError(
        f"no registered meta-programming substrate understands expressions "
        f"of type {type(expr).__name__}"
    )


# -- (current-profile-information) ------------------------------------------
#
# The ambient database has two layers:
#
# * a **process-wide default**, replaced by :func:`set_profile_information`
#   (and by ``load_profile`` outside any scope) — what threads and tasks see
#   when nothing more specific is installed;
# * a **context-local override** installed by
#   :func:`using_profile_information` via :class:`contextvars.ContextVar`,
#   so nested compiles and concurrent workers each get a properly scoped
#   database instead of racing on a module global. Threads and asyncio
#   tasks start from their own context, so one worker's scope never leaks
#   into another's.

_DEFAULT_PROFILE = ProfileDatabase()

_PROFILE_VAR: contextvars.ContextVar[ProfileDatabase | None] = contextvars.ContextVar(
    "pgmp_current_profile", default=None
)


def current_profile_information() -> ProfileDatabase:
    """The ambient profile database, per the paper's Section 3.3.

    Resolves the innermost :func:`using_profile_information` scope active
    in the current context, falling back to the process-wide default.
    """
    db = _PROFILE_VAR.get()
    if db is not None:
        return db
    return _DEFAULT_PROFILE


def set_profile_information(db: ProfileDatabase) -> ProfileDatabase:
    """Replace the *process-wide default* database; returns the previous one.

    The installation outlives the current context and is what fresh
    threads observe. It does not pierce an active
    :func:`using_profile_information` scope — code inside such a scope
    keeps seeing the scoped database.
    """
    global _DEFAULT_PROFILE
    previous = _DEFAULT_PROFILE
    _DEFAULT_PROFILE = db
    return previous


def _install_ambient(db: ProfileDatabase) -> None:
    """Install ``db`` where the current code would look it up.

    Inside a :func:`using_profile_information` scope this rebinds the
    scope (so a ``load-profile`` during an expansion is visible to the
    rest of that expansion, and the scope's exit still restores whatever
    was ambient at entry); otherwise it replaces the process-wide default.
    """
    if _PROFILE_VAR.get() is not None:
        _PROFILE_VAR.set(db)
    else:
        set_profile_information(db)


@contextlib.contextmanager
def using_profile_information(db: ProfileDatabase):
    """Scoped replacement of the ambient database (tests, nested compiles).

    Scoping is context-local (:mod:`contextvars`): concurrent tasks that
    each enter their own scope are fully isolated, and nesting restores
    the outer database on exit even if the body raises.
    """
    token = _PROFILE_VAR.set(db)
    try:
        yield db
    finally:
        _PROFILE_VAR.reset(token)


# -- the five Figure-4 operations ---------------------------------------------
# make_profile_point is re-exported from repro.core.profile_point unchanged.


def annotate_expr(expr: object, point: ProfilePoint) -> object:
    """``(annotate-expr e pp)``: associate ``e`` with ``pp``.

    The returned expression is associated with ``pp``, *replacing* any other
    profile point ``e`` carried (the at-most-one-point invariant of Section
    3.1). The underlying profiler will increment the counter for ``pp``
    whenever the returned expression is executed.
    """
    return _substrate_for(expr).with_point(expr, point)


def point_of_expr(expr: object) -> ProfilePoint | None:
    """The profile point associated with ``expr``, or ``None``.

    Not part of Figure 4 as such, but both implementations need it (it is
    how ``profile-query`` resolves an expression to a counter).
    """
    if isinstance(expr, ProfilePoint):
        return expr
    if isinstance(expr, SourceLocation):
        return ProfilePoint.for_location(expr)
    return _substrate_for(expr).point_of(expr)


def profile_query(expr: object, strict: bool = False) -> float:
    """``(profile-query e)``: the profile weight of ``e``'s profile point.

    Accepts a syntax object of any registered substrate, a bare
    :class:`ProfilePoint`, or a :class:`SourceLocation`. Expressions with no
    associated point — and points with no recorded data — read as 0.0, so
    meta-programs degrade gracefully when run before any profiling.

    Profile-data failures (a strict miss, corrupt data sets surfacing at
    merge time) honor the ambient :class:`~repro.core.policy.ProfilePolicy`:
    under ``STRICT`` they raise as before; under ``WARN``/``IGNORE`` the
    query degrades to 0.0 with a recorded reason, so a meta-program never
    crashes mid-expansion on bad profile data.

    Weights that rest on **low-confidence sampled data** — the merged
    database's :meth:`~repro.core.database.ProfileDatabase.confidence_summary`
    has an error bar wider than
    :data:`~repro.profiling.confidence.DEFAULT_ERROR_BAR_THRESHOLD` — are
    routed through the same :func:`~repro.core.policy.degrade` choke
    point instead of being applied silently: ``STRICT`` refuses to
    optimize on them, ``WARN``/``IGNORE`` fall back to 0.0 (so stable
    sorts preserve source order) with the reason recorded.
    """
    point = point_of_expr(expr)
    if point is None:
        return 0.0
    info = current_profile_information()
    try:
        weight = info.query(point, strict=strict)
    except ProfileError as exc:
        degrade(
            "profile-query",
            str(exc),
            f"treating {point} as weight 0.0",
            error=exc,
        )
        weight = 0.0
    confidence = info.confidence_summary()
    if confidence is not None and confidence.is_low():
        from repro.obs.metrics import get_global_metrics

        get_global_metrics().inc("confidence_degradations_total")
        degrade(
            "profile-query",
            f"weight for {point} rests on low-confidence sampled data "
            f"({confidence.describe()}, threshold "
            f"±{DEFAULT_ERROR_BAR_THRESHOLD:.0%})",
            f"treating {point} as weight 0.0",
        )
        weight = 0.0
    tracer = active_tracer()
    if tracer is not None:
        if confidence is not None:
            tracer.record_query(
                point.key(),
                weight,
                mode=confidence.mode,
                error_bar=confidence.error_bar,
            )
        else:
            tracer.record_query(point.key(), weight)
    return weight


def store_profile(file: str | os.PathLike[str] | IO[str]) -> None:
    """``(store-profile f)``: persist the ambient profile information."""
    current_profile_information().store(file)


def load_profile(file: str | os.PathLike[str] | IO[str]) -> ProfileDatabase:
    """``(load-profile f)``: load stored profile information and install it
    as the ambient database (returning it)."""
    db = ProfileDatabase.load(file)
    _install_ambient(db)
    return db
