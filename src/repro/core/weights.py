"""Profile weights — normalized, mergeable profile information (Section 3.2).

A *profile weight* is a number in ``[0, 1]``: the ratio of a profile point's
counter to the counter of the most-executed point *in the same data set*.
Weights exist for two reasons (paper Section 3.2):

1. they give a single value for the **relative importance** of a point, and
2. they make multiple data sets **mergeable** — absolute counts from
   different representative runs are incomparable, but weights merge by a
   (weighted) average.

The worked example from the paper's Figure 3::

    data set 1: (flag email 'important) -> 5,   (flag email 'spam) -> 10
    data set 2: (flag email 'important) -> 100, (flag email 'spam) -> 10

    weights 1:  important -> 5/10 = 0.5,   spam -> 10/10 = 1.0
    weights 2:  important -> 100/100 = 1,  spam -> 10/100 = 0.1
    merged:     important -> (0.5 + 1)/2 = 0.75,  spam -> (1 + 0.1)/2 = 0.55

is reproduced verbatim by ``tests/core/test_weights.py`` and
``benchmarks/bench_fig3_weights.py``.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.core.counters import BaseCounterSet
from repro.core.errors import ProfileError
from repro.core.profile_point import ProfilePoint

__all__ = ["WeightTable", "compute_weights", "merge_weight_tables"]


class WeightTable:
    """An immutable-by-convention map from profile point to weight in [0, 1].

    ``WeightTable`` is what ``store-profile`` persists and what
    ``profile-query`` consults. Missing points have weight ``0.0`` — the
    paper's API never distinguishes "never executed" from "not instrumented"
    at query time.
    """

    __slots__ = ("_weights", "name")

    def __init__(
        self,
        weights: Mapping[ProfilePoint, float] | None = None,
        name: str = "profile",
    ) -> None:
        self._weights: dict[ProfilePoint, float] = {}
        self.name = name
        if weights:
            for point, weight in weights.items():
                self._set(point, weight)

    def _set(self, point: ProfilePoint, weight: float) -> None:
        weight = float(weight)
        if not 0.0 <= weight <= 1.0:
            raise ProfileError(
                f"profile weight out of range [0,1]: {weight!r} for {point}"
            )
        self._weights[point] = weight

    def weight(self, point: ProfilePoint) -> float:
        """The weight of ``point`` (0.0 when absent)."""
        return self._weights.get(point, 0.0)

    def known(self, point: ProfilePoint) -> bool:
        """Whether any data was recorded for ``point``."""
        return point in self._weights

    def points(self) -> list[ProfilePoint]:
        return list(self._weights)

    def items(self):
        return self._weights.items()

    def hottest(self, n: int = 1) -> list[tuple[ProfilePoint, float]]:
        """The ``n`` highest-weighted points, hottest first."""
        return sorted(self._weights.items(), key=lambda kv: -kv[1])[:n]

    def as_key_mapping(self) -> dict[str, float]:
        """Weights keyed by serialized point keys (for storage)."""
        return {point.key(): w for point, w in self._weights.items()}

    @classmethod
    def from_key_mapping(
        cls, mapping: Mapping[str, float], name: str = "profile"
    ) -> "WeightTable":
        table = cls(name=name)
        for key, weight in mapping.items():
            table._set(ProfilePoint.from_key(key), float(weight))
        return table

    def __len__(self) -> int:
        return len(self._weights)

    def __iter__(self):
        return iter(self._weights)

    def __contains__(self, point: object) -> bool:
        return point in self._weights

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WeightTable):
            return NotImplemented
        return self._weights == other._weights

    def __repr__(self) -> str:
        return f"<WeightTable {self.name!r}: {len(self._weights)} points>"


def compute_weights(
    counters: BaseCounterSet | Mapping[ProfilePoint, int],
) -> WeightTable:
    """Normalize absolute counts into profile weights.

    The weight of a point is ``count / max_count`` over the same data set,
    so the hottest point always has weight 1.0 and unexecuted points 0.0.
    An empty data set yields an empty table. Counter sets are snapshotted
    once, so normalizing is consistent even while another thread is still
    incrementing.
    """
    if isinstance(counters, BaseCounterSet):
        name = counters.name
        counts = counters.snapshot()
    else:
        name = "profile"
        counts = dict(counters)
    denominator = max(counts.values(), default=0)
    table = WeightTable(name=name)
    if denominator <= 0:
        return table
    for point, count in counts.items():
        if count < 0:
            raise ProfileError(f"negative execution count {count} for {point}")
        table._set(point, count / denominator)
    return table


def merge_weight_tables(
    tables: Sequence[WeightTable],
    dataset_weights: Sequence[float] | None = None,
) -> WeightTable:
    """Merge weight tables from multiple data sets (paper Figure 3).

    The merged weight of a point is the weighted average of its weight in
    every data set, where a data set that never saw the point contributes
    0.0 — exactly the paper's computation, which divides by the number of
    data sets rather than the number of appearances.

    ``dataset_weights`` lets callers emphasize some representative inputs
    over others ("essentially a weighted average across the data sets");
    they default to equal weights and are normalized to sum to 1.
    """
    if not tables:
        return WeightTable(name="merged")
    if dataset_weights is None:
        dataset_weights = [1.0] * len(tables)
    if len(dataset_weights) != len(tables):
        raise ProfileError(
            f"got {len(tables)} data sets but {len(dataset_weights)} data-set weights"
        )
    if any(w < 0 for w in dataset_weights):
        raise ProfileError("data-set weights must be non-negative")
    total = sum(dataset_weights)
    if total <= 0:
        raise ProfileError("data-set weights must not all be zero")
    fractions = [w / total for w in dataset_weights]

    merged: dict[ProfilePoint, float] = {}
    for table, fraction in zip(tables, fractions):
        for point, weight in table.items():
            merged[point] = merged.get(point, 0.0) + fraction * weight

    result = WeightTable(name="merged")
    for point, weight in merged.items():
        # Clamp tiny float drift so the [0,1] invariant is exact.
        result._set(point, min(1.0, max(0.0, weight)))
    return result
