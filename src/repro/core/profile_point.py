"""Profile points — the paper's abstraction of source expressions (Section 3.1).

A *profile point* uniquely identifies a counter in the underlying profiling
system. The design contract (paper Section 3.1) is:

* every profile point names exactly one counter;
* an expression is associated with *at most one* profile point;
* two expressions with the same profile point bump the same counter;
* two expressions with different profile points bump different counters;
* profilers may implicitly attach points to AST nodes, and meta-programs may
  *manufacture fresh points* for generated code.

Freshly manufactured points must be **deterministic**: the paper's Chez
implementation "deterministically generates fresh source objects by adding a
suffix to the filename of a base source object" (Section 4.1) so that a
meta-program reads back, on the next compile, the profile data its generated
code produced on the previous run. :class:`ProfilePointFactory` reproduces
exactly that scheme.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from functools import lru_cache

from repro.core.errors import ProfilePointError
from repro.core.srcloc import SourceLocation

__all__ = [
    "ProfilePoint",
    "ProfilePointFactory",
    "make_profile_point",
    "reset_generated_points",
]

#: Marker embedded in generated filenames, mirroring the paper's suffix trick.
GENERATED_MARKER = "%pgmp"


@dataclass(frozen=True, slots=True)
class ProfilePoint:
    """An identifier for one profile counter.

    A profile point is just a :class:`SourceLocation` plus a flag recording
    whether it was manufactured by a meta-program (as opposed to implicitly
    attached by the reader/profiler). Identity — and therefore which counter
    gets bumped — is determined entirely by the location.
    """

    location: SourceLocation
    generated: bool = False

    def key(self) -> str:
        """Stable string key used by counter tables and stored profiles."""
        return self.location.key()

    @classmethod
    def from_key(cls, key: str) -> "ProfilePoint":
        if cls is ProfilePoint:
            # The aggregator parses the same hot keys on every delta it
            # ingests; memoizing the (pure, immutable) parse roughly
            # halves the batch-ingest apply cost.
            return _parse_key(key)
        loc = SourceLocation.from_key(key)
        return cls(location=loc, generated=GENERATED_MARKER in loc.filename)

    @classmethod
    def for_location(cls, location: SourceLocation) -> "ProfilePoint":
        """The implicit profile point of a source expression at ``location``."""
        return cls(location=location, generated=False)

    def __str__(self) -> str:
        tag = "generated " if self.generated else ""
        return f"<{tag}profile-point {self.location}>"


@lru_cache(maxsize=1 << 16)
def _parse_key(key: str) -> ProfilePoint:
    loc = SourceLocation.from_key(key)
    return ProfilePoint(location=loc, generated=GENERATED_MARKER in loc.filename)


class ProfilePointFactory:
    """Deterministic generator of fresh profile points.

    Mirrors Section 4.1: a fresh point is derived from a *base* source object
    by appending a suffix to its filename, with a per-base sequence number.
    Two factories created with the same history produce the same points, so
    profile data recorded for generated code in one compile can be queried in
    the next — the property the paper calls generating points
    "deterministically so meta-programs can access the profile information of
    the generated profile point across multiple runs".

    The factory is thread-safe; expanders share one global instance through
    :func:`make_profile_point` and reset it at the start of each expansion via
    :func:`reset_generated_points`.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._sequence: dict[str, int] = {}

    def make(self, base: SourceLocation | ProfilePoint | None = None) -> ProfilePoint:
        """Manufacture the next fresh profile point derived from ``base``.

        With no base, points derive from an anonymous ``<generated>`` file.
        The n-th point manufactured from a given base is always the same,
        independent of what other bases were used in between.
        """
        if isinstance(base, ProfilePoint):
            base = base.location
        if base is None:
            base = SourceLocation("<generated>", 0, 0)
        base_key = base.key()
        with self._lock:
            n = self._sequence.get(base_key, 0) + 1
            self._sequence[base_key] = n
        loc = SourceLocation(
            filename=f"{base.filename}{GENERATED_MARKER}{n}",
            start=base.start,
            end=base.end,
            line=base.line,
            column=base.column,
        )
        return ProfilePoint(location=loc, generated=True)

    def reset(self, base: SourceLocation | ProfilePoint | None = None) -> None:
        """Forget sequence numbers (for ``base`` only, or everything).

        Expanders call this at the start of a compilation so that re-expanding
        the same program manufactures the same points — determinism across
        runs.
        """
        with self._lock:
            if base is None:
                self._sequence.clear()
            else:
                if isinstance(base, ProfilePoint):
                    base = base.location
                self._sequence.pop(base.key(), None)

    def sequence_number(self, base: SourceLocation) -> int:
        """How many points have been manufactured from ``base`` so far."""
        with self._lock:
            return self._sequence.get(base.key(), 0)


#: Process-wide factory used by the Figure-4 API.
_GLOBAL_FACTORY = ProfilePointFactory()


def make_profile_point(
    base: SourceLocation | ProfilePoint | None = None,
) -> ProfilePoint:
    """``(make-profile-point)`` from the paper's Figure 4.

    Generates a profile point deterministically so meta-programs can access
    the profile information of the generated profile point across multiple
    runs. Determinism is relative to the expansion session: call
    :func:`reset_generated_points` when a fresh compilation begins.
    """
    return _GLOBAL_FACTORY.make(base)


def reset_generated_points(base: SourceLocation | ProfilePoint | None = None) -> None:
    """Reset the deterministic sequence of generated profile points."""
    _GLOBAL_FACTORY.reset(base)


def require_point(obj: object) -> ProfilePoint:
    """Coerce ``obj`` to a :class:`ProfilePoint`, raising a helpful error."""
    if isinstance(obj, ProfilePoint):
        return obj
    if isinstance(obj, SourceLocation):
        return ProfilePoint.for_location(obj)
    raise ProfilePointError(
        f"expected a profile point or source location, got {type(obj).__name__}: {obj!r}"
    )
