"""The profile database behind ``(current-profile-information)``.

Implements the associative map from profile points to profile weights that
both of the paper's implementations maintain (Sections 4.1–4.2), plus the
persistence used by ``store-profile`` / ``load-profile``:

* ``store-profile`` "first retrieves the profile information from the
  profiler and computes the profile weights for each source object" — i.e.
  files store *weights*, not raw counts (weights are what merge across data
  sets).
* ``load-profile`` "updates this map from a file"; loading several files (or
  recording several instrumented runs) accumulates data sets which are merged
  per Figure 3.

Costs match Section 4.4: loading is linear in the number of profile points
and querying is amortized constant time (one dict lookup) — properties the
benchmark ``benchmarks/bench_sec44_api_costs.py`` verifies empirically.
"""

from __future__ import annotations

import json
import os
from collections.abc import Sequence
from typing import IO

from repro.core.counters import CounterSet
from repro.core.errors import MissingProfileError, ProfileFormatError
from repro.core.profile_point import ProfilePoint
from repro.core.weights import WeightTable, compute_weights, merge_weight_tables

__all__ = ["ProfileDatabase", "FORMAT_VERSION"]

#: Version tag written into stored profile files.
FORMAT_VERSION = 1


class ProfileDatabase:
    """Merged profile information from any number of data sets.

    A *data set* is one instrumented run (a :class:`WeightTable`, optionally
    with a relative importance). The database exposes the merged view that
    ``profile-query`` consults, recomputing the merge lazily so that hot-path
    queries stay O(1).
    """

    def __init__(self, name: str = "profile-information") -> None:
        self.name = name
        self._datasets: list[WeightTable] = []
        self._dataset_weights: list[float] = []
        self._merged: WeightTable | None = None

    # -- recording data sets -------------------------------------------------

    def record_counters(self, counters: CounterSet, importance: float = 1.0) -> WeightTable:
        """Normalize one instrumented run's counters and add it as a data set."""
        table = compute_weights(counters)
        self.record_weights(table, importance)
        return table

    def record_weights(self, table: WeightTable, importance: float = 1.0) -> None:
        """Add an already-normalized data set."""
        self._datasets.append(table)
        self._dataset_weights.append(float(importance))
        self._merged = None

    def clear(self) -> None:
        """Drop all recorded data sets."""
        self._datasets.clear()
        self._dataset_weights.clear()
        self._merged = None

    @property
    def dataset_count(self) -> int:
        return len(self._datasets)

    def datasets(self) -> list[WeightTable]:
        return list(self._datasets)

    # -- querying -------------------------------------------------------------

    def merged(self) -> WeightTable:
        """The merged weight table across all data sets (cached)."""
        if self._merged is None:
            self._merged = merge_weight_tables(self._datasets, self._dataset_weights)
        return self._merged

    def query(self, point: ProfilePoint, strict: bool = False) -> float:
        """The merged weight of ``point``.

        Unknown points read as 0.0 unless ``strict`` is set, in which case
        :class:`MissingProfileError` is raised — useful for meta-programs
        that must distinguish "no data yet" from "never executed".
        """
        table = self.merged()
        if strict and not table.known(point):
            raise MissingProfileError(f"no profile data recorded for {point}")
        return table.weight(point)

    def known(self, point: ProfilePoint) -> bool:
        return self.merged().known(point)

    def has_data(self) -> bool:
        """Whether any non-empty data set has been recorded or loaded."""
        return any(len(table) for table in self._datasets)

    def point_count(self) -> int:
        return len(self.merged())

    # -- persistence -----------------------------------------------------------

    def to_json_object(self) -> dict:
        """The stored representation: per-data-set weights plus importances."""
        return {
            "format": "pgmp-profile",
            "version": FORMAT_VERSION,
            "name": self.name,
            "datasets": [
                {
                    "name": table.name,
                    "importance": importance,
                    "weights": table.as_key_mapping(),
                }
                for table, importance in zip(self._datasets, self._dataset_weights)
            ],
        }

    @classmethod
    def from_json_object(cls, obj: object) -> "ProfileDatabase":
        if not isinstance(obj, dict):
            raise ProfileFormatError("profile file must contain a JSON object")
        if obj.get("format") != "pgmp-profile":
            raise ProfileFormatError(
                f"not a pgmp profile file (format={obj.get('format')!r})"
            )
        if obj.get("version") != FORMAT_VERSION:
            raise ProfileFormatError(
                f"unsupported profile format version {obj.get('version')!r}"
            )
        db = cls(name=str(obj.get("name", "profile-information")))
        datasets = obj.get("datasets")
        if not isinstance(datasets, list):
            raise ProfileFormatError("profile file missing 'datasets' list")
        for i, entry in enumerate(datasets):
            if not isinstance(entry, dict) or "weights" not in entry:
                raise ProfileFormatError(f"malformed data set #{i} in profile file")
            weights = entry["weights"]
            if not isinstance(weights, dict):
                raise ProfileFormatError(f"data set #{i} weights must be an object")
            table = WeightTable.from_key_mapping(
                weights, name=str(entry.get("name", f"dataset-{i}"))
            )
            db.record_weights(table, float(entry.get("importance", 1.0)))
        return db

    def store(self, file: str | os.PathLike[str] | IO[str]) -> None:
        """``(store-profile f)``: write the recorded weights to ``file``."""
        payload = json.dumps(self.to_json_object(), indent=2, sort_keys=True)
        if hasattr(file, "write"):
            file.write(payload)  # type: ignore[union-attr]
        else:
            with open(file, "w", encoding="utf-8") as handle:
                handle.write(payload)

    @classmethod
    def load(cls, file: str | os.PathLike[str] | IO[str]) -> "ProfileDatabase":
        """``(load-profile f)``: read a stored profile into a fresh database."""
        if hasattr(file, "read"):
            text = file.read()  # type: ignore[union-attr]
        else:
            with open(file, "r", encoding="utf-8") as handle:
                text = handle.read()
        try:
            obj = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ProfileFormatError(f"profile file is not valid JSON: {exc}") from exc
        return cls.from_json_object(obj)

    def load_into(self, file: str | os.PathLike[str] | IO[str]) -> None:
        """Merge the data sets stored in ``file`` into this database."""
        other = ProfileDatabase.load(file)
        for table, importance in zip(other._datasets, other._dataset_weights):
            self.record_weights(table, importance)

    # -- dunder ---------------------------------------------------------------

    def __repr__(self) -> str:
        return (
            f"<ProfileDatabase {self.name!r}: {self.dataset_count} data sets, "
            f"{self.point_count()} merged points>"
        )


def merge_databases(databases: Sequence[ProfileDatabase]) -> ProfileDatabase:
    """Concatenate the data sets of several databases into one."""
    merged = ProfileDatabase(name="merged")
    for db in databases:
        for table, importance in zip(db._datasets, db._dataset_weights):
            merged.record_weights(table, importance)
    return merged
