"""The profile database behind ``(current-profile-information)``.

Implements the associative map from profile points to profile weights that
both of the paper's implementations maintain (Sections 4.1–4.2), plus the
persistence used by ``store-profile`` / ``load-profile``:

* ``store-profile`` "first retrieves the profile information from the
  profiler and computes the profile weights for each source object" — i.e.
  files store *weights*, not raw counts (weights are what merge across data
  sets).
* ``load-profile`` "updates this map from a file"; loading several files (or
  recording several instrumented runs) accumulates data sets which are merged
  per Figure 3.

Costs match Section 4.4: loading is linear in the number of profile points
and querying is amortized constant time (one dict lookup) — properties the
benchmark ``benchmarks/bench_sec44_api_costs.py`` verifies empirically.

Concurrency and crash safety:

* The merged view is a **copy-on-write cache**: recording a data set never
  mutates a table a concurrent ``query`` may be reading — it appends under
  the database lock and bumps a generation counter; the next ``merged()``
  rebuilds from a consistent snapshot and installs a *new* table. Queries
  against the cached table remain one dict lookup, lock-free.
* ``store`` writes to a temporary file in the destination directory and
  atomically ``os.replace``s it into place, so a crash mid-write leaves the
  previous profile intact. Concurrent writers additionally serialize on an
  advisory lock (``fcntl.flock`` on a ``<path>.lock`` sidecar where
  available, a per-path in-process lock otherwise).
"""

from __future__ import annotations

import contextlib
import json
import math
import os
import tempfile
import threading
from collections.abc import Sequence
from typing import IO

from repro.core.counters import BaseCounterSet
from repro.core.errors import MissingProfileError, ProfileError, ProfileFormatError
from repro.core.profile_point import ProfilePoint
from repro.core.weights import WeightTable, compute_weights, merge_weight_tables

__all__ = ["ProfileDatabase", "FORMAT_VERSION"]

#: Version tag written into stored profile files.
FORMAT_VERSION = 1

try:  # pragma: no cover - platform probe
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

#: In-process advisory locks, one per profile path (complements flock,
#: which does not exclude threads sharing a process on all platforms).
_PATH_LOCKS: dict[str, threading.Lock] = {}
_PATH_LOCKS_GUARD = threading.Lock()


def _path_lock(path: str) -> threading.Lock:
    key = os.path.abspath(path)
    with _PATH_LOCKS_GUARD:
        lock = _PATH_LOCKS.get(key)
        if lock is None:
            lock = _PATH_LOCKS[key] = threading.Lock()
        return lock


@contextlib.contextmanager
def _advisory_file_lock(path: str):
    """Serialize concurrent writers of ``path`` (threads and processes)."""
    with _path_lock(path):
        if fcntl is None:
            yield
            return
        lock_path = path + ".lock"
        fd = os.open(lock_path, os.O_CREAT | os.O_RDWR, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(fd, fcntl.LOCK_UN)
        finally:
            os.close(fd)


class ProfileDatabase:
    """Merged profile information from any number of data sets.

    A *data set* is one instrumented run (a :class:`WeightTable`, optionally
    with a relative importance). The database exposes the merged view that
    ``profile-query`` consults, recomputing the merge lazily so that hot-path
    queries stay O(1).

    Thread safety: recording, querying, storing, and loading may all happen
    concurrently. Mutations hold the database lock; readers work from
    snapshots, and the merged table is immutable once built (copy-on-write),
    so a query never observes a half-merged view.
    """

    def __init__(self, name: str = "profile-information") -> None:
        self.name = name
        self._lock = threading.Lock()
        self._datasets: list[WeightTable] = []
        self._dataset_weights: list[float] = []
        #: Copy-on-write merge cache: (generation it was built from, table).
        self._merged: tuple[int, WeightTable] | None = None
        self._generation = 0

    # -- recording data sets -------------------------------------------------

    def record_counters(
        self, counters: BaseCounterSet, importance: float = 1.0
    ) -> WeightTable:
        """Normalize one instrumented run's counters and add it as a data set."""
        table = compute_weights(counters)
        self.record_weights(table, importance)
        return table

    def record_weights(self, table: WeightTable, importance: float = 1.0) -> None:
        """Add an already-normalized data set."""
        with self._lock:
            self._datasets.append(table)
            self._dataset_weights.append(float(importance))
            self._generation += 1

    def clear(self) -> None:
        """Drop all recorded data sets."""
        with self._lock:
            self._datasets.clear()
            self._dataset_weights.clear()
            self._merged = None
            self._generation += 1

    @property
    def dataset_count(self) -> int:
        with self._lock:
            return len(self._datasets)

    def datasets(self) -> list[WeightTable]:
        with self._lock:
            return list(self._datasets)

    def _snapshot(self) -> tuple[int, list[WeightTable], list[float]]:
        """Generation plus consistent copies of the data-set lists."""
        with self._lock:
            return self._generation, list(self._datasets), list(self._dataset_weights)

    # -- querying -------------------------------------------------------------

    def merged(self) -> WeightTable:
        """The merged weight table across all data sets (cached).

        The cache is copy-on-write: once returned, a table is never mutated;
        recording another data set makes the *next* call build a fresh one.
        Concurrent callers may redundantly compute the same merge, but each
        works from a consistent snapshot, so the result is identical.
        """
        with self._lock:
            cached = self._merged
            if cached is not None and cached[0] == self._generation:
                return cached[1]
        generation, datasets, weights = self._snapshot()
        table = merge_weight_tables(datasets, weights)
        with self._lock:
            # Install unless someone already cached a newer generation.
            if self._merged is None or self._merged[0] <= generation:
                self._merged = (generation, table)
        return table

    def query(self, point: ProfilePoint, strict: bool = False) -> float:
        """The merged weight of ``point``.

        Unknown points read as 0.0 unless ``strict`` is set, in which case
        :class:`MissingProfileError` is raised — useful for meta-programs
        that must distinguish "no data yet" from "never executed".
        """
        table = self.merged()
        if strict and not table.known(point):
            raise MissingProfileError(f"no profile data recorded for {point}")
        return table.weight(point)

    def known(self, point: ProfilePoint) -> bool:
        return self.merged().known(point)

    def has_data(self) -> bool:
        """Whether any non-empty data set has been recorded or loaded."""
        return any(len(table) for table in self.datasets())

    def point_count(self) -> int:
        return len(self.merged())

    # -- persistence -----------------------------------------------------------

    def to_json_object(self) -> dict:
        """The stored representation: per-data-set weights plus importances."""
        _, datasets, weights = self._snapshot()
        return {
            "format": "pgmp-profile",
            "version": FORMAT_VERSION,
            "name": self.name,
            "datasets": [
                {
                    "name": table.name,
                    "importance": importance,
                    "weights": table.as_key_mapping(),
                }
                for table, importance in zip(datasets, weights)
            ],
        }

    @classmethod
    def from_json_object(cls, obj: object) -> "ProfileDatabase":
        if not isinstance(obj, dict):
            raise ProfileFormatError("profile file must contain a JSON object")
        if obj.get("format") != "pgmp-profile":
            raise ProfileFormatError(
                f"not a pgmp profile file (format={obj.get('format')!r})"
            )
        if obj.get("version") != FORMAT_VERSION:
            raise ProfileFormatError(
                f"unsupported profile format version {obj.get('version')!r}"
            )
        db = cls(name=str(obj.get("name", "profile-information")))
        datasets = obj.get("datasets")
        if not isinstance(datasets, list):
            raise ProfileFormatError("profile file missing 'datasets' list")
        for i, entry in enumerate(datasets):
            if not isinstance(entry, dict) or "weights" not in entry:
                raise ProfileFormatError(f"malformed data set #{i} in profile file")
            weights = entry["weights"]
            if not isinstance(weights, dict):
                raise ProfileFormatError(f"data set #{i} weights must be an object")
            importance = _validated_importance(entry.get("importance", 1.0), i)
            try:
                table = WeightTable.from_key_mapping(
                    weights, name=str(entry.get("name", f"dataset-{i}"))
                )
            except ProfileFormatError as exc:
                raise ProfileFormatError(f"data set #{i}: {exc}") from exc
            except (ProfileError, TypeError, ValueError) as exc:
                raise ProfileFormatError(
                    f"data set #{i} has invalid weights: {exc}"
                ) from exc
            db.record_weights(table, importance)
        return db

    def store(self, file: str | os.PathLike[str] | IO[str]) -> None:
        """``(store-profile f)``: write the recorded weights to ``file``.

        Writing to a path is crash-safe and multi-writer-safe: the payload
        goes to a temporary file in the destination directory, is flushed
        and fsynced, then atomically renamed over the target via
        ``os.replace`` — a reader (or a crash) can only ever observe the
        old complete profile or the new complete profile. Writers holding
        different databases serialize on an advisory per-path lock.
        """
        payload = json.dumps(self.to_json_object(), indent=2, sort_keys=True)
        if hasattr(file, "write"):
            file.write(payload)  # type: ignore[union-attr]
            return
        path = os.fspath(file)
        directory = os.path.dirname(path) or "."
        with _advisory_file_lock(path):
            fd, tmp_path = tempfile.mkstemp(
                prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    handle.write(payload)
                    handle.flush()
                    os.fsync(handle.fileno())
                # mkstemp creates 0600 files; give the profile the same
                # umask-honoring mode a plain ``open(path, "w")`` would.
                umask = os.umask(0)
                os.umask(umask)
                os.chmod(tmp_path, 0o666 & ~umask)
                os.replace(tmp_path, path)
            except BaseException:
                with contextlib.suppress(OSError):
                    os.unlink(tmp_path)
                raise

    @classmethod
    def load(cls, file: str | os.PathLike[str] | IO[str]) -> "ProfileDatabase":
        """``(load-profile f)``: read a stored profile into a fresh database."""
        if hasattr(file, "read"):
            text = file.read()  # type: ignore[union-attr]
        else:
            with open(file, "r", encoding="utf-8") as handle:
                text = handle.read()
        try:
            obj = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ProfileFormatError(f"profile file is not valid JSON: {exc}") from exc
        return cls.from_json_object(obj)

    def load_into(self, file: str | os.PathLike[str] | IO[str]) -> None:
        """Merge the data sets stored in ``file`` into this database."""
        other = ProfileDatabase.load(file)
        _, datasets, weights = other._snapshot()
        for table, importance in zip(datasets, weights):
            self.record_weights(table, importance)

    # -- dunder ---------------------------------------------------------------

    def __repr__(self) -> str:
        return (
            f"<ProfileDatabase {self.name!r}: {self.dataset_count} data sets, "
            f"{self.point_count()} merged points>"
        )


def _validated_importance(raw: object, index: int) -> float:
    """Validate a stored data-set importance at load time.

    A corrupt importance (negative, NaN, infinite, non-numeric) would
    otherwise only blow up much later inside ``merge_weight_tables`` with
    an error that names no file or data set.
    """
    if isinstance(raw, bool) or not isinstance(raw, (int, float)):
        raise ProfileFormatError(
            f"data set #{index} importance must be a number, got {raw!r}"
        )
    importance = float(raw)
    if not math.isfinite(importance):
        raise ProfileFormatError(
            f"data set #{index} importance must be finite, got {importance!r}"
        )
    if importance < 0:
        raise ProfileFormatError(
            f"data set #{index} importance must be non-negative, got {importance!r}"
        )
    return importance


def merge_databases(databases: Sequence[ProfileDatabase]) -> ProfileDatabase:
    """Concatenate the data sets of several databases into one."""
    merged = ProfileDatabase(name="merged")
    for db in databases:
        _, datasets, weights = db._snapshot()
        for table, importance in zip(datasets, weights):
            merged.record_weights(table, importance)
    return merged
