"""The profile database behind ``(current-profile-information)``.

Implements the associative map from profile points to profile weights that
both of the paper's implementations maintain (Sections 4.1–4.2), plus the
persistence used by ``store-profile`` / ``load-profile``:

* ``store-profile`` "first retrieves the profile information from the
  profiler and computes the profile weights for each source object" — i.e.
  files store *weights*, not raw counts (weights are what merge across data
  sets).
* ``load-profile`` "updates this map from a file"; loading several files (or
  recording several instrumented runs) accumulates data sets which are merged
  per Figure 3.

Costs match Section 4.4: loading is linear in the number of profile points
and querying is amortized constant time (one dict lookup) — properties the
benchmark ``benchmarks/bench_sec44_api_costs.py`` verifies empirically.

Concurrency and crash safety:

* The merged view is a **copy-on-write cache**: recording a data set never
  mutates a table a concurrent ``query`` may be reading — it appends under
  the database lock and bumps a generation counter; the next ``merged()``
  rebuilds from a consistent snapshot and installs a *new* table. Queries
  against the cached table remain one dict lookup, lock-free.
* ``store`` writes to a temporary file in the destination directory and
  atomically ``os.replace``s it into place, so a crash mid-write leaves the
  previous profile intact. Concurrent writers additionally serialize on an
  advisory lock (``fcntl.flock`` on a ``<path>.lock`` sidecar where
  available, a per-path in-process lock otherwise). The sidecar is removed
  after each store so profile directories stay clean.

Versioning and staleness (format version 2):

* Every stored data set may carry **source fingerprints** — a mapping from
  filename to a digest of the source text the profile was collected
  against. Loading with ``sources={filename: current_text}`` detects
  profiles collected against changed source (the dominant real-world PGO
  failure mode) instead of silently mis-weighting the new code.
* Loading is either **strict** (``on_error="raise"``, the default: any
  malformed or stale data set raises :class:`ProfileFormatError` /
  :class:`StaleProfileError`) or **lenient** (``on_error="skip"``: bad data
  sets are quarantined into the database's :class:`QuarantineReport` and
  the healthy remainder loads normally — profile data is advisory, so a
  partially-salvaged profile beats no profile).
* Version-1 files (no fingerprints) still load; their data sets simply
  cannot be staleness-checked.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import math
import os
import tempfile
import threading
from collections.abc import Mapping, Sequence
from dataclasses import dataclass
from typing import IO

from repro.core.counters import BaseCounterSet
from repro.core.errors import (
    MissingProfileError,
    ProfileError,
    ProfileFormatError,
    StaleProfileError,
)
from repro.core.profile_point import ProfilePoint
from repro.core.weights import WeightTable, compute_weights, merge_weight_tables
from repro.profiling.confidence import DatasetConfidence, merge_confidences

__all__ = [
    "ProfileDatabase",
    "QuarantineReport",
    "QuarantinedDataset",
    "FORMAT_VERSION",
    "SUPPORTED_VERSIONS",
    "source_fingerprint",
    "atomic_write_text",
    "merge_databases",
]

#: Version tag written into stored profile files.
FORMAT_VERSION = 2

#: Versions :meth:`ProfileDatabase.from_json_object` accepts. Version 1
#: predates source fingerprints; its data sets load but cannot be
#: staleness-checked.
SUPPORTED_VERSIONS = (1, 2)

try:  # pragma: no cover - platform probe
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

#: In-process advisory locks, one per profile path (complements flock,
#: which does not exclude threads sharing a process on all platforms).
_PATH_LOCKS: dict[str, threading.Lock] = {}
_PATH_LOCKS_GUARD = threading.Lock()


def source_fingerprint(text: str) -> str:
    """A short, stable digest of source text, for staleness detection.

    Stored per data set at ``store`` time and compared at ``load`` time
    against the *current* source: a mismatch means the profile was
    collected against code that has since changed.
    """
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


def _path_lock(path: str) -> threading.Lock:
    key = os.path.abspath(path)
    with _PATH_LOCKS_GUARD:
        lock = _PATH_LOCKS.get(key)
        if lock is None:
            lock = _PATH_LOCKS[key] = threading.Lock()
        return lock


@contextlib.contextmanager
def _advisory_file_lock(path: str):
    """Serialize concurrent writers of ``path`` (threads and processes).

    The ``<path>.lock`` sidecar is removed on exit so profile directories
    do not accumulate lock debris. Removal opens a small cross-process
    window (a process blocked on the unlinked inode and one locking a
    recreated sidecar can both proceed), but the store itself stays atomic
    via ``os.replace`` — the worst case is last-writer-wins between two
    *complete* profiles, never a torn file.
    """
    with _path_lock(path):
        if fcntl is None:
            yield
            return
        lock_path = path + ".lock"
        fd = os.open(lock_path, os.O_CREAT | os.O_RDWR, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(fd, fcntl.LOCK_UN)
        finally:
            os.close(fd)
            with contextlib.suppress(OSError):
                os.unlink(lock_path)


def atomic_write_text(path: str | os.PathLike[str], payload: str) -> None:
    """Crash-safely replace ``path`` with ``payload``.

    The payload goes to a temporary file in the destination directory, is
    flushed and fsynced, then atomically renamed over the target — a reader
    (or a crash) can only ever observe the old complete file or the new
    complete file. Used by profile stores and workflow checkpoints alike.
    """
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    fd, tmp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        # mkstemp creates 0600 files; give the target the same
        # umask-honoring mode a plain ``open(path, "w")`` would.
        umask = os.umask(0)
        os.umask(umask)
        os.chmod(tmp_path, 0o666 & ~umask)
        os.replace(tmp_path, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp_path)
        raise


@dataclass(frozen=True)
class QuarantinedDataset:
    """One data set a lenient load refused to use, and why."""

    #: position of the data set in the stored file
    index: int
    #: stored data-set name (best effort — may be a placeholder if the
    #: entry was too malformed to carry one)
    name: str
    #: "malformed" (failed parsing/validation) or "stale" (source changed)
    kind: str
    #: human-readable explanation
    reason: str

    def __str__(self) -> str:
        return f"data set #{self.index} ({self.name!r}) {self.kind}: {self.reason}"


class QuarantineReport:
    """Data sets a lenient load set aside instead of raising.

    Attached to every :class:`ProfileDatabase` (empty unless a
    ``on_error="skip"`` load found problems), so callers can always answer
    "did everything I profiled actually load?".
    """

    def __init__(self) -> None:
        self.entries: list[QuarantinedDataset] = []

    def add(self, index: int, name: str, kind: str, reason: str) -> QuarantinedDataset:
        entry = QuarantinedDataset(index=index, name=name, kind=kind, reason=reason)
        self.entries.append(entry)
        return entry

    def extend(self, other: "QuarantineReport") -> None:
        self.entries.extend(other.entries)

    def stale(self) -> list[QuarantinedDataset]:
        return [e for e in self.entries if e.kind == "stale"]

    def malformed(self) -> list[QuarantinedDataset]:
        return [e for e in self.entries if e.kind == "malformed"]

    def summary(self) -> str:
        if not self.entries:
            return "no data sets quarantined"
        return "; ".join(str(entry) for entry in self.entries)

    def __len__(self) -> int:
        return len(self.entries)

    def __bool__(self) -> bool:
        return bool(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def __repr__(self) -> str:
        return f"<QuarantineReport: {len(self.entries)} data sets>"


class ProfileDatabase:
    """Merged profile information from any number of data sets.

    A *data set* is one instrumented run (a :class:`WeightTable`, optionally
    with a relative importance and the source fingerprints of the code it
    was collected against). The database exposes the merged view that
    ``profile-query`` consults, recomputing the merge lazily so that hot-path
    queries stay O(1).

    Thread safety: recording, querying, storing, and loading may all happen
    concurrently. Mutations hold the database lock; readers work from
    snapshots, and the merged table is immutable once built (copy-on-write),
    so a query never observes a half-merged view.
    """

    def __init__(self, name: str = "profile-information") -> None:
        self.name = name
        self._lock = threading.Lock()
        self._datasets: list[WeightTable] = []
        self._dataset_weights: list[float] = []
        #: per-data-set {filename: fingerprint} of the profiled source
        self._fingerprints: list[dict[str, str]] = []
        #: per-data-set confidence record; None means exact collection
        self._confidences: list[DatasetConfidence | None] = []
        #: Copy-on-write merge cache: (generation it was built from, table).
        self._merged: tuple[int, WeightTable] | None = None
        #: Fingerprint cache for the merged view, keyed the same way.
        self._merged_fp: tuple[int, str] | None = None
        #: Confidence-summary cache for the merged view, keyed the same way.
        self._merged_conf: tuple[int, DatasetConfidence | None] | None = None
        self._generation = 0
        #: data sets a lenient load set aside (empty for strict loads)
        self.quarantine = QuarantineReport()

    # -- recording data sets -------------------------------------------------

    def record_counters(
        self,
        counters: BaseCounterSet,
        importance: float = 1.0,
        fingerprints: Mapping[str, str] | None = None,
        confidence: DatasetConfidence | None = None,
    ) -> WeightTable:
        """Normalize one instrumented run's counters and add it as a data set."""
        table = compute_weights(counters)
        self.record_weights(table, importance, fingerprints, confidence)
        return table

    def record_weights(
        self,
        table: WeightTable,
        importance: float = 1.0,
        fingerprints: Mapping[str, str] | None = None,
        confidence: DatasetConfidence | None = None,
    ) -> None:
        """Add an already-normalized data set.

        ``fingerprints`` maps filenames to :func:`source_fingerprint`
        digests of the source the data was collected against; they persist
        through ``store``/``load`` and power staleness detection.
        ``confidence`` is the sampling confidence record for data
        reconstructed from a sampled run; ``None`` (the default) declares
        the data exact.
        """
        if confidence is not None and not isinstance(
            confidence, DatasetConfidence
        ):
            raise ProfileError(
                "confidence must be a DatasetConfidence or None, "
                f"got {type(confidence).__name__}"
            )
        with self._lock:
            self._datasets.append(table)
            self._dataset_weights.append(float(importance))
            self._fingerprints.append(dict(fingerprints) if fingerprints else {})
            self._confidences.append(confidence)
            self._generation += 1

    @classmethod
    def from_counter_sets(
        cls,
        counter_sets: Sequence[BaseCounterSet],
        *,
        name: str = "profile-information",
        importances: Sequence[float] | None = None,
        fingerprints: Sequence[Mapping[str, str] | None] | None = None,
        confidences: Sequence[DatasetConfidence | None] | None = None,
    ) -> "ProfileDatabase":
        """Build a database with one data set per counter set.

        The snapshot/normalize/record path the :mod:`repro.service`
        aggregator uses at checkpoint time: each live per-dataset counter
        set becomes one weighted data set, exactly as if a worker had
        called :meth:`record_counters` locally.
        """
        if importances is not None and len(importances) != len(counter_sets):
            raise ProfileError(
                f"got {len(counter_sets)} counter sets but "
                f"{len(importances)} importances"
            )
        if fingerprints is not None and len(fingerprints) != len(counter_sets):
            raise ProfileError(
                f"got {len(counter_sets)} counter sets but "
                f"{len(fingerprints)} fingerprint mappings"
            )
        if confidences is not None and len(confidences) != len(counter_sets):
            raise ProfileError(
                f"got {len(counter_sets)} counter sets but "
                f"{len(confidences)} confidence records"
            )
        db = cls(name=name)
        for i, counters in enumerate(counter_sets):
            db.record_counters(
                counters,
                importances[i] if importances is not None else 1.0,
                fingerprints[i] if fingerprints is not None else None,
                confidences[i] if confidences is not None else None,
            )
        return db

    def clear(self) -> None:
        """Drop all recorded data sets."""
        with self._lock:
            self._datasets.clear()
            self._dataset_weights.clear()
            self._fingerprints.clear()
            self._confidences.clear()
            self._merged = None
            self._merged_fp = None
            self._merged_conf = None
            self._generation += 1

    @property
    def dataset_count(self) -> int:
        with self._lock:
            return len(self._datasets)

    def datasets(self) -> list[WeightTable]:
        with self._lock:
            return list(self._datasets)

    def dataset_fingerprints(self) -> list[dict[str, str]]:
        with self._lock:
            return [dict(fp) for fp in self._fingerprints]

    def dataset_confidences(self) -> list[DatasetConfidence | None]:
        """Per-data-set confidence records, ``None`` meaning exact."""
        with self._lock:
            return list(self._confidences)

    def _snapshot(
        self,
    ) -> tuple[
        int,
        list[WeightTable],
        list[float],
        list[dict[str, str]],
        list[DatasetConfidence | None],
    ]:
        """Generation plus consistent copies of the data-set lists."""
        with self._lock:
            return (
                self._generation,
                list(self._datasets),
                list(self._dataset_weights),
                [dict(fp) for fp in self._fingerprints],
                list(self._confidences),
            )

    # -- querying -------------------------------------------------------------

    def merged(self) -> WeightTable:
        """The merged weight table across all data sets (cached).

        The cache is copy-on-write: once returned, a table is never mutated;
        recording another data set makes the *next* call build a fresh one.
        Concurrent callers may redundantly compute the same merge, but each
        works from a consistent snapshot, so the result is identical.
        """
        with self._lock:
            cached = self._merged
            if cached is not None and cached[0] == self._generation:
                return cached[1]
        generation, datasets, weights, _, _ = self._snapshot()
        table = merge_weight_tables(datasets, weights)
        with self._lock:
            # Install unless someone already cached a newer generation.
            if self._merged is None or self._merged[0] <= generation:
                self._merged = (generation, table)
        return table

    def merged_fingerprint(self) -> str:
        """A short content digest of the merged weight table.

        Stable across processes (it hashes the merged point→weight mapping,
        not object identities) and cached per generation exactly like the
        :meth:`merged` table itself, so hot callers — the compiled-backend
        artifact cache keys every compile on it — pay one dict lookup, not
        a re-hash. Two databases that merge to the same weights share a
        fingerprint even if they got there via different data sets, which
        is precisely the equivalence an artifact cache wants.
        """
        with self._lock:
            cached = self._merged_fp
            if cached is not None and cached[0] == self._generation:
                return cached[1]
            generation = self._generation
        payload = json.dumps(self.merged().as_key_mapping(), sort_keys=True)
        digest = source_fingerprint(payload)
        with self._lock:
            if self._merged_fp is None or self._merged_fp[0] <= generation:
                self._merged_fp = (generation, digest)
        return digest

    def confidence_summary(self) -> DatasetConfidence | None:
        """The merged sampling confidence across all data sets.

        ``None`` when every data set is exact (the overwhelmingly common
        case, and the zero-cost fast path for ``profile_query``); otherwise
        the conservative merge of the sampled records — see
        :func:`repro.profiling.confidence.merge_confidences`. Cached per
        generation exactly like :meth:`merged`.
        """
        with self._lock:
            cached = self._merged_conf
            if cached is not None and cached[0] == self._generation:
                return cached[1]
            generation = self._generation
            summary = merge_confidences(self._confidences)
            self._merged_conf = (generation, summary)
            return summary

    def query(self, point: ProfilePoint, strict: bool = False) -> float:
        """The merged weight of ``point``.

        Unknown points read as 0.0 unless ``strict`` is set, in which case
        :class:`MissingProfileError` is raised — useful for meta-programs
        that must distinguish "no data yet" from "never executed".
        """
        table = self.merged()
        if strict and not table.known(point):
            raise MissingProfileError(f"no profile data recorded for {point}")
        return table.weight(point)

    def known(self, point: ProfilePoint) -> bool:
        return self.merged().known(point)

    def has_data(self) -> bool:
        """Whether any non-empty data set has been recorded or loaded."""
        return any(len(table) for table in self.datasets())

    def point_count(self) -> int:
        return len(self.merged())

    # -- persistence -----------------------------------------------------------

    def to_json_object(self) -> dict:
        """The stored representation: per-data-set weights plus importances,
        source fingerprints, and (for sampled data) confidence records."""
        _, datasets, weights, fingerprints, confidences = self._snapshot()
        entries = []
        for table, importance, fps, conf in zip(
            datasets, weights, fingerprints, confidences
        ):
            entry: dict = {
                "name": table.name,
                "importance": importance,
                "weights": table.as_key_mapping(),
            }
            if fps:
                entry["fingerprints"] = dict(fps)
            # Exact data sets stay byte-identical to pre-sampling stores.
            if conf is not None and conf.is_sampled:
                entry["confidence"] = conf.to_json_object()
            entries.append(entry)
        return {
            "format": "pgmp-profile",
            "version": FORMAT_VERSION,
            "name": self.name,
            "datasets": entries,
        }

    @classmethod
    def from_json_object(
        cls,
        obj: object,
        *,
        on_error: str = "raise",
        sources: Mapping[str, str] | None = None,
    ) -> "ProfileDatabase":
        """Rebuild a database from its stored representation.

        ``on_error="raise"`` (default) keeps strict behaviour: the first
        malformed or stale data set aborts the load. ``on_error="skip"``
        quarantines bad data sets into the returned database's
        :attr:`quarantine` report and loads the rest.

        ``sources`` maps filenames to their *current* source text; any data
        set whose stored fingerprint disagrees is stale. Files the profile
        fingerprints but ``sources`` does not mention are not checked.
        """
        if on_error not in ("raise", "skip"):
            raise ValueError(
                f"on_error must be 'raise' or 'skip', got {on_error!r}"
            )
        if not isinstance(obj, dict):
            raise ProfileFormatError("profile file must contain a JSON object")
        if obj.get("format") != "pgmp-profile":
            raise ProfileFormatError(
                f"not a pgmp profile file (format={obj.get('format')!r})"
            )
        if obj.get("version") not in SUPPORTED_VERSIONS:
            raise ProfileFormatError(
                f"unsupported profile format version {obj.get('version')!r} "
                f"(supported: {', '.join(map(str, SUPPORTED_VERSIONS))})"
            )
        db = cls(name=str(obj.get("name", "profile-information")))
        datasets = obj.get("datasets")
        if not isinstance(datasets, list):
            raise ProfileFormatError("profile file missing 'datasets' list")
        current = (
            {name: source_fingerprint(text) for name, text in sources.items()}
            if sources is not None
            else None
        )
        for i, entry in enumerate(datasets):
            try:
                table, importance, fps, confidence = cls._parse_dataset(entry, i)
            except ProfileFormatError as exc:
                if on_error == "skip":
                    name = (
                        str(entry.get("name", f"dataset-{i}"))
                        if isinstance(entry, dict)
                        else f"dataset-{i}"
                    )
                    db.quarantine.add(i, name, "malformed", str(exc))
                    continue
                raise
            if current is not None and fps:
                changed = sorted(
                    filename
                    for filename, digest in fps.items()
                    if filename in current and current[filename] != digest
                )
                if changed:
                    reason = (
                        f"profile was collected against different source for "
                        f"{', '.join(changed)}"
                    )
                    if on_error == "skip":
                        db.quarantine.add(i, table.name, "stale", reason)
                        continue
                    raise StaleProfileError(f"data set #{i} is stale: {reason}")
            db.record_weights(table, importance, fps, confidence)
        return db

    @staticmethod
    def _parse_dataset(
        entry: object, index: int
    ) -> tuple[WeightTable, float, dict[str, str], DatasetConfidence | None]:
        """Validate one stored data-set entry; raises :class:`ProfileFormatError`."""
        if not isinstance(entry, dict) or "weights" not in entry:
            raise ProfileFormatError(f"malformed data set #{index} in profile file")
        weights = entry["weights"]
        if not isinstance(weights, dict):
            raise ProfileFormatError(f"data set #{index} weights must be an object")
        importance = _validated_importance(entry.get("importance", 1.0), index)
        fps_raw = entry.get("fingerprints", {})
        if not isinstance(fps_raw, dict) or not all(
            isinstance(k, str) and isinstance(v, str) for k, v in fps_raw.items()
        ):
            raise ProfileFormatError(
                f"data set #{index} fingerprints must map filenames to digests"
            )
        confidence: DatasetConfidence | None = None
        if "confidence" in entry:
            try:
                confidence = DatasetConfidence.from_json_object(entry["confidence"])
            except ValueError as exc:
                raise ProfileFormatError(
                    f"data set #{index} has an invalid confidence record: {exc}"
                ) from exc
        try:
            table = WeightTable.from_key_mapping(
                weights, name=str(entry.get("name", f"dataset-{index}"))
            )
        except ProfileFormatError as exc:
            raise ProfileFormatError(f"data set #{index}: {exc}") from exc
        except (ProfileError, TypeError, ValueError) as exc:
            raise ProfileFormatError(
                f"data set #{index} has invalid weights: {exc}"
            ) from exc
        return table, importance, dict(fps_raw), confidence

    def store(self, file: str | os.PathLike[str] | IO[str]) -> None:
        """``(store-profile f)``: write the recorded weights to ``file``.

        Writing to a path is crash-safe and multi-writer-safe: the payload
        goes to a temporary file in the destination directory, is flushed
        and fsynced, then atomically renamed over the target via
        ``os.replace`` — a reader (or a crash) can only ever observe the
        old complete profile or the new complete profile. Writers holding
        different databases serialize on an advisory per-path lock, whose
        ``.lock`` sidecar is cleaned up after the store.
        """
        payload = json.dumps(self.to_json_object(), indent=2, sort_keys=True)
        if hasattr(file, "write"):
            file.write(payload)  # type: ignore[union-attr]
            return
        path = os.fspath(file)
        with _advisory_file_lock(path):
            atomic_write_text(path, payload)

    @classmethod
    def load(
        cls,
        file: str | os.PathLike[str] | IO[str],
        *,
        on_error: str = "raise",
        sources: Mapping[str, str] | None = None,
    ) -> "ProfileDatabase":
        """``(load-profile f)``: read a stored profile into a fresh database.

        See :meth:`from_json_object` for ``on_error`` and ``sources``.
        File-level corruption (unreadable JSON, wrong format marker,
        unsupported version) always raises — there is nothing to salvage;
        per-data-set problems honor ``on_error``.
        """
        try:
            if hasattr(file, "read"):
                text = file.read()  # type: ignore[union-attr]
            else:
                with open(file, "r", encoding="utf-8") as handle:
                    text = handle.read()
        except UnicodeDecodeError as exc:
            raise ProfileFormatError(f"profile file is not text: {exc}") from exc
        try:
            obj = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ProfileFormatError(f"profile file is not valid JSON: {exc}") from exc
        return cls.from_json_object(obj, on_error=on_error, sources=sources)

    def load_into(
        self,
        file: str | os.PathLike[str] | IO[str],
        *,
        on_error: str = "raise",
        sources: Mapping[str, str] | None = None,
    ) -> None:
        """Merge the data sets stored in ``file`` into this database."""
        other = ProfileDatabase.load(file, on_error=on_error, sources=sources)
        _, datasets, weights, fingerprints, confidences = other._snapshot()
        for table, importance, fps, conf in zip(
            datasets, weights, fingerprints, confidences
        ):
            self.record_weights(table, importance, fps, conf)
        self.quarantine.extend(other.quarantine)

    # -- dunder ---------------------------------------------------------------

    def __repr__(self) -> str:
        return (
            f"<ProfileDatabase {self.name!r}: {self.dataset_count} data sets, "
            f"{self.point_count()} merged points>"
        )


def _validated_importance(raw: object, index: int) -> float:
    """Validate a stored data-set importance at load time.

    A corrupt importance (negative, NaN, infinite, non-numeric) would
    otherwise only blow up much later inside ``merge_weight_tables`` with
    an error that names no file or data set.
    """
    if isinstance(raw, bool) or not isinstance(raw, (int, float)):
        raise ProfileFormatError(
            f"data set #{index} importance must be a number, got {raw!r}"
        )
    importance = float(raw)
    if not math.isfinite(importance):
        raise ProfileFormatError(
            f"data set #{index} importance must be finite, got {importance!r}"
        )
    if importance < 0:
        raise ProfileFormatError(
            f"data set #{index} importance must be non-negative, got {importance!r}"
        )
    return importance


def merge_databases(databases: Sequence[ProfileDatabase]) -> ProfileDatabase:
    """Concatenate the data sets of several databases into one.

    Names are preserved rather than dropped: merging databases that all
    share a name keeps it, otherwise the result is named
    ``merged(a+b+...)`` over the distinct input names. Quarantine reports
    travel with their data. Merging nothing is an error — returning an
    empty database would silently read every weight as 0.0.
    """
    if not databases:
        raise ProfileError(
            "merge_databases: no databases given (an empty merge would "
            "silently report weight 0.0 for every point)"
        )
    names: list[str] = []
    for db in databases:
        if db.name not in names:
            names.append(db.name)
    name = names[0] if len(names) == 1 else "merged(" + "+".join(names) + ")"
    merged = ProfileDatabase(name=name)
    for db in databases:
        _, datasets, weights, fingerprints, confidences = db._snapshot()
        for table, importance, fps, conf in zip(
            datasets, weights, fingerprints, confidences
        ):
            merged.record_weights(table, importance, fps, conf)
        merged.quarantine.extend(db.quarantine)
    return merged
