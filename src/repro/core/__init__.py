"""PGMP core: profile points, profile weights, and the Figure-4 API.

This package is the paper's Section 3 — the substrate-independent design.
Everything in here is usable on its own; the Scheme (:mod:`repro.scheme`)
and Python-AST (:mod:`repro.pyast`) substrates plug into it via
:func:`repro.core.api.register_substrate`.
"""

from repro.core.api import (
    annotate_expr,
    current_profile_information,
    load_profile,
    point_of_expr,
    profile_query,
    register_substrate,
    set_profile_information,
    store_profile,
    using_profile_information,
)
from repro.core.counters import BaseCounterSet, CounterSet, ShardedCounterSet
from repro.core.database import (
    ProfileDatabase,
    QuarantineReport,
    QuarantinedDataset,
    merge_databases,
    source_fingerprint,
)
from repro.core.errors import (
    MissingProfileError,
    PgmpError,
    ProfileError,
    ProfileFormatError,
    ProfilePointError,
    StaleProfileError,
    StepBudgetExceeded,
    SubstrateError,
)
from repro.core.policy import (
    Degradation,
    DegradationLog,
    ProfilePolicy,
    StepBudget,
    current_degradation_log,
    current_profile_policy,
    degrade,
    using_profile_policy,
)
from repro.core.profile_point import (
    ProfilePoint,
    ProfilePointFactory,
    make_profile_point,
    reset_generated_points,
)
from repro.core.srcloc import UNKNOWN_LOCATION, SourceLocation
from repro.core.weights import WeightTable, compute_weights, merge_weight_tables

__all__ = [
    "BaseCounterSet",
    "CounterSet",
    "Degradation",
    "DegradationLog",
    "MissingProfileError",
    "PgmpError",
    "ProfileDatabase",
    "ProfileError",
    "ProfileFormatError",
    "ProfilePoint",
    "ProfilePointError",
    "ProfilePointFactory",
    "ProfilePolicy",
    "QuarantineReport",
    "QuarantinedDataset",
    "ShardedCounterSet",
    "SourceLocation",
    "StaleProfileError",
    "StepBudget",
    "StepBudgetExceeded",
    "SubstrateError",
    "UNKNOWN_LOCATION",
    "WeightTable",
    "current_degradation_log",
    "current_profile_policy",
    "degrade",
    "merge_databases",
    "source_fingerprint",
    "using_profile_policy",
    "annotate_expr",
    "compute_weights",
    "current_profile_information",
    "load_profile",
    "make_profile_point",
    "merge_weight_tables",
    "point_of_expr",
    "profile_query",
    "register_substrate",
    "reset_generated_points",
    "set_profile_information",
    "store_profile",
    "using_profile_information",
]
