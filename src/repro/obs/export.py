"""Trace exporters: human text, versioned JSON, and Chrome ``trace_event``.

Three renderings of one :class:`~repro.obs.tracer.Tracer`:

* :func:`render_trace_text` — an indented span tree with the queries and
  decisions inline, for terminals;
* :func:`render_trace_json` — the canonical machine-readable form. The
  top-level ``version`` field is the shared
  :data:`~repro.analysis.diagnostics.JSON_RENDER_VERSION` (the same
  version check parses ``pgmp lint``/``report``/``trace`` output) and
  ``trace_schema_version`` versions the span/event model itself. Keys are
  sorted and the clock is logical, so the same program expanded against
  the same merged profile renders **byte-identical** JSON.
* :func:`render_chrome_trace` — the Chrome ``trace_event`` JSON array
  format, loadable in Perfetto (https://ui.perfetto.dev) or
  ``chrome://tracing``. Spans become complete (``"ph": "X"``) events and
  queries/decisions become instants; the time axis is the logical tick,
  presented as microseconds.
"""

from __future__ import annotations

import json

from repro.obs.tracer import TRACE_SCHEMA_VERSION, Span, Tracer

__all__ = [
    "trace_to_json_object",
    "render_trace_json",
    "render_trace_text",
    "render_chrome_trace",
    "decisions_from_json_object",
]


def trace_to_json_object(tracer: Tracer) -> dict:
    """The canonical JSON document for a finished trace."""
    # Imported lazily: repro.analysis pulls in the Scheme substrate, which
    # itself imports the core API (which imports repro.obs.tracer).
    from repro.analysis.diagnostics import JSON_RENDER_VERSION

    tracer.close()
    decisions = tracer.decisions()
    return {
        "schema": "pgmp-trace",
        "version": JSON_RENDER_VERSION,
        "trace_schema_version": TRACE_SCHEMA_VERSION,
        "summary": {
            "spans": len(tracer.spans),
            "queries": len(tracer.queries()),
            "decisions": len(decisions),
            "data_driven_decisions": sum(
                1 for record in decisions if record.data_driven
            ),
            "ticks": tracer.ticks,
        },
        "spans": [span.to_json_object() for span in tracer.spans],
    }


def render_trace_json(tracer: Tracer) -> str:
    """Deterministic (byte-identical for identical traces) JSON text."""
    return json.dumps(
        trace_to_json_object(tracer), indent=2, sort_keys=True, ensure_ascii=True
    )


def decisions_from_json_object(document: dict) -> list[dict]:
    """The decision records of a stored trace document, in tick order.

    The join half of ``pgmp report --trace``: tolerant of extra fields,
    strict about the schema marker.
    """
    if document.get("schema") != "pgmp-trace":
        raise ValueError(
            f"not a pgmp trace document (schema={document.get('schema')!r})"
        )
    decisions = [
        dict(record)
        for span in document.get("spans", ())
        for record in span.get("decisions", ())
    ]
    decisions.sort(key=lambda record: record.get("tick", 0))
    return decisions


# -- text --------------------------------------------------------------------


def _format_weight(weight: float) -> str:
    return f"{weight:.6f}".rstrip("0").rstrip(".") or "0"


def render_trace_text(tracer: Tracer) -> str:
    """Indented human rendering of the span tree."""
    tracer.close()
    children: dict[int, list[Span]] = {}
    for span in tracer.spans[1:]:
        children.setdefault(span.parent_id, []).append(span)

    lines: list[str] = []
    decisions = tracer.decisions()
    lines.append(
        f"trace: {len(tracer.spans) - 1} span(s), "
        f"{len(tracer.queries())} profile quer{'y' if len(tracer.queries()) == 1 else 'ies'}, "
        f"{len(decisions)} decision(s) "
        f"({sum(1 for r in decisions if r.data_driven)} data-driven)"
    )

    def emit(span: Span, depth: int) -> None:
        indent = "  " * depth
        if span.span_id != 0:
            attrs = "".join(
                f" {key}={value}" for key, value in sorted(span.attrs.items())
            )
            lines.append(
                f"{indent}[{span.kind}] {span.name}"
                f" (ticks {span.start_tick}..{span.end_tick}){attrs}"
            )
        inner = "  " * (depth + 1)
        for event in span.events:
            attrs = "".join(f" {key}={value}" for key, value in event.attrs)
            lines.append(f"{inner}! {event.kind}: {event.name}{attrs}")
        for query in span.queries:
            confidence = (
                f"  [{query.mode} ±{query.error_bar:.0%}]"
                if query.mode != "exact"
                else ""
            )
            lines.append(
                f"{inner}? profile-query {query.point} -> "
                f"{_format_weight(query.weight)}{confidence}"
            )
        for record in span.decisions:
            lines.append(f"{inner}* decision {record.construct} at {record.location}")
            lines.append(
                f"{inner}    chose:    {', '.join(record.chosen) or '<nothing>'}"
            )
            if record.rejected:
                lines.append(f"{inner}    rejected: {', '.join(record.rejected)}")
            if record.inputs:
                lines.append(
                    f"{inner}    weights:  "
                    + ", ".join(
                        f"{point}={_format_weight(weight)}"
                        for point, weight in record.inputs
                    )
                )
                lines.append(
                    f"{inner}    margin:   {_format_weight(record.margin)}"
                    + ("" if record.data_driven else "  (no profile data)")
                )
            if record.note:
                lines.append(f"{inner}    note:     {record.note}")
        for child in children.get(span.span_id, ()):
            emit(child, depth + 1)

    emit(tracer.root, 0)
    return "\n".join(lines)


# -- Chrome trace_event ------------------------------------------------------


def render_chrome_trace(tracer: Tracer) -> str:
    """The trace in Chrome's ``trace_event`` JSON object format.

    Load the output in Perfetto or ``chrome://tracing``. ``ts``/``dur``
    carry the deterministic logical ticks (as microseconds), not wall
    time — the shape of the expansion, not its speed.
    """
    tracer.close()
    events: list[dict] = []
    for span in tracer.spans:
        if span.span_id != 0:
            events.append(
                {
                    "name": span.name,
                    "cat": span.kind,
                    "ph": "X",
                    "ts": span.start_tick,
                    "dur": max(span.end_tick - span.start_tick, 1),
                    "pid": 1,
                    "tid": 1,
                    "args": dict(span.attrs),
                }
            )
        for query in span.queries:
            args: dict = {"weight": query.weight, "caller": query.caller}
            if query.mode != "exact":
                # Sampled collection: surface how wide the estimate behind
                # this weight is. Exact queries stay byte-identical.
                args["mode"] = query.mode
                args["error_bar"] = round(query.error_bar, 6)
            events.append(
                {
                    "name": f"profile-query {query.point}",
                    "cat": "query",
                    "ph": "i",
                    "s": "t",
                    "ts": query.tick,
                    "pid": 1,
                    "tid": 1,
                    "args": args,
                }
            )
        for record in span.decisions:
            events.append(
                {
                    "name": f"{record.construct} decision",
                    "cat": "decision",
                    "ph": "i",
                    "s": "t",
                    "ts": record.tick,
                    "pid": 1,
                    "tid": 1,
                    "args": record.to_json_object(),
                }
            )
        for event in span.events:
            events.append(
                {
                    "name": event.name,
                    "cat": event.kind,
                    "ph": "i",
                    "s": "t",
                    "ts": event.tick,
                    "pid": 1,
                    "tid": 1,
                    "args": {key: value for key, value in event.attrs},
                }
            )
    events.sort(key=lambda entry: (entry["ts"], entry["name"]))
    document = {
        "displayTimeUnit": "ms",
        "otherData": {
            "schema": "pgmp-trace-chrome",
            "trace_schema_version": TRACE_SCHEMA_VERSION,
            "clock": "logical-ticks",
        },
        "traceEvents": events,
    }
    return json.dumps(document, indent=2, sort_keys=True, ensure_ascii=True)
