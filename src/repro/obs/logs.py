"""The ``repro`` logger hierarchy.

Every module logs through ``logging.getLogger("repro.<subsystem>")``
obtained from :func:`get_logger`. Library rule number one applies: the
root ``repro`` logger carries a :class:`logging.NullHandler`, so
importing the library never configures logging behind an application's
back — silence is the default.

:func:`configure_logging` is the opt-in used by ``pgmp --log-level``: it
attaches one stderr handler with a uniform format to the ``repro`` root
and sets the level. Calling it again replaces the previous handler
(idempotent), so tests and long-lived sessions can re-configure freely.
"""

from __future__ import annotations

import logging
import sys
from typing import IO

__all__ = ["ROOT_LOGGER_NAME", "get_logger", "configure_logging", "LOG_LEVELS"]

ROOT_LOGGER_NAME = "repro"

#: CLI-facing level names (ordered most to least verbose).
LOG_LEVELS = ("debug", "info", "warning", "error")

_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"

#: Marker attribute identifying the handler we installed (so re-configure
#: replaces ours and never touches handlers the application added).
_MARKER = "_pgmp_configured"

logging.getLogger(ROOT_LOGGER_NAME).addHandler(logging.NullHandler())


def get_logger(name: str | None = None) -> logging.Logger:
    """A logger under the ``repro`` hierarchy.

    Accepts either a dotted module path already rooted at ``repro``
    (``"repro.service.aggregator"``, what ``__name__`` gives library
    modules), a bare suffix (``"service.aggregator"``), or nothing (the
    ``repro`` root itself).
    """
    if name is None:
        return logging.getLogger(ROOT_LOGGER_NAME)
    if name == ROOT_LOGGER_NAME or name.startswith(ROOT_LOGGER_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")


def configure_logging(
    level: str | int, stream: IO[str] | None = None
) -> logging.Handler:
    """Attach a stream handler to the ``repro`` root at ``level``.

    Returns the handler (tests capture its stream). Replaces any handler
    a previous call installed; application-owned handlers are untouched.
    """
    if isinstance(level, str):
        numeric = logging.getLevelName(level.upper())
        if not isinstance(numeric, int):
            raise ValueError(f"unknown log level {level!r}")
        level = numeric
    root = logging.getLogger(ROOT_LOGGER_NAME)
    for handler in list(root.handlers):
        if getattr(handler, _MARKER, False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(logging.Formatter(_FORMAT))
    setattr(handler, _MARKER, True)
    root.addHandler(handler)
    root.setLevel(level)
    return handler
