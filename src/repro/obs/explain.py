"""``pgmp explain`` — answer "why does the expansion look like this here?"

Given a finished decision-provenance trace (and the compile's
:class:`~repro.core.policy.DegradationLog`), :func:`explain_at` renders,
for every profile-guided construct at one ``FILE:LINE``: the decision
made, the weights consulted, the alternatives rejected, and the *cause* —
profile-guided, or degraded ("no profile data → default order"), routed
through the same policy machinery the rest of the library uses.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.obs.tracer import DecisionRecord, Tracer

__all__ = ["explain_at", "parse_at", "decision_cause"]


def parse_at(spec: str) -> tuple[str, int]:
    """Parse a ``FILE:LINE`` anchor (the ``--at`` argument)."""
    filename, sep, line_text = spec.rpartition(":")
    if not sep or not filename:
        raise ValueError(f"--at expects FILE:LINE, got {spec!r}")
    try:
        line = int(line_text)
    except ValueError:
        raise ValueError(
            f"--at expects FILE:LINE with an integer line, got {spec!r}"
        ) from None
    return filename, line


def decision_cause(record: DecisionRecord) -> str:
    """One line naming what actually drove the decision."""
    if not record.inputs:
        return "no profile points consulted -> default behaviour"
    if not record.data_driven:
        return (
            "no profile data for the consulted points -> default order "
            "(all weights 0)"
        )
    nonzero = sum(1 for _point, weight in record.inputs if weight != 0.0)
    return (
        f"profile-guided: {nonzero} of {len(record.inputs)} consulted "
        f"weights non-zero (margin {record.margin:.6f})"
    )


def _format_record(record: DecisionRecord) -> list[str]:
    lines = [f"{record.construct} at {record.location} [{record.substrate}]"]
    lines.append(f"  decision: {', '.join(record.chosen) or '<nothing>'}")
    if record.rejected:
        lines.append(f"  rejected: {', '.join(record.rejected)}")
    else:
        lines.append("  rejected: <nothing — only one viable alternative>")
    if record.inputs:
        lines.append("  weights consulted:")
        for point, weight in record.inputs:
            lines.append(f"    {point} -> {weight:.6f}")
    else:
        lines.append("  weights consulted: <none>")
    lines.append(f"  cause: {decision_cause(record)}")
    if record.note:
        lines.append(f"  note: {record.note}")
    return lines


def explain_at(
    tracer: Tracer,
    filename: str,
    line: int,
    degradations: Iterable[object] = (),
) -> str:
    """The full ``pgmp explain`` answer for one source anchor."""
    records = tracer.decisions_at(filename, line)
    lines: list[str] = []
    if records:
        lines.append(
            f"{len(records)} profile-guided decision(s) at {filename}:{line}"
        )
        lines.append("")
        for record in records:
            lines.extend(_format_record(record))
            lines.append("")
    else:
        lines.append(f"no profile-guided decisions recorded at {filename}:{line}")
        everywhere = tracer.decisions()
        if everywhere:
            anchors = sorted(
                {f"{record.filename}:{record.line}" for record in everywhere}
            )
            lines.append("decisions were recorded at: " + ", ".join(anchors))
        else:
            lines.append(
                "the traced compile made no profile-guided decisions at all "
                "(no optimizable constructs reached, or their libraries were "
                "not loaded)"
            )
        lines.append("")
    queries = tracer.queries()
    sampled = [query for query in queries if query.mode != "exact"]
    if sampled:
        worst = max(query.error_bar for query in sampled)
        lines.append(
            f"provenance: {len(sampled)} of {len(queries)} profile "
            f"quer{'y was' if len(sampled) == 1 else 'ies were'} answered "
            f"from sampled data (error bar up to ±{worst:.0%})"
        )
        lines.append("")
    entries = list(degradations)
    if entries:
        lines.append("degradations during this compile:")
        for entry in entries:
            lines.append(f"  {entry}")
    return "\n".join(lines).rstrip("\n")
