"""Decision-provenance tracing — the core of the observability layer.

The paper's thesis is that profile data changes what the expander
*generates*; this module records the decisions in between. A
:class:`Tracer` collects, during one compile/profile/optimize cycle:

* **spans** — nested timed regions (``expand`` around each macro
  invocation, ``profile_load`` around database loads, ``optimize``,
  ``recompile``, …);
* **query events** — every ``profile-query`` a meta-program issued: the
  profile point consulted, the weight it resolved to, and which
  meta-program (innermost ``expand`` span) asked;
* **decision records** — one :class:`DecisionRecord` per profile-guided
  choice a case study made: the construct, its source location, the
  inputs consulted, the chosen ordering/prediction, and the alternatives
  it rejected. The same record type serves both substrates.

Design constraints, enforced by tests:

* **Off by default, zero-allocation fast path.** Tracing is scoped with
  :func:`using_tracer` (a :class:`contextvars.ContextVar`, so concurrent
  compiles are isolated). Hot call sites ask :func:`active_tracer` —
  a bare ``ContextVar.get`` returning ``None`` — and skip all work when
  no tracer is installed: no event objects, no spans, no
  :class:`DecisionRecord` instances are ever constructed.
* **Determinism.** The trace clock is *logical*: a per-tracer tick that
  increments once per recorded item. No wall-clock time, object ids, or
  memory addresses ever enter a trace, so the same program expanded
  against the same merged profile produces a byte-identical trace.
* **Dependency-free.** This module imports only the standard library;
  locations are duck-typed (anything with ``filename``/``line``), so the
  Scheme and Python substrates feed it without import cycles.
"""

from __future__ import annotations

import contextlib
import contextvars
import threading
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "SPAN_KINDS",
    "DecisionRecord",
    "QueryEvent",
    "TraceEvent",
    "Span",
    "Tracer",
    "active_tracer",
    "using_tracer",
    "maybe_span",
    "set_decision_record_hook",
    "decision_margin",
]

#: Version of the span/event/decision data model (bump on breaking change;
#: exporters embed it next to the shared JSON render version).
TRACE_SCHEMA_VERSION = 1

#: The well-known span kinds emitted by the library. The vocabulary is
#: open — exporters treat the kind as an opaque category — but these are
#: the ones documented in docs/observability.md.
SPAN_KINDS = frozenset(
    {
        "trace",        # the implicit root
        "program",      # one traced compilation unit
        "expand",       # one macro/transformer invocation
        "instrument",   # instrumented execution
        "sample",       # a sampled (sub-instrumented) collection period
        "profile_load", # reading a stored profile database
        "query",        # reserved for aggregated query phases
        "optimize",     # post-expansion optimization (simplify, layout)
        "recompile",    # an online recompilation (service controller)
        "rollout",      # a guarded recompile-and-swap (canary + journal)
        "canary",       # pre-swap differential validation of a candidate
        "rollback",     # restoring a previous journaled generation
    }
)

# -- the counting hook used by the overhead tests ----------------------------

_RECORD_HOOK: Callable[["DecisionRecord"], None] | None = None


def set_decision_record_hook(
    hook: Callable[["DecisionRecord"], None] | None,
) -> Callable[["DecisionRecord"], None] | None:
    """Install (or clear, with ``None``) a hook called on every
    :class:`DecisionRecord` construction; returns the previous hook.

    The overhead test suite uses a counting hook to assert the disabled
    fast path constructs *no* records at all.
    """
    global _RECORD_HOOK
    previous = _RECORD_HOOK
    _RECORD_HOOK = hook
    return previous


def decision_margin(inputs: Iterable[tuple[str, float]]) -> float:
    """How decisive the consulted weights were: the smallest gap between
    adjacent weights once sorted. 0.0 when fewer than two inputs (a
    degenerate decision) — and 0.0 exactly when some tie was broken by
    source order rather than by data."""
    weights = sorted(weight for _point, weight in inputs)
    if len(weights) < 2:
        return 0.0
    return min(b - a for a, b in zip(weights, weights[1:]))


@dataclass(frozen=True)
class DecisionRecord:
    """One profile-guided choice a meta-program made.

    ``inputs`` are the ``(profile point key, resolved weight)`` pairs the
    decision consulted; ``chosen`` and ``rejected`` are human-readable
    labels (clause tests, branch names, class names) for the selected and
    discarded alternatives.
    """

    #: the linguistic construct that decided ("exclusive-cond", "if_r", …)
    construct: str
    #: which substrate it ran on ("scheme" or "pyast")
    substrate: str
    #: source file of the deciding construct's use site
    filename: str
    #: 1-based line of the use site (0 when unknown)
    line: int
    #: the full source location, stringified, for display
    location: str
    #: (point key, weight) pairs consulted, in consultation order
    inputs: tuple[tuple[str, float], ...]
    #: the ordering/prediction the meta-program chose
    chosen: tuple[str, ...]
    #: the alternatives it rejected (empty when nothing was rejected)
    rejected: tuple[str, ...]
    #: logical trace time of the decision
    tick: int = 0
    #: id of the span the decision was made under
    span_id: int = 0
    #: free-form annotation ("delegated to exclusive-cond", …)
    note: str = ""

    def __post_init__(self) -> None:
        if _RECORD_HOOK is not None:
            _RECORD_HOOK(self)

    @property
    def margin(self) -> float:
        """Smallest weight gap that separated the alternatives."""
        return decision_margin(self.inputs)

    @property
    def data_driven(self) -> bool:
        """Whether any consulted weight was non-zero — i.e. whether
        profile data (rather than the all-zero default) shaped the
        choice."""
        return any(weight != 0.0 for _point, weight in self.inputs)

    def to_json_object(self) -> dict:
        return {
            "construct": self.construct,
            "substrate": self.substrate,
            "filename": self.filename,
            "line": self.line,
            "location": self.location,
            "inputs": [
                {"point": point, "weight": weight} for point, weight in self.inputs
            ],
            "chosen": list(self.chosen),
            "rejected": list(self.rejected),
            "margin": self.margin,
            "data_driven": self.data_driven,
            "tick": self.tick,
            "span_id": self.span_id,
            "note": self.note,
        }

    def __str__(self) -> str:
        arrow = " -> ".join(self.chosen) or "<nothing>"
        return f"{self.construct} at {self.location}: chose {arrow}"


@dataclass(frozen=True)
class QueryEvent:
    """One ``profile-query`` issued while tracing was active."""

    #: stable key of the profile point consulted
    point: str
    #: the weight the query resolved to
    weight: float
    #: innermost span name at query time — which meta-program asked
    caller: str
    tick: int = 0
    span_id: int = 0
    #: collection mode of the consulted database ("exact"/"sampled")
    mode: str = "exact"
    #: relative 95% error bar of the consulted weights (0.0 when exact)
    error_bar: float = 0.0

    def to_json_object(self) -> dict:
        obj = {
            "point": self.point,
            "weight": self.weight,
            "caller": self.caller,
            "tick": self.tick,
            "span_id": self.span_id,
        }
        # Exact queries serialize exactly as before the sampling tier, so
        # traces of fully-instrumented data stay byte-identical.
        if self.mode != "exact":
            obj["mode"] = self.mode
            obj["error_bar"] = round(self.error_bar, 6)
        return obj


@dataclass(frozen=True)
class TraceEvent:
    """A generic instant event (errors, degradations, checkpoints, …)."""

    kind: str
    name: str
    attrs: tuple[tuple[str, object], ...] = ()
    tick: int = 0
    span_id: int = 0

    def to_json_object(self) -> dict:
        return {
            "kind": self.kind,
            "name": self.name,
            "attrs": {key: value for key, value in self.attrs},
            "tick": self.tick,
            "span_id": self.span_id,
        }


@dataclass
class Span:
    """A nested region of the trace (open interval in logical ticks)."""

    span_id: int
    parent_id: int
    kind: str
    name: str
    attrs: dict[str, object] = field(default_factory=dict)
    start_tick: int = 0
    end_tick: int = 0
    queries: list[QueryEvent] = field(default_factory=list)
    decisions: list[DecisionRecord] = field(default_factory=list)
    events: list[TraceEvent] = field(default_factory=list)
    #: how many leading queries earlier decisions already claimed as inputs
    _consumed_queries: int = 0

    def to_json_object(self) -> dict:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "kind": self.kind,
            "name": self.name,
            "attrs": dict(self.attrs),
            "start_tick": self.start_tick,
            "end_tick": self.end_tick,
            "queries": [event.to_json_object() for event in self.queries],
            "decisions": [record.to_json_object() for record in self.decisions],
            "events": [event.to_json_object() for event in self.events],
        }


#: The ambient tracer. ``None`` (the default) is the disabled fast path.
_TRACER_VAR: contextvars.ContextVar["Tracer | None"] = contextvars.ContextVar(
    "pgmp_tracer", default=None
)

#: The ambient span stack, per context so concurrent traced compiles (and
#: threads, which start from a fresh context) never interleave stacks.
_STACK_VAR: contextvars.ContextVar[tuple[Span, ...]] = contextvars.ContextVar(
    "pgmp_trace_spans", default=()
)


def active_tracer() -> "Tracer | None":
    """The ambient tracer, or ``None`` when tracing is disabled.

    This is the one call hot paths make; when it returns ``None`` they
    must do nothing else — no allocation, no formatting.
    """
    return _TRACER_VAR.get()


@contextlib.contextmanager
def using_tracer(tracer: "Tracer"):
    """Enable ``tracer`` for the current context (and its children)."""
    token = _TRACER_VAR.set(tracer)
    stack_token = _STACK_VAR.set(())
    try:
        yield tracer
    finally:
        _STACK_VAR.reset(stack_token)
        _TRACER_VAR.reset(token)


def maybe_span(kind: str, name: str, **attrs: object):
    """A span on the ambient tracer, or a no-op context when disabled.

    The convenience wrapper instrumented call sites use when they would
    otherwise need the ``if tracer is not None`` dance around a ``with``.
    """
    tracer = _TRACER_VAR.get()
    if tracer is None:
        return contextlib.nullcontext()
    return tracer.span(kind, name, **attrs)


class Tracer:
    """Collects one trace. Thread-safe; logically (not wall-) clocked."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._tick = 0
        self.root = Span(span_id=0, parent_id=-1, kind="trace", name="trace")
        self.spans: list[Span] = [self.root]

    # -- clock -------------------------------------------------------------

    def _next_tick(self) -> int:
        with self._lock:
            self._tick += 1
            return self._tick

    @property
    def ticks(self) -> int:
        """How many items this trace has recorded so far."""
        with self._lock:
            return self._tick

    # -- span management ---------------------------------------------------

    def _current_span(self) -> Span:
        stack = _STACK_VAR.get()
        return stack[-1] if stack else self.root

    @contextlib.contextmanager
    def span(self, kind: str, name: str, **attrs: object):
        """Open a nested span; events recorded inside attach to it."""
        parent = self._current_span()
        with self._lock:
            self._tick += 1
            span = Span(
                span_id=len(self.spans),
                parent_id=parent.span_id,
                kind=kind,
                name=name,
                attrs=dict(attrs),
                start_tick=self._tick,
            )
            self.spans.append(span)
        token = _STACK_VAR.set(_STACK_VAR.get() + (span,))
        try:
            yield span
        finally:
            _STACK_VAR.reset(token)
            span.end_tick = self._next_tick()

    # -- recording ---------------------------------------------------------

    def record_query(
        self,
        point_key: str,
        weight: float,
        mode: str = "exact",
        error_bar: float = 0.0,
    ) -> QueryEvent:
        """Record one ``profile-query`` resolution (called by the core API).

        ``mode``/``error_bar`` carry the consulted database's collection
        mode and confidence when it holds sampled data.
        """
        span = self._current_span()
        event = QueryEvent(
            point=point_key,
            weight=weight,
            caller=span.name,
            tick=self._next_tick(),
            span_id=span.span_id,
            mode=mode,
            error_bar=error_bar,
        )
        with self._lock:
            span.queries.append(event)
        return event

    def pending_inputs(self) -> tuple[tuple[str, float], ...]:
        """The queries of the innermost span not yet claimed by a decision.

        Lets a decision site say "my inputs were whatever my transformer
        consulted since the last decision" without threading bookkeeping
        through the meta-program.
        """
        span = self._current_span()
        with self._lock:
            pending = span.queries[span._consumed_queries :]
            span._consumed_queries = len(span.queries)
        return tuple((event.point, event.weight) for event in pending)

    def decision(
        self,
        construct: str,
        substrate: str,
        chosen: Iterable[str],
        rejected: Iterable[str] = (),
        location: object | None = None,
        inputs: Iterable[tuple[str, float]] | None = None,
        note: str = "",
    ) -> DecisionRecord:
        """Record one profile-guided decision.

        ``location`` is duck-typed: anything with ``filename`` and
        ``line`` attributes (a :class:`~repro.core.srcloc.SourceLocation`)
        or a plain string. ``inputs=None`` claims the innermost span's
        unconsumed query events as the inputs consulted.
        """
        if inputs is None:
            inputs = self.pending_inputs()
        filename = ""
        line = 0
        location_str = ""
        if location is not None:
            filename = str(getattr(location, "filename", location))
            line = int(getattr(location, "line", 0) or 0)
            location_str = str(location)
        span = self._current_span()
        record = DecisionRecord(
            construct=construct,
            substrate=substrate,
            filename=filename,
            line=line,
            location=location_str,
            inputs=tuple((str(point), float(weight)) for point, weight in inputs),
            chosen=tuple(str(item) for item in chosen),
            rejected=tuple(str(item) for item in rejected),
            tick=self._next_tick(),
            span_id=span.span_id,
            note=note,
        )
        with self._lock:
            span.decisions.append(record)
        return record

    def event(self, kind: str, name: str, **attrs: object) -> TraceEvent:
        """Record a generic instant event under the innermost span."""
        span = self._current_span()
        event = TraceEvent(
            kind=kind,
            name=name,
            attrs=tuple(sorted(attrs.items())),
            tick=self._next_tick(),
            span_id=span.span_id,
        )
        with self._lock:
            span.events.append(event)
        return event

    # -- reading -----------------------------------------------------------

    def close(self) -> None:
        """Seal the root span (idempotent)."""
        if self.root.end_tick == 0:
            self.root.end_tick = self._next_tick()

    def decisions(self) -> list[DecisionRecord]:
        """Every decision recorded, in tick order."""
        with self._lock:
            records = [
                record for span in self.spans for record in span.decisions
            ]
        records.sort(key=lambda record: record.tick)
        return records

    def queries(self) -> list[QueryEvent]:
        """Every query event recorded, in tick order."""
        with self._lock:
            events = [event for span in self.spans for event in span.queries]
        events.sort(key=lambda event: event.tick)
        return events

    def decisions_at(self, filename: str, line: int) -> list[DecisionRecord]:
        """Decisions anchored at ``filename:line`` (basename match allowed)."""
        import posixpath

        def matches(record: DecisionRecord) -> bool:
            if record.line != line:
                return False
            return record.filename == filename or (
                posixpath.basename(record.filename) == posixpath.basename(filename)
                and bool(posixpath.basename(filename))
            )

        return [record for record in self.decisions() if matches(record)]

    def __repr__(self) -> str:
        return (
            f"<Tracer: {len(self.spans)} spans, "
            f"{len(self.decisions())} decisions, {self.ticks} ticks>"
        )
