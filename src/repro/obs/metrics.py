"""The metrics registry shared by every layer of the library.

Promoted here from ``repro.service.metrics`` (which re-exports for
back-compat) so core expansion, the three-pass workflow, and the
continuous-profiling service all report through one registry type — and,
via :func:`get_global_metrics`, optionally through one registry instance.

A deliberately small, dependency-free design: monotonic counters,
point-in-time gauges, and a bounded latency reservoir with p50/p95/p99
quantiles, rendered in the Prometheus text exposition format so a
``curl`` of an exposed ``/metrics`` endpoint drops straight into existing
scrape pipelines. Every rendered scrape carries a
``pgmp_metrics_render_timestamp_seconds`` gauge so staleness of the
scrape itself is observable.
"""

from __future__ import annotations

import threading
import time
from collections import deque

__all__ = [
    "LATENCY_WINDOW",
    "RENDER_QUANTILES",
    "ServiceMetrics",
    "get_global_metrics",
]

#: How many recent latency observations the quantile reservoir keeps.
#: Bounded so a long-lived aggregator's memory stays flat; quantiles are
#: therefore over a sliding window, which is what operators want anyway.
LATENCY_WINDOW = 2048

#: Quantiles exposed on every latency summary (nearest-rank, so p99 is
#: exact over the window rather than an estimate).
RENDER_QUANTILES = (0.5, 0.95, 0.99)

#: Name of the render-age gauge stamped into every scrape.
RENDER_TIMESTAMP_GAUGE = "metrics_render_timestamp_seconds"


class ServiceMetrics:
    """Thread-safe counters/gauges/latency for one service process."""

    def __init__(self, namespace: str = "pgmp") -> None:
        self.namespace = namespace
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        #: counter name -> {sorted (label, value) tuple -> count}
        self._labeled: dict[str, dict[tuple[tuple[str, str], ...], float]] = {}
        self._gauges: dict[str, float] = {}
        #: gauge name -> {sorted (label, value) tuple -> value}
        self._labeled_gauges: dict[str, dict[tuple[tuple[str, str], ...], float]] = {}
        self._help: dict[str, str] = {}
        self._latencies: dict[str, deque[float]] = {}
        self.describe(
            RENDER_TIMESTAMP_GAUGE,
            "Unix time this scrape was rendered (gauge age = scrape staleness)",
        )

    # -- recording ---------------------------------------------------------

    def describe(self, name: str, help_text: str) -> None:
        """Attach a ``# HELP`` line to ``name`` (idempotent)."""
        with self._lock:
            self._help[name] = help_text

    def inc(self, name: str, by: float = 1) -> None:
        """Bump a monotonic counter."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + by

    def counter(self, name: str) -> float:
        with self._lock:
            return self._counters.get(name, 0)

    def inc_labeled(
        self, name: str, labels: dict[str, str], by: float = 1
    ) -> None:
        """Bump one labeled series of a counter (e.g. a per-reason
        breakdown). The unlabeled total, if any, is tracked separately by
        :meth:`inc` — callers that want both bump both."""
        if not labels:
            raise ValueError("inc_labeled requires at least one label")
        key = tuple(sorted(labels.items()))
        with self._lock:
            series = self._labeled.setdefault(name, {})
            series[key] = series.get(key, 0) + by

    def labeled_counter(self, name: str, labels: dict[str, str]) -> float:
        key = tuple(sorted(labels.items()))
        with self._lock:
            return self._labeled.get(name, {}).get(key, 0)

    def labeled_series(self, name: str) -> dict[tuple[tuple[str, str], ...], float]:
        """All labeled samples of ``name`` (label-tuple -> count)."""
        with self._lock:
            return dict(self._labeled.get(name, {}))

    def set_gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = value

    def gauge(self, name: str) -> float:
        with self._lock:
            return self._gauges.get(name, 0)

    def set_labeled_gauge(
        self, name: str, labels: dict[str, str], value: float
    ) -> None:
        """Set one labeled series of a gauge (e.g. per-shard liveness)."""
        if not labels:
            raise ValueError("set_labeled_gauge requires at least one label")
        key = tuple(sorted(labels.items()))
        with self._lock:
            self._labeled_gauges.setdefault(name, {})[key] = value

    def labeled_gauge(self, name: str, labels: dict[str, str]) -> float:
        key = tuple(sorted(labels.items()))
        with self._lock:
            return self._labeled_gauges.get(name, {}).get(key, 0)

    def drop_labeled_gauge(self, name: str, labels: dict[str, str]) -> None:
        """Forget one labeled gauge series (a shard removed from the ring
        must stop being scraped, not linger at its last value)."""
        key = tuple(sorted(labels.items()))
        with self._lock:
            series = self._labeled_gauges.get(name)
            if series is not None:
                series.pop(key, None)
                if not series:
                    del self._labeled_gauges[name]

    def observe_latency(self, name: str, seconds: float) -> None:
        """Record one latency sample into ``name``'s sliding window."""
        with self._lock:
            window = self._latencies.get(name)
            if window is None:
                window = self._latencies[name] = deque(maxlen=LATENCY_WINDOW)
            window.append(seconds)

    def latency_quantile(self, name: str, q: float) -> float:
        """The ``q``-quantile (0..1) of recent samples; 0.0 when empty.

        Nearest-rank over the sorted window — exact for the window, cheap,
        and deterministic for tests. ``q=0.99`` is the p99 the service
        dashboards alert on.
        """
        with self._lock:
            samples = sorted(self._latencies.get(name, ()))
        return self._quantile_of(samples, q)

    def latency_count(self, name: str) -> int:
        with self._lock:
            return len(self._latencies.get(name, ()))

    # -- introspection -----------------------------------------------------

    def undocumented_names(self) -> list[str]:
        """Metric names recorded without a :meth:`describe` HELP line.

        The help-coverage gate: the test suite asserts this is empty for
        every metric the service layer emits, so no scrape ever ships a
        help-less metric.
        """
        with self._lock:
            recorded = (
                set(self._counters)
                | set(self._labeled)
                | set(self._gauges)
                | set(self._labeled_gauges)
                | set(self._latencies)
            )
            return sorted(recorded - set(self._help))

    def help_for(self, name: str) -> str | None:
        with self._lock:
            return self._help.get(name)

    # -- rendering ---------------------------------------------------------

    def render(self, now: float | None = None) -> str:
        """The Prometheus text exposition of everything recorded.

        Stamps :data:`RENDER_TIMESTAMP_GAUGE` with ``now`` (default
        ``time.time()``), so the scrape's own age is a first-class metric.
        """
        self.set_gauge(RENDER_TIMESTAMP_GAUGE, time.time() if now is None else now)
        with self._lock:
            counters = dict(self._counters)
            labeled = {name: dict(series) for name, series in self._labeled.items()}
            gauges = dict(self._gauges)
            labeled_gauges = {
                name: dict(series)
                for name, series in self._labeled_gauges.items()
            }
            help_text = dict(self._help)
            latencies = {
                name: sorted(window) for name, window in self._latencies.items()
            }
        lines: list[str] = []
        for name in sorted(set(counters) | set(labeled)):
            full = f"{self.namespace}_{name}"
            if name in help_text:
                lines.append(f"# HELP {full} {help_text[name]}")
            lines.append(f"# TYPE {full} counter")
            if name in counters:
                lines.append(f"{full} {_format_value(counters[name])}")
            for key in sorted(labeled.get(name, ())):
                rendered = ",".join(f'{k}="{v}"' for k, v in key)
                lines.append(
                    f"{full}{{{rendered}}} "
                    f"{_format_value(labeled[name][key])}"
                )
        for name in sorted(set(gauges) | set(labeled_gauges)):
            full = f"{self.namespace}_{name}"
            if name in help_text:
                lines.append(f"# HELP {full} {help_text[name]}")
            lines.append(f"# TYPE {full} gauge")
            if name in gauges:
                lines.append(f"{full} {_format_value(gauges[name])}")
            for key in sorted(labeled_gauges.get(name, ())):
                rendered = ",".join(f'{k}="{v}"' for k, v in key)
                lines.append(
                    f"{full}{{{rendered}}} "
                    f"{_format_value(labeled_gauges[name][key])}"
                )
        for name in sorted(latencies):
            samples = latencies[name]
            full = f"{self.namespace}_{name}_seconds"
            if name in help_text:
                lines.append(f"# HELP {full} {help_text[name]}")
            lines.append(f"# TYPE {full} summary")
            for q in RENDER_QUANTILES:
                if samples:
                    rank = min(len(samples) - 1, max(0, int(q * len(samples))))
                    value = samples[rank]
                else:
                    value = 0.0
                lines.append(
                    f'{full}{{quantile="{q}"}} {_format_value(value)}'
                )
            lines.append(f"{full}_count {len(samples)}")
            lines.append(f"{full}_sum {_format_value(sum(samples))}")
        return "\n".join(lines) + "\n"

    def snapshot(self) -> dict:
        """All values as a JSON-friendly dict (for the stats frame)."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "labeled_counters": {
                    name: {
                        ",".join(f"{k}={v}" for k, v in key): count
                        for key, count in series.items()
                    }
                    for name, series in self._labeled.items()
                },
                "gauges": dict(self._gauges),
                "labeled_gauges": {
                    name: {
                        ",".join(f"{k}={v}" for k, v in key): value
                        for key, value in series.items()
                    }
                    for name, series in self._labeled_gauges.items()
                },
                "latency_counts": {
                    name: len(window) for name, window in self._latencies.items()
                },
                "latency_quantiles": {
                    name: {
                        str(q): self._quantile_of(sorted(window), q)
                        for q in RENDER_QUANTILES
                    }
                    for name, window in self._latencies.items()
                },
            }

    @staticmethod
    def _quantile_of(ordered: list[float], q: float) -> float:
        if not ordered:
            return 0.0
        rank = min(len(ordered) - 1, max(0, int(q * len(ordered))))
        return ordered[rank]


def _format_value(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


# -- the process-wide registry ------------------------------------------------

_GLOBAL_METRICS: ServiceMetrics | None = None
_GLOBAL_LOCK = threading.Lock()


def get_global_metrics() -> ServiceMetrics:
    """The process-wide registry core expansion and the workflow report to.

    Service processes still get a private registry per aggregator (so two
    aggregators in one test process don't cross-pollinate), but ambient
    library activity — expansions, traces, three-pass runs — lands here,
    where a ``pgmp serve --metrics-port`` scrape or a debugging session
    can read it.
    """
    global _GLOBAL_METRICS
    with _GLOBAL_LOCK:
        if _GLOBAL_METRICS is None:
            metrics = ServiceMetrics()
            metrics.describe("expansions_total", "Scheme programs expanded")
            metrics.describe(
                "pyast_expansions_total", "Python functions macro-expanded"
            )
            metrics.describe(
                "three_pass_runs_total", "Three-pass workflow invocations"
            )
            metrics.describe("traces_total", "Decision-provenance traces collected")
            metrics.describe(
                "artifact_cache_hits_total",
                "Compiled-artifact cache hits (no re-expansion or recompile)",
            )
            metrics.describe(
                "artifact_cache_misses_total",
                "Compiled-artifact cache misses (expansion + codegen ran)",
            )
            metrics.describe(
                "artifact_compiles_total",
                "Scheme programs translated to Python by the compiled backend",
            )
            metrics.describe(
                "backend_fallbacks_total",
                "Runs the compiled backend handed back to the interpreter "
                "(labeled samples break the total down by reason)",
            )
            metrics.describe(
                "artifact_verify_passes_total",
                "Compiled artifacts that passed static translation validation",
            )
            metrics.describe(
                "artifact_verify_failures_total",
                "Compiled artifacts rejected by static translation validation",
            )
            metrics.describe(
                "samples_total",
                "Sampling events observed by the sampling profiler "
                "(pre-scaling, across both engines)",
            )
            metrics.describe(
                "sampled_datasets_total",
                "Data sets recorded from sampled (sub-instrumented) runs",
            )
            metrics.describe(
                "confidence_degradations_total",
                "profile_query results routed through degrade() because "
                "the merged sampling confidence was too low",
            )
            _GLOBAL_METRICS = metrics
        return _GLOBAL_METRICS
