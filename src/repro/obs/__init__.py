"""Observability for profile-guided meta-programming.

One umbrella for the telemetry the library emits about *itself*:

* :mod:`repro.obs.tracer` — decision-provenance tracing (spans, query
  events, :class:`DecisionRecord`), off by default with a
  zero-allocation fast path;
* :mod:`repro.obs.export` — text / versioned-JSON / Chrome
  ``trace_event`` exporters with byte-identical deterministic output;
* :mod:`repro.obs.explain` — the ``pgmp explain`` answer for one
  ``FILE:LINE``;
* :mod:`repro.obs.metrics` — the Prometheus-style metrics registry
  (promoted from ``repro.service.metrics``);
* :mod:`repro.obs.logs` — the ``repro`` stdlib-logging hierarchy.
"""

from __future__ import annotations

from repro.obs.export import (
    decisions_from_json_object,
    render_chrome_trace,
    render_trace_json,
    render_trace_text,
    trace_to_json_object,
)
from repro.obs.explain import decision_cause, explain_at, parse_at
from repro.obs.logs import LOG_LEVELS, configure_logging, get_logger
from repro.obs.metrics import (
    LATENCY_WINDOW,
    RENDER_QUANTILES,
    ServiceMetrics,
    get_global_metrics,
)
from repro.obs.tracer import (
    SPAN_KINDS,
    TRACE_SCHEMA_VERSION,
    DecisionRecord,
    QueryEvent,
    Span,
    TraceEvent,
    Tracer,
    active_tracer,
    decision_margin,
    maybe_span,
    set_decision_record_hook,
    using_tracer,
)

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "SPAN_KINDS",
    "DecisionRecord",
    "QueryEvent",
    "TraceEvent",
    "Span",
    "Tracer",
    "active_tracer",
    "using_tracer",
    "maybe_span",
    "set_decision_record_hook",
    "decision_margin",
    "trace_to_json_object",
    "render_trace_json",
    "render_trace_text",
    "render_chrome_trace",
    "decisions_from_json_object",
    "explain_at",
    "parse_at",
    "decision_cause",
    "ServiceMetrics",
    "get_global_metrics",
    "LATENCY_WINDOW",
    "RENDER_QUANTILES",
    "configure_logging",
    "get_logger",
    "LOG_LEVELS",
]
