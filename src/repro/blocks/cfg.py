"""Control-flow-graph utilities for the block substrate (networkx-backed)."""

from __future__ import annotations

import networkx as nx

from repro.blocks.bytecode import BlockFunction, Module
from repro.blocks.vm import BlockProfile

__all__ = [
    "function_cfg",
    "weighted_cfg",
    "reachable_blocks",
    "unreachable_blocks",
    "hot_path",
]


def function_cfg(fn: BlockFunction) -> nx.DiGraph:
    """The static CFG of one function: nodes are block labels."""
    graph = nx.DiGraph()
    for block in fn.blocks:
        graph.add_node(block.label)
    for block in fn.blocks:
        for succ in block.successors():
            graph.add_edge(block.label, succ)
    return graph


def weighted_cfg(fn: BlockFunction, profile: BlockProfile) -> nx.DiGraph:
    """The CFG annotated with dynamic edge counts (0 for unexecuted edges)."""
    graph = function_cfg(fn)
    for (fidx, src, dst), count in profile.edge_counts.items():
        if fidx == fn.index and graph.has_edge(src, dst):
            graph[src][dst]["weight"] = count
    for src, dst in graph.edges:
        graph[src][dst].setdefault("weight", 0)
    return graph


def reachable_blocks(fn: BlockFunction) -> set[str]:
    """Labels reachable from the entry block."""
    if not fn.blocks:
        return set()
    graph = function_cfg(fn)
    entry = fn.blocks[0].label
    return {entry} | nx.descendants(graph, entry)


def unreachable_blocks(fn: BlockFunction) -> set[str]:
    return {block.label for block in fn.blocks} - reachable_blocks(fn)


def hot_path(fn: BlockFunction, profile: BlockProfile) -> list[str]:
    """The greedy hottest path from entry (for reports and tests)."""
    graph = weighted_cfg(fn, profile)
    if not fn.blocks:
        return []
    path = [fn.blocks[0].label]
    seen = {path[0]}
    while True:
        out = [
            (data["weight"], dst)
            for _, dst, data in graph.out_edges(path[-1], data=True)
            if dst not in seen
        ]
        if not out:
            return path
        weight, nxt = max(out)
        if weight == 0:
            return path
        path.append(nxt)
        seen.add(nxt)
