"""Block-level substrate: bytecode, basic blocks, block-level PGO.

The paper's Chez Scheme implementation must coexist with the compiler's
existing *block-level* profile-guided optimizations, which it does with a
three-pass compilation protocol (Section 4.3). This package reproduces that
whole lower layer: a compiler from expanded core forms to basic-block
bytecode, a stack VM that can count block executions and branch
transitions, a block-reordering PGO (hot-path chaining + conditional-branch
inversion), and the three-pass workflow that keeps source-level and
block-level profiles simultaneously valid.
"""

from repro.blocks.bytecode import BasicBlock, BlockFunction, Instr, Module, Opcode
from repro.blocks.compiler import BlockCompiler, compile_program
from repro.blocks.peephole import PeepholeReport, peephole
from repro.blocks.pgo import LayoutReport, eliminate_unreachable, optimize_layout
from repro.blocks.vm import VM, BlockProfile, VMClosure
from repro.blocks.workflow import ThreePassReport, three_pass_compile

__all__ = [
    "BasicBlock",
    "BlockCompiler",
    "BlockFunction",
    "BlockProfile",
    "Instr",
    "LayoutReport",
    "Module",
    "Opcode",
    "PeepholeReport",
    "ThreePassReport",
    "VM",
    "VMClosure",
    "compile_program",
    "eliminate_unreachable",
    "optimize_layout",
    "peephole",
    "three_pass_compile",
]
