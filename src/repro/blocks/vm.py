"""A stack virtual machine over basic-block bytecode, with block profiling.

The VM executes :class:`~repro.blocks.bytecode.Module`s with an explicit
frame stack (so Scheme tail calls are genuinely iterative). When profiling
is enabled it maintains a :class:`BlockProfile`: per-block execution counts
and per-edge transition counts — the raw material of block-level PGO — plus
the *layout metric* the PGO improves: every control transfer is classified
as a fall-through (target is the lexically next block) or a taken jump.

Interoperability: a :class:`VMClosure` is callable, so primitives that
apply procedures (``map``, ``sort``, …) work unchanged — they re-enter the
VM through :meth:`VM.execute_closure`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import VMError
from repro.core.policy import StepBudget
from repro.scheme.datum import UNSPECIFIED, Symbol, scheme_list, write_datum
from repro.scheme.env import Environment, GlobalEnvironment

from repro.blocks.bytecode import BasicBlock, BlockFunction, Module, Opcode

__all__ = ["VM", "VMClosure", "BlockProfile"]


@dataclass
class BlockProfile:
    """Counts gathered by an instrumented VM run."""

    #: (function index, block label) -> times the block was entered
    block_counts: dict[tuple[int, str], int] = field(default_factory=dict)
    #: (function index, from label, to label) -> times the edge was taken
    edge_counts: dict[tuple[int, str, str], int] = field(default_factory=dict)
    #: transfers to the lexically next block (cheap)
    fallthroughs: int = 0
    #: transfers anywhere else (the cost block reordering minimizes)
    taken_jumps: int = 0

    def record_edge(self, fn: int, src: str, dst: str) -> None:
        key = (fn, src, dst)
        self.edge_counts[key] = self.edge_counts.get(key, 0) + 1

    def record_block(self, fn: int, label: str) -> None:
        key = (fn, label)
        self.block_counts[key] = self.block_counts.get(key, 0) + 1

    @property
    def total_transfers(self) -> int:
        return self.fallthroughs + self.taken_jumps

    @property
    def taken_ratio(self) -> float:
        total = self.total_transfers
        return self.taken_jumps / total if total else 0.0

    # -- persistence (three-pass workflow checkpoints) ---------------------

    def to_json_object(self) -> dict:
        """The stored representation used by workflow checkpoints."""
        return {
            "format": "pgmp-blocks",
            "version": 1,
            "block_counts": [
                [fn, label, count]
                for (fn, label), count in sorted(self.block_counts.items())
            ],
            "edge_counts": [
                [fn, src, dst, count]
                for (fn, src, dst), count in sorted(self.edge_counts.items())
            ],
            "fallthroughs": self.fallthroughs,
            "taken_jumps": self.taken_jumps,
        }

    @classmethod
    def from_json_object(cls, obj: object) -> "BlockProfile":
        from repro.core.errors import ProfileFormatError

        if not isinstance(obj, dict) or obj.get("format") != "pgmp-blocks":
            raise ProfileFormatError("not a pgmp block-profile object")
        if obj.get("version") != 1:
            raise ProfileFormatError(
                f"unsupported block-profile version {obj.get('version')!r}"
            )
        profile = cls()
        try:
            for fn, label, count in obj.get("block_counts", []):
                profile.block_counts[(int(fn), str(label))] = int(count)
            for fn, src, dst, count in obj.get("edge_counts", []):
                profile.edge_counts[(int(fn), str(src), str(dst))] = int(count)
            profile.fallthroughs = int(obj.get("fallthroughs", 0))
            profile.taken_jumps = int(obj.get("taken_jumps", 0))
        except (TypeError, ValueError) as exc:
            raise ProfileFormatError(f"malformed block profile: {exc}") from exc
        return profile


class VMClosure:
    """A procedure value closing a block function over an environment."""

    __slots__ = ("function", "env", "vm")

    def __init__(self, function: BlockFunction, env, vm: "VM") -> None:
        self.function = function
        self.env = env
        self.vm = vm

    def bind(self, args: list[object]) -> Environment:
        fn = self.function
        nparams = len(fn.params)
        if fn.rest is None:
            if len(args) != nparams:
                raise VMError(
                    f"{fn.name}: expected {nparams} arguments, got {len(args)}"
                )
            frame = dict(zip(fn.params, args))
        else:
            if len(args) < nparams:
                raise VMError(
                    f"{fn.name}: expected at least {nparams} arguments, got {len(args)}"
                )
            frame = dict(zip(fn.params, args[:nparams]))
            frame[fn.rest] = scheme_list(*args[nparams:])
        return Environment(frame, self.env)

    def __call__(self, *args):
        # Re-entry point for primitives (map, sort, apply, ...).
        return self.vm.execute_closure(self, list(args))

    def __repr__(self) -> str:
        return f"#<vm-procedure {self.function.name}>"


class _Frame:
    __slots__ = ("closure", "blocks", "block_pos", "instr_index", "env", "stack")

    def __init__(self, closure: VMClosure, env) -> None:
        self.closure = closure
        self.blocks = closure.function.blocks
        self.block_pos = 0
        self.instr_index = 0
        self.env = env
        self.stack: list[object] = []


class VM:
    """Executes modules; optionally records a :class:`BlockProfile`."""

    def __init__(
        self,
        module: Module,
        global_env: GlobalEnvironment,
        profile: bool = False,
        budget: StepBudget | None = None,
    ) -> None:
        self.module = module
        self.global_env = global_env
        self.profile: BlockProfile | None = BlockProfile() if profile else None
        #: optional fuel: each executed instruction charges one step, so a
        #: runaway run raises StepBudgetExceeded instead of hanging.
        self.budget = budget

    # -- public entry points --------------------------------------------------------

    def run(self) -> object:
        """Execute the top-level function; its return value."""
        top = VMClosure(self.module.toplevel, self.global_env, self)
        return self._execute(_Frame(top, self.global_env))

    def execute_closure(self, closure: VMClosure, args: list[object]) -> object:
        return self._execute(_Frame(closure, closure.bind(args)))

    # -- the dispatch loop --------------------------------------------------------------

    def _transfer(self, frame: _Frame, label: str) -> None:
        """Move control to ``label``, recording profile data."""
        fn = frame.closure.function
        src = frame.blocks[frame.block_pos].label
        pos = fn.block_position(label)
        if self.profile is not None:
            self.profile.record_edge(fn.index, src, label)
            self.profile.record_block(fn.index, label)
            if pos == frame.block_pos + 1:
                self.profile.fallthroughs += 1
            else:
                self.profile.taken_jumps += 1
        frame.block_pos = pos
        frame.instr_index = 0

    def _execute(self, frame: _Frame) -> object:
        frames: list[_Frame] = [frame]
        budget = self.budget
        if self.profile is not None:
            self.profile.record_block(
                frame.closure.function.index, frame.blocks[0].label
            )
        while True:
            if budget is not None:
                budget.charge()
            frame = frames[-1]
            block = frame.blocks[frame.block_pos]
            if frame.instr_index >= len(block.instrs):
                raise VMError(
                    f"fell off the end of block {block.label} in "
                    f"{frame.closure.function.name}"
                )
            instr = block.instrs[frame.instr_index]
            frame.instr_index += 1
            op = instr.op

            if op is Opcode.CONST:
                frame.stack.append(instr.arg)
            elif op is Opcode.LOAD:
                frame.stack.append(frame.env.lookup(instr.arg))
            elif op is Opcode.STORE:
                frame.env.assign(instr.arg, frame.stack.pop())
            elif op is Opcode.DEFINE:
                self.global_env.define(instr.arg, frame.stack.pop())
            elif op is Opcode.POP:
                frame.stack.pop()
            elif op is Opcode.CLOSURE:
                fn = self.module.functions[instr.arg]
                frame.stack.append(VMClosure(fn, frame.env, self))
            elif op is Opcode.CALL:
                nargs = instr.arg
                args = frame.stack[len(frame.stack) - nargs :]
                del frame.stack[len(frame.stack) - nargs :]
                proc = frame.stack.pop()
                if isinstance(proc, VMClosure):
                    new_frame = _Frame(proc, proc.bind(args))
                    frames.append(new_frame)
                    if self.profile is not None:
                        self.profile.record_block(
                            proc.function.index, proc.function.blocks[0].label
                        )
                else:
                    frame.stack.append(self._call_python(proc, args))
            elif op is Opcode.TAILCALL:
                nargs = instr.arg
                args = frame.stack[len(frame.stack) - nargs :]
                del frame.stack[len(frame.stack) - nargs :]
                proc = frame.stack.pop()
                if isinstance(proc, VMClosure):
                    new_frame = _Frame(proc, proc.bind(args))
                    frames[-1] = new_frame
                    if self.profile is not None:
                        self.profile.record_block(
                            proc.function.index, proc.function.blocks[0].label
                        )
                else:
                    value = self._call_python(proc, args)
                    frames.pop()
                    if not frames:
                        return value
                    frames[-1].stack.append(value)
            elif op is Opcode.JUMP:
                self._transfer(frame, instr.arg)
            elif op is Opcode.BRANCH_FALSE:
                value = frame.stack.pop()
                if value is False:
                    self._transfer(frame, instr.arg)
                else:
                    self._transfer(frame, instr.fallthrough)
            elif op is Opcode.BRANCH_TRUE:
                value = frame.stack.pop()
                if value is not False:
                    self._transfer(frame, instr.arg)
                else:
                    self._transfer(frame, instr.fallthrough)
            elif op is Opcode.RETURN:
                value = frame.stack.pop() if frame.stack else UNSPECIFIED
                frames.pop()
                if not frames:
                    return value
                frames[-1].stack.append(value)
            else:  # pragma: no cover
                raise VMError(f"unknown opcode {op}")

    @staticmethod
    def _call_python(proc: object, args: list[object]) -> object:
        if not callable(proc):
            raise VMError(f"attempt to apply non-procedure {write_datum(proc)}")
        from repro.scheme.interpreter import TailCall, apply_procedure

        result = proc(*args)
        if type(result) is TailCall:
            return apply_procedure(result.proc, result.args)
        return result
