"""Bytecode and basic-block representation for the block-level substrate.

A :class:`Module` holds one :class:`BlockFunction` per ``lambda`` in the
expanded program plus a distinguished top-level function. Each function's
body is a list of :class:`BasicBlock`; control flow *within* a function is
explicit (``JUMP`` / ``BRANCH_FALSE`` / ``RETURN`` terminators), which is
what makes block counting and block reordering meaningful. Calls push
arguments on the evaluation stack and transfer to another function.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.scheme.datum import Symbol

__all__ = ["Opcode", "Instr", "BasicBlock", "BlockFunction", "Module"]


class Opcode(enum.Enum):
    """Stack-machine operations.

    Non-terminator opcodes leave control in the same block; the terminator
    opcodes (``JUMP``, ``BRANCH_FALSE``, ``RETURN``, ``TAILCALL``) end a
    block.
    """

    CONST = "const"            # push a constant (arg: value)
    LOAD = "load"              # push a variable's value (arg: Symbol)
    STORE = "store"            # pop and assign a variable (arg: Symbol)
    DEFINE = "define"          # pop and define a top-level variable (arg: Symbol)
    POP = "pop"                # discard the top of stack
    CLOSURE = "closure"        # push a closure of function #arg over current env
    CALL = "call"              # call with arg operands (proc under them)
    TAILCALL = "tailcall"      # terminator: tail call with arg operands
    JUMP = "jump"              # terminator: unconditional (arg: block label)
    BRANCH_FALSE = "brf"       # terminator: pop; jump to arg when false,
    #                            else fall through to `fallthrough` label
    BRANCH_TRUE = "brt"        # terminator: inverted branch (made by the PGO)
    RETURN = "return"          # terminator: pop and return

    def is_terminator(self) -> bool:
        return self in (
            Opcode.JUMP,
            Opcode.BRANCH_FALSE,
            Opcode.BRANCH_TRUE,
            Opcode.RETURN,
            Opcode.TAILCALL,
        )


@dataclass(slots=True)
class Instr:
    op: Opcode
    arg: object = None
    #: For branches: the label control falls to when the branch is not taken.
    fallthrough: str | None = None

    def __repr__(self) -> str:
        parts = [self.op.value]
        if self.arg is not None:
            parts.append(repr(self.arg))
        if self.fallthrough is not None:
            parts.append(f"ft={self.fallthrough}")
        return f"<{' '.join(parts)}>"


@dataclass(slots=True)
class BasicBlock:
    """A straight-line run of instructions ending in one terminator."""

    label: str
    instrs: list[Instr] = field(default_factory=list)

    @property
    def terminator(self) -> Instr:
        assert self.instrs and self.instrs[-1].op.is_terminator(), (
            f"block {self.label} lacks a terminator"
        )
        return self.instrs[-1]

    def successors(self) -> list[str]:
        """Labels this block can transfer to (within its function)."""
        term = self.instrs[-1] if self.instrs else None
        if term is None or not term.op.is_terminator():
            return []
        if term.op is Opcode.JUMP:
            return [term.arg]  # type: ignore[list-item]
        if term.op in (Opcode.BRANCH_FALSE, Opcode.BRANCH_TRUE):
            return [term.fallthrough, term.arg]  # type: ignore[list-item]
        return []

    def __repr__(self) -> str:
        return f"<block {self.label}: {len(self.instrs)} instrs>"


@dataclass(slots=True)
class BlockFunction:
    """One compiled procedure: parameters plus a list of basic blocks.

    ``blocks[0]`` is the entry block. Block order is *layout order* — the
    property the block-level PGO optimizes (a transition to the lexically
    next block is a cheap fall-through; anything else is a taken jump).
    """

    name: str
    params: list[Symbol]
    rest: Symbol | None
    blocks: list[BasicBlock]
    index: int = -1

    def block_by_label(self, label: str) -> BasicBlock:
        for block in self.blocks:
            if block.label == label:
                return block
        raise KeyError(f"{self.name}: no block labelled {label!r}")

    def block_position(self, label: str) -> int:
        for i, block in enumerate(self.blocks):
            if block.label == label:
                return i
        raise KeyError(f"{self.name}: no block labelled {label!r}")

    def __repr__(self) -> str:
        return f"<fn {self.name}#{self.index}: {len(self.blocks)} blocks>"


@dataclass(slots=True)
class Module:
    """A compiled program: ``functions[0]`` is the top level."""

    functions: list[BlockFunction] = field(default_factory=list)

    @property
    def toplevel(self) -> BlockFunction:
        return self.functions[0]

    def add_function(self, fn: BlockFunction) -> int:
        fn.index = len(self.functions)
        self.functions.append(fn)
        return fn.index

    def block_count(self) -> int:
        return sum(len(fn.blocks) for fn in self.functions)

    def disassemble(self) -> str:
        """Human-readable listing (used by the CLI and golden tests)."""
        lines: list[str] = []
        for fn in self.functions:
            params = " ".join(p.name for p in fn.params)
            if fn.rest is not None:
                params += f" . {fn.rest.name}"
            lines.append(f"function {fn.index} {fn.name} ({params})")
            for block in fn.blocks:
                lines.append(f"  {block.label}:")
                for instr in block.instrs:
                    lines.append(f"    {instr!r}")
        return "\n".join(lines)

    def structure_signature(self) -> tuple:
        """A hashable summary of the module's *structure* (functions, block
        labels, instruction opcodes) used by the three-pass workflow to
        verify that block-level profiles remain valid across passes."""
        return tuple(
            (
                fn.name,
                tuple(
                    (block.label, tuple(instr.op for instr in block.instrs))
                    for block in fn.blocks
                ),
            )
            for fn in self.functions
        )
